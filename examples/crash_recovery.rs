//! A guided crash-recovery drill: watch the three ARIES passes do their
//! work, including the undo of a loser transaction whose key delete must be
//! undone *logically* (the paper's Figure 1/11 machinery), and a
//! fuzzy-image-copy media recovery of a single damaged page (§5).
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use ariesim::common::tmp::TempDir;
use ariesim::db::{Db, DbOptions, FetchCond, Row};
use ariesim::recovery::ImageCopy;

fn row(i: u32) -> Row {
    Row::new(vec![
        format!("key-{i:06}").into_bytes(),
        format!("payload-{i}").into_bytes(),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("crash-drill");
    let db = Db::open(dir.path(), DbOptions::default())?;
    db.create_table("t", 2)?;
    db.create_index("t_pk", "t", 0, true)?;

    // Committed work: enough to split leaves several times.
    let txn = db.begin();
    for i in 0..1000 {
        db.insert_row(&txn, "t", &row(i))?;
    }
    db.commit(&txn)?;
    println!(
        "committed 1000 rows; {} page splits so far",
        db.stats.snapshot().smo_splits
    );

    // A checkpoint bounds the analysis/redo work.
    let ckpt = db.checkpoint()?;
    println!("fuzzy checkpoint at {ckpt}");

    // A loser: deletes and inserts that will never commit.
    let loser = db.begin();
    for i in 0..50 {
        let (rid, _) = db
            .fetch_via(&loser, "t_pk", format!("key-{i:06}").as_bytes(), FetchCond::Eq)?
            .unwrap();
        db.delete_row(&loser, "t", rid)?;
    }
    for i in 2000..2050 {
        db.insert_row(&loser, "t", &row(i))?;
    }
    db.log.flush_all()?; // records durable, commit absent → loser
    println!("loser transaction wrote {} log records and... crash!", 200);

    let path = db.crash();
    let db = Db::open(&path, DbOptions::default())?;
    let o = db.restart_outcome.as_ref().unwrap();
    println!("--- ARIES restart ---");
    println!("analysis: started at checkpoint {:?}, {} records scanned", o.ckpt_lsn, o.analyzed);
    println!("redo:     started at {:?}, {} records reapplied (repeat history)", o.redo_start, o.redo_applied);
    println!("undo:     {} loser(s), {} actions undone", o.losers.len(), o.undone);
    let s = db.stats.snapshot();
    println!(
        "          page-oriented undos: {}, logical undos: {}, redo traversals: {} (always 0)",
        s.undo_page_oriented, s.undo_logical, s.redo_traversals
    );
    let report = db.verify_consistency()?;
    assert_eq!(report.rows, 1000, "losers gone, committed work intact");
    println!("verified: {} rows, {} index keys, structure OK", report.rows, report.index_keys);

    // --- media recovery (§5) -------------------------------------------------
    println!("--- media recovery drill ---");
    let tree = db.tree_by_name("t_pk")?;
    let tree_pages = {
        // Dump every page of the index: leaves + internals, via the checker.
        let mut pages = vec![tree.root];
        pages.extend(tree.scan_all_unlocked()?.iter().map(|_| tree.root).take(0));
        // Simplest page set: ask the space map for everything allocated.
        ariesim::storage::SpaceMap::new(db.pool.clone()).allocated_pages()?
    };
    let copy = ImageCopy::take(&db.pool, &db.log, &tree_pages)?;
    println!("fuzzy image copy of {} pages taken", copy.page_ids().len());

    // More committed updates AFTER the dump.
    let txn = db.begin();
    for i in 3000..3100 {
        db.insert_row(&txn, "t", &row(i))?;
    }
    db.commit(&txn)?;

    // "Lose" one index leaf (pretend a disk read failed) and bring it back
    // from the dump + log roll-forward.
    let victim = tree.leaf_for_value(b"key-000500")?;
    copy.restore_into(&db.pool, &db.log, &db.rms, victim, &db.stats)?;
    println!(
        "page {victim} restored from the dump and rolled forward ({} media passes)",
        db.stats.snapshot().media_recovery_passes
    );
    let report = db.verify_consistency()?;
    assert_eq!(report.rows, 1100);
    println!("verified after media recovery: {} rows, structure OK", report.rows);
    Ok(())
}
