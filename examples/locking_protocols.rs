//! Side-by-side locking behaviour of the three protocols — ARIES/IM
//! data-only locking, ARIES/IM index-specific locking, and the ARIES/KVL
//! baseline — on the same operations: a live rendition of the paper's
//! Figure 2 and its §1/§5 lock-count claims.
//!
//! ```sh
//! cargo run --example locking_protocols
//! ```

use ariesim::btree::fetch::FetchCond;
use ariesim::btree::{BTree, IndexRm, LockProtocol};
use ariesim::common::stats::new_stats;
use ariesim::common::tmp::TempDir;
use ariesim::common::{IndexId, IndexKey, PageId, Rid};
use ariesim::lock::LockManager;
use ariesim::storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim::txn::{RmRegistry, TransactionManager};
use ariesim::wal::{LogManager, LogOptions};
use std::sync::Arc;

fn key(i: u32) -> IndexKey {
    IndexKey::new(
        format!("key-{i:06}").into_bytes(),
        Rid::new(PageId(500_000 + i / 50), (i % 50) as u16),
    )
}

struct Rig {
    _dir: TempDir,
    stats: ariesim::common::stats::StatsHandle,
    tm: Arc<TransactionManager>,
    tree: Arc<BTree>,
}

fn rig(protocol: LockProtocol) -> Rig {
    let dir = TempDir::new("protocols");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions::default(), stats.clone());
    SpaceMap::initialize(&pool).unwrap();
    let locks = Arc::new(LockManager::new(stats.clone()));
    let rms = Arc::new(RmRegistry::new());
    let index_rm = IndexRm::new(pool.clone(), stats.clone());
    rms.register(index_rm.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks.clone(),
        pool.clone(),
        rms,
        stats.clone(),
    ));
    let txn = tm.begin();
    let root = BTree::create(&txn, IndexId(1), &pool, &log).unwrap();
    tm.commit(&txn).unwrap();
    let tree = BTree::new(IndexId(1), root, false, protocol, pool, locks, log, stats.clone());
    index_rm.register_tree(tree.clone());
    // Seed keys 0..1000 (even) so every op has neighbours.
    let txn = tm.begin();
    for i in (0..1000u32).step_by(2) {
        tree.insert(&txn, &key(i)).unwrap();
    }
    tm.commit(&txn).unwrap();
    stats.reset();
    Rig {
        _dir: dir,
        stats,
        tm,
        tree,
    }
}

fn measure(protocol: LockProtocol) -> [(u64, u64); 3] {
    let r = rig(protocol);
    let mut out = [(0, 0); 3];
    // Fetch 100 present keys.
    let txn = r.tm.begin();
    for i in (100..300u32).step_by(2) {
        r.tree.fetch(&txn, &key(i).value, FetchCond::Eq).unwrap();
    }
    r.tm.commit(&txn).unwrap();
    let s = r.stats.snapshot();
    out[0] = (s.locks_acquired / 100, s.locks_acquired % 100);
    r.stats.reset();
    // Insert 100 odd keys.
    let txn = r.tm.begin();
    for i in (100..300u32).step_by(2) {
        r.tree.insert(&txn, &key(i + 1)).unwrap();
    }
    r.tm.commit(&txn).unwrap();
    let s = r.stats.snapshot();
    out[1] = (s.locks_acquired / 100, s.locks_acquired % 100);
    r.stats.reset();
    // Delete those 100 keys again.
    let txn = r.tm.begin();
    for i in (100..300u32).step_by(2) {
        r.tree.delete(&txn, &key(i + 1)).unwrap();
    }
    r.tm.commit(&txn).unwrap();
    let s = r.stats.snapshot();
    out[2] = (s.locks_acquired / 100, s.locks_acquired % 100);
    out
}

fn main() {
    println!("index-manager lock requests per single-key operation");
    println!("(data-only's insert/delete current-key lock lives in the record");
    println!(" manager and is shared with the data update — the paper's point)\n");
    println!("{:<18} {:>8} {:>8} {:>8}", "protocol", "fetch", "insert", "delete");
    for (name, protocol) in [
        ("IM data-only", LockProtocol::DataOnly),
        ("IM index-specific", LockProtocol::IndexSpecific),
        ("ARIES/KVL", LockProtocol::KeyValue),
    ] {
        let m = measure(protocol);
        println!(
            "{:<18} {:>8} {:>8} {:>8}",
            name, m[0].0, m[1].0, m[2].0
        );
    }
    println!("\npaper's claim: ARIES/IM data-only acquires the minimal number of");
    println!("locks — one per fetch (the record lock doubles as the key lock) and");
    println!("one instant/commit next-key lock per insert/delete.");
}
