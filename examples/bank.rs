//! A concurrent bank: the classic transaction-processing workload the
//! paper's systems (DB2, SQL/DS, NonStop SQL) served.
//!
//! Eight teller threads run transfer transactions against an
//! ARIES/IM-indexed accounts table. Deadlock victims retry; a fraction of
//! transfers is voluntarily rolled back. At the end, the books must balance
//! — and they must *still* balance after a simulated crash and ARIES
//! restart.
//!
//! ```sh
//! cargo run --release --example bank
//! ```

use ariesim::common::Error;
use ariesim::db::{Db, DbOptions, FetchCond, Row};
use ariesim::common::tmp::TempDir;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ACCOUNTS: u32 = 200;
const INITIAL: i64 = 1_000;
const TELLERS: u32 = 8;
const TRANSFERS_PER_TELLER: u32 = 150;

fn acct_key(i: u32) -> Vec<u8> {
    format!("acct-{i:06}").into_bytes()
}

fn row(i: u32, balance: i64) -> Row {
    Row::new(vec![acct_key(i), balance.to_string().into_bytes()])
}

fn balance_of(row: &Row) -> i64 {
    String::from_utf8_lossy(row.field(1).unwrap())
        .parse()
        .unwrap()
}

fn total_balance(db: &Db) -> i64 {
    let txn = db.begin();
    let rows = db
        .scan_range(&txn, "accounts_pk", b"acct-", b"acct-\x7f")
        .unwrap();
    let sum = rows.iter().map(|(_, r)| balance_of(r)).sum();
    db.commit(&txn).unwrap();
    sum
}

fn transfer(db: &Db, from: u32, to: u32, amount: i64) -> Result<(), Error> {
    let txn = db.begin();
    let step = (|| -> Result<(), Error> {
        let (rid_from, row_from) = db
            .fetch_via(&txn, "accounts_pk", &acct_key(from), FetchCond::Eq)?
            .ok_or(Error::NotFound)?;
        let (rid_to, row_to) = db
            .fetch_via(&txn, "accounts_pk", &acct_key(to), FetchCond::Eq)?
            .ok_or(Error::NotFound)?;
        let bal_from = balance_of(&row_from) - amount;
        let bal_to = balance_of(&row_to) + amount;
        // Rewrite both rows (delete + insert keeps the indexes exact).
        db.delete_row(&txn, "accounts", rid_from)?;
        db.delete_row(&txn, "accounts", rid_to)?;
        db.insert_row(&txn, "accounts", &row(from, bal_from))?;
        db.insert_row(&txn, "accounts", &row(to, bal_to))?;
        Ok(())
    })();
    match step {
        Ok(()) => db.commit(&txn),
        Err(e) => {
            db.rollback(&txn)?;
            Err(e)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("bank");
    let db = Db::open(dir.path(), DbOptions::default())?;
    db.create_table("accounts", 2)?;
    db.create_index("accounts_pk", "accounts", 0, true)?;

    let setup = db.begin();
    for i in 0..ACCOUNTS {
        db.insert_row(&setup, "accounts", &row(i, INITIAL))?;
    }
    db.commit(&setup)?;
    let expected_total = ACCOUNTS as i64 * INITIAL;
    println!("seeded {ACCOUNTS} accounts, total = {expected_total}");

    let committed = Arc::new(AtomicU64::new(0));
    let deadlocks = Arc::new(AtomicU64::new(0));
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..TELLERS {
            let db = db.clone();
            let committed = committed.clone();
            let deadlocks = deadlocks.clone();
            s.spawn(move || {
                let mut rng = t as u64 * 0x9E3779B97F4A7C15 + 1;
                let mut rand = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                for _ in 0..TRANSFERS_PER_TELLER {
                    let from = (rand() % ACCOUNTS as u64) as u32;
                    let mut to = (rand() % ACCOUNTS as u64) as u32;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = (rand() % 100) as i64;
                    loop {
                        match transfer(&db, from, to, amount) {
                            Ok(()) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(Error::Deadlock { .. }) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                continue; // retry the transfer
                            }
                            Err(e) => panic!("transfer failed: {e}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    println!(
        "{} transfers committed in {:.2?} ({:.0} txn/s), {} deadlock retries",
        committed.load(Ordering::Relaxed),
        elapsed,
        committed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        deadlocks.load(Ordering::Relaxed),
    );

    let total = total_balance(&db);
    println!("total after transfers = {total}");
    assert_eq!(total, expected_total, "money is conserved");
    db.verify_consistency()?;

    // Crash without flushing anything and let ARIES restart repeat history.
    println!("simulating crash...");
    let path = db.crash();
    let db = Db::open(&path, DbOptions::default())?;
    let outcome = db.restart_outcome.as_ref().unwrap();
    println!(
        "restart: {} records analyzed, {} redone, {} losers undone",
        outcome.analyzed,
        outcome.redo_applied,
        outcome.losers.len()
    );
    let total = total_balance(&db);
    println!("total after recovery = {total}");
    assert_eq!(total, expected_total, "money survived the crash");
    db.verify_consistency()?;
    println!("books balance; heap and indexes consistent");
    Ok(())
}
