//! Quickstart: create a database, a table with two indexes, run transactions
//! with commits and rollbacks, and range-scan through an index.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ariesim::db::{Db, DbOptions, FetchCond, Row};
use ariesim::common::tmp::TempDir;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("quickstart");
    let db = Db::open(dir.path(), DbOptions::default())?;

    // DDL: one table, a unique primary index and a nonunique secondary.
    db.create_table("books", 3)?;
    db.create_index("books_pk", "books", 0, true)?;
    db.create_index("books_by_author", "books", 1, false)?;

    // A committed transaction.
    let txn = db.begin();
    for (isbn, author, title) in [
        ("978-0-13-468599-1", "kernighan", "The Practice of Programming"),
        ("978-0-201-03801-1", "knuth", "TAOCP Vol. 1"),
        ("978-0-201-03802-8", "knuth", "TAOCP Vol. 2"),
        ("978-1-59327-828-1", "klabnik", "The Rust Programming Language"),
    ] {
        db.insert_row(&txn, "books", &Row::from_strs(&[isbn, author, title]))?;
    }
    db.commit(&txn)?;
    println!("inserted 4 books");

    // Point lookup through the unique index.
    let txn = db.begin();
    let (_rid, row) = db
        .fetch_via(&txn, "books_pk", b"978-0-201-03801-1", FetchCond::Eq)?
        .expect("committed row");
    println!(
        "pk lookup: {} by {}",
        String::from_utf8_lossy(row.field(2)?),
        String::from_utf8_lossy(row.field(1)?)
    );

    // Range scan through the secondary index: every book by knuth.
    let knuth = db.scan_range(&txn, "books_by_author", b"knuth", b"knuth\x7f")?;
    println!("knuth wrote {} of them:", knuth.len());
    for (_rid, row) in &knuth {
        println!("  - {}", String::from_utf8_lossy(row.field(2)?));
    }
    db.commit(&txn)?;

    // A rollback: the insert vanishes from the heap AND both indexes.
    let txn = db.begin();
    db.insert_row(
        &txn,
        "books",
        &Row::from_strs(&["978-0-00-000000-0", "nobody", "Never Published"]),
    )?;
    db.rollback(&txn)?;
    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "books_pk", b"978-0-00-000000-0", FetchCond::Eq)?
        .is_none());
    db.commit(&txn)?;
    println!("rolled-back insert is gone from heap and indexes");

    // Unique violations are detected through next-key machinery (§2.4).
    let txn = db.begin();
    let err = db
        .insert_row(
            &txn,
            "books",
            &Row::from_strs(&["978-0-201-03801-1", "imposter", "Fake TAOCP"]),
        )
        .unwrap_err();
    println!("duplicate ISBN rejected: {err}");
    db.rollback(&txn)?;

    let report = db.verify_consistency()?;
    println!(
        "consistent: {} rows, {} index keys across {} indexes",
        report.rows, report.index_keys, report.indexes
    );
    Ok(())
}
