//! Std-only stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `parking_lot` cannot be vendored; this crate re-implements the API surface
//! the workspace actually calls, on top of `std::sync` primitives:
//!
//! * [`Mutex`] / [`MutexGuard`] — poison-ignoring, guard returned directly;
//! * [`Condvar`] with `wait` / `wait_for` taking `&mut MutexGuard`;
//! * [`RwLock`] with recursive reads (`read_recursive`), conditional
//!   acquisition (`try_read` / `try_write` / `try_read_recursive`), owned
//!   `Arc` guards (`read_arc` / `write_arc` and `try_` variants) and
//!   write-to-read downgrade — none of which `std::sync::RwLock` offers,
//!   hence the hand-rolled state machine.
//!
//! Semantics the workspace depends on and this shim preserves:
//!
//! * a blocked writer blocks **new non-recursive readers** (no writer
//!   starvation: the SMO tree-latch acquirer must not starve behind a
//!   stream of traversals);
//! * `read_recursive` ignores queued writers, so a thread already holding
//!   the lock shared can re-enter without self-deadlock;
//! * `downgrade` is atomic: no writer can sneak in between the write and
//!   read phases.
//!
//! Additionally, every acquire/release path reports to the model checker's
//! schedule-point hooks (see [`sched`]); on ordinary threads that is a
//! single thread-local flag read.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

pub mod sched;

use sched::OpKind;

/// Address of a lock, used as its identity at schedule points. Fat pointers
/// (unsized `T`) lose their metadata in the cast, which is exactly right:
/// identity is the allocation, not the view.
fn obj_id<T: ?Sized>(p: *const T) -> sched::ObjId {
    p as *const () as usize
}

// --- Mutex -----------------------------------------------------------------

/// Poison-ignoring wrapper over [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let obj = obj_id(self);
        sched::acquire_point(OpKind::MutexLock, obj);
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            obj,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let obj = obj_id(self);
        if !sched::acquire_point(OpKind::MutexTryLock, obj) {
            return None;
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: Some(g),
                obj,
            }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
                obj,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait_for`]
/// can temporarily take the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Lock identity for the release schedule point.
    obj: sched::ObjId,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real unlock first (dropping the std guard), then notify: the
        // controller must never grant a waiter before the lock is free.
        self.inner.take();
        sched::release_point(OpKind::MutexUnlock, self.obj);
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// --- Condvar ---------------------------------------------------------------

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Wrapper over [`std::sync::Condvar`] with the parking_lot calling
/// convention (`&mut MutexGuard` instead of guard-by-value).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The model checker intercepts locks and atomics but not condvars
        // (nothing it models uses one); a wait would park the virtual
        // thread outside the controller's view and hang the schedule.
        assert!(
            !sched::thread_armed(),
            "Condvar::wait is not supported under the model checker"
        );
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        assert!(
            !sched::thread_armed(),
            "Condvar::wait_for is not supported under the model checker"
        );
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// --- Parker ----------------------------------------------------------------

/// Futex-style one-token parker, the blocking primitive of the WAL group
/// commit barrier: committers park until the flusher (or a group leader)
/// unparks them, and an `unpark` that races ahead of the `park` is never
/// lost (the token stays set).
///
/// Under the model checker, `park`/`park_timeout` never block: they consume
/// the token if present and otherwise return **spuriously** after a
/// schedule point — a blocked virtual thread outside the controller's view
/// would hang the schedule. Every caller must therefore loop on its actual
/// predicate (durable LSN reached, queue non-empty, …), treating the parker
/// purely as a wakeup hint. That is also the correct discipline against
/// real spurious wakeups.
#[derive(Default)]
pub struct Parker {
    /// 1 = a wakeup is pending; `park` consumes it with a swap.
    token: std::sync::atomic::AtomicU32,
    mu: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl Parker {
    pub const fn new() -> Parker {
        Parker {
            token: std::sync::atomic::AtomicU32::new(0),
            mu: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Consume a pending token, or block until one arrives (may also return
    /// spuriously; callers loop on their predicate).
    pub fn park(&self) {
        self.park_inner(None);
    }

    /// [`Parker::park`] with an upper bound on the blocking time.
    pub fn park_timeout(&self, timeout: Duration) {
        self.park_inner(Some(timeout));
    }

    fn park_inner(&self, timeout: Option<Duration>) {
        // This crate sits *below* the msync facade (ariesim_common depends
        // on us), so the schedule point is reported directly: the token RMW
        // is a real interleaving choice the model controller must own.
        sched::acquire_point(OpKind::AtomicRmw, obj_id(self));
        // ordering: Acquire pairs with the Release store in `unpark`, so
        // state written before the unpark is visible after a consumed park.
        if self.token.swap(0, std::sync::atomic::Ordering::Acquire) == 1 {
            return;
        }
        if sched::thread_armed() {
            // Under the model a park is a spurious return: blocking here
            // would park the virtual thread outside the controller's view.
            return;
        }
        let mut g = self.mu.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // ordering: Acquire — as above; re-checked under the mutex so a
            // wakeup between the first check and the wait is not missed.
            if self.token.swap(0, std::sync::atomic::Ordering::Acquire) == 1 {
                return;
            }
            match timeout {
                None => {
                    g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                Some(t) => {
                    let (g2, res) = match self.cv.wait_timeout(g, t) {
                        Ok(p) => p,
                        Err(e) => e.into_inner(),
                    };
                    g = g2;
                    if res.timed_out() {
                        return;
                    }
                }
            }
        }
    }

    /// Make the next (or current) `park` return. Never lost: if no thread
    /// is parked, the token satisfies the next park.
    pub fn unpark(&self) {
        sched::acquire_point(OpKind::AtomicStore, obj_id(self));
        // ordering: Release publishes the waker's writes to the Acquire
        // swap in `park`.
        self.token.store(1, std::sync::atomic::Ordering::Release);
        // Briefly take the mutex so a parker between its token re-check and
        // its wait cannot miss the notification (classic missed-wakeup
        // fence), then notify.
        drop(self.mu.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }
}

// --- RwLock ----------------------------------------------------------------

#[derive(Default)]
struct RwState {
    /// Number of shared holders.
    readers: usize,
    /// Exclusive holder present.
    writer: bool,
    /// Writers blocked in `write()`; new non-recursive readers defer to them.
    writers_waiting: usize,
}

/// Read-write lock with recursive reads, conditional acquisition, owned
/// `Arc` guards, and atomic write→read downgrade.
pub struct RwLock<T: ?Sized> {
    state: std::sync::Mutex<RwState>,
    cond: std::sync::Condvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            state: std::sync::Mutex::new(RwState {
                readers: 0,
                writer: false,
                writers_waiting: 0,
            }),
            cond: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn st(&self) -> std::sync::MutexGuard<'_, RwState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_shared(&self, recursive: bool) {
        let kind = if recursive {
            OpKind::RwSharedRecursive
        } else {
            OpKind::RwShared
        };
        sched::acquire_point(kind, obj_id(self));
        let mut st = self.st();
        while st.writer || (!recursive && st.writers_waiting > 0) {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.readers += 1;
    }

    fn try_lock_shared(&self, recursive: bool) -> bool {
        let kind = if recursive {
            OpKind::RwTrySharedRecursive
        } else {
            OpKind::RwTryShared
        };
        if !sched::acquire_point(kind, obj_id(self)) {
            return false;
        }
        let mut st = self.st();
        if st.writer || (!recursive && st.writers_waiting > 0) {
            return false;
        }
        st.readers += 1;
        true
    }

    fn lock_exclusive(&self) {
        sched::acquire_point(OpKind::RwExclusive, obj_id(self));
        let mut st = self.st();
        st.writers_waiting += 1;
        while st.writer || st.readers > 0 {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.writers_waiting -= 1;
        st.writer = true;
    }

    fn try_lock_exclusive(&self) -> bool {
        if !sched::acquire_point(OpKind::RwTryExclusive, obj_id(self)) {
            return false;
        }
        let mut st = self.st();
        if st.writer || st.readers > 0 {
            return false;
        }
        st.writer = true;
        true
    }

    fn unlock_shared(&self) {
        {
            let mut st = self.st();
            debug_assert!(st.readers > 0);
            st.readers -= 1;
            if st.readers == 0 {
                self.cond.notify_all();
            }
        }
        sched::release_point(OpKind::RwUnlockShared, obj_id(self));
    }

    fn unlock_exclusive(&self) {
        {
            let mut st = self.st();
            debug_assert!(st.writer);
            st.writer = false;
            self.cond.notify_all();
        }
        sched::release_point(OpKind::RwUnlockExclusive, obj_id(self));
    }

    /// Exclusive → shared without a window for another writer.
    fn downgrade_exclusive(&self) {
        {
            let mut st = self.st();
            debug_assert!(st.writer);
            st.writer = false;
            st.readers = 1;
            // Other readers may join; waiting writers see readers > 0.
            self.cond.notify_all();
        }
        sched::release_point(OpKind::RwDowngrade, obj_id(self));
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared(false);
        RwLockReadGuard { lock: self }
    }

    /// Shared acquisition that ignores queued writers, so a thread that
    /// already holds the lock shared can safely re-enter.
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared(true);
        RwLockReadGuard { lock: self }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        // `.then(||)` not `.then_some()`: the guard must only exist (and
        // therefore only ever run its unlocking Drop) on success.
        self.try_lock_shared(false)
            .then(|| RwLockReadGuard { lock: self })
    }

    pub fn try_read_recursive(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.try_lock_shared(true)
            .then(|| RwLockReadGuard { lock: self })
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.try_lock_exclusive()
            .then(|| RwLockWriteGuard { lock: self })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        self.lock_shared(false);
        lock_api::ArcRwLockReadGuard {
            lock: self.clone(),
            _raw: PhantomData,
        }
    }

    pub fn try_read_arc(self: &Arc<Self>) -> Option<lock_api::ArcRwLockReadGuard<RawRwLock, T>> {
        self.try_lock_shared(false)
            .then(|| lock_api::ArcRwLockReadGuard {
                lock: self.clone(),
                _raw: PhantomData,
            })
    }

    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        self.lock_exclusive();
        lock_api::ArcRwLockWriteGuard {
            lock: self.clone(),
            _raw: PhantomData,
        }
    }

    pub fn try_write_arc(self: &Arc<Self>) -> Option<lock_api::ArcRwLockWriteGuard<RawRwLock, T>> {
        self.try_lock_exclusive()
            .then(|| lock_api::ArcRwLockWriteGuard {
                lock: self.clone(),
                _raw: PhantomData,
            })
    }
}

/// Borrowed shared guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: shared lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Borrowed exclusive guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive lock held for the guard's lifetime.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// Marker standing in for `parking_lot::RawRwLock` in the arc-guard types.
pub struct RawRwLock;

pub mod lock_api {
    //! Owned (`Arc`-holding) guards, mirroring `parking_lot::lock_api`.

    use super::{RawRwLock, RwLock};
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// Owned shared guard: keeps the lock (and its `Arc`) alive.
    pub struct ArcRwLockReadGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<T: ?Sized> std::ops::Deref for ArcRwLockReadGuard<RawRwLock, T> {
        type Target = T;

        fn deref(&self) -> &T {
            // Safety: shared lock held for the guard's lifetime.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.unlock_shared();
        }
    }

    /// Owned exclusive guard.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<T: ?Sized> ArcRwLockWriteGuard<RawRwLock, T> {
        /// Atomically convert to a shared guard (no writer can intervene).
        pub fn downgrade(this: Self) -> ArcRwLockReadGuard<RawRwLock, T> {
            this.lock.downgrade_exclusive();
            let lock = this.lock.clone();
            std::mem::forget(this); // ownership of the hold moved to the read guard
            ArcRwLockReadGuard {
                lock,
                _raw: PhantomData,
            }
        }
    }

    impl<T: ?Sized> std::ops::Deref for ArcRwLockWriteGuard<RawRwLock, T> {
        type Target = T;

        fn deref(&self) -> &T {
            // Safety: exclusive lock held for the guard's lifetime.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for ArcRwLockWriteGuard<RawRwLock, T> {
        fn deref_mut(&mut self) -> &mut T {
            // Safety: exclusive lock held for the guard's lifetime.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.unlock_exclusive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::ArcRwLockWriteGuard;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parker_token_prevents_lost_wakeup() {
        let p = Parker::new();
        p.unpark(); // unpark before park: token must satisfy the next park
        let start = std::time::Instant::now();
        p.park();
        assert!(start.elapsed() < Duration::from_secs(1));
        // Token consumed: a timed park now waits out the timeout.
        let start = std::time::Instant::now();
        p.park_timeout(Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn parker_wakes_blocked_thread() {
        let p = Arc::new(Parker::new());
        let flag = Arc::new(AtomicUsize::new(0));
        let h = {
            let p = p.clone();
            let flag = flag.clone();
            std::thread::spawn(move || {
                while flag.load(Ordering::Acquire) == 0 {
                    p.park();
                }
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        flag.store(1, Ordering::Release);
        p.unpark();
        h.join().unwrap();
    }

    #[test]
    fn mutex_and_condvar_wait_for() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read_recursive();
            assert_eq!((*a, *b), (5, 5));
            assert!(l.try_write().is_none());
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_read_defers_to_waiting_writer_but_recursive_does_not() {
        let l = Arc::new(RwLock::new(()));
        let _r = l.read();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            let _w = l2.write();
        });
        // Wait until the writer is queued.
        while l.st().writers_waiting == 0 {
            std::thread::yield_now();
        }
        assert!(l.try_read().is_none(), "plain read must defer to writer");
        assert!(
            l.try_read_recursive().is_some(),
            "recursive read must not self-deadlock"
        );
        drop(_r);
        h.join().unwrap();
    }

    #[test]
    fn arc_write_guard_downgrade_blocks_writers() {
        let l = Arc::new(RwLock::new(1u32));
        let w = l.write_arc();
        let r = ArcRwLockWriteGuard::downgrade(w);
        assert_eq!(*r, 1);
        assert!(l.try_write().is_none());
        let r2 = l.try_read_arc().expect("second reader joins");
        assert_eq!(*r2, 1);
        drop(r);
        drop(r2);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn concurrent_readers_and_writers_consistent() {
        let l = Arc::new(RwLock::new(0u64));
        let writes = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = l.clone();
                let writes = writes.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        *l.write() += 1;
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..4 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let _v = *l.read();
                    }
                });
            }
        });
        assert_eq!(*l.read(), 800);
        assert_eq!(writes.load(Ordering::Relaxed), 800);
    }
}
