//! Schedule-point hooks for the deterministic model checker.
//!
//! The model checker (`crates/model`) runs N "virtual" threads under a
//! single logical thread of control: every synchronization operation —
//! Mutex/RwLock acquire and release, facade atomics (see
//! `ariesim_common::msync`), and explicit `yield_point!()`s — reports to a
//! per-thread [`ThreadHook`] before (acquires) or after (releases) touching
//! the real primitive. The hook blocks the thread until the controller
//! grants it the next step, which is what turns preemption into an
//! enumerable choice instead of an accident of OS timing.
//!
//! Threads without an installed hook (everything outside a model run —
//! ordinary tests, benches, production paths) pay exactly one thread-local
//! `Cell<bool>` read per operation, mirroring the `crash_point!` design:
//! the instrumentation is always compiled, the *cost* is a disarmed fast
//! path.
//!
//! Two invariants the controller relies on and this module's callers (the
//! lock shims) uphold:
//!
//! * a blocking acquire calls [`acquire_point`] *before* touching the real
//!   lock, and the controller only grants the step once its ownership model
//!   says the acquire cannot block — so a granted real acquire always
//!   succeeds immediately and no virtual thread is ever parked inside a
//!   real lock's wait queue;
//! * a release performs the real unlock *first* and then calls
//!   [`release_point`] — the notification is asynchronous (the releasing
//!   thread keeps running to its next schedule point), which is safe
//!   because only one virtual thread runs at a time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Identity of the synchronized object: the address of the `Mutex`,
/// `RwLock`, facade atomic, or (for yields) the site string. Raw addresses
/// are not stable across executions; the controller re-keys them to small
/// first-seen ordinals before they enter a trace.
pub type ObjId = usize;

/// What kind of operation is at the schedule point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// First schedule point of a spawned virtual thread, before any user
    /// code runs.
    ThreadStart,
    MutexLock,
    MutexTryLock,
    MutexUnlock,
    RwShared,
    RwTryShared,
    RwSharedRecursive,
    RwTrySharedRecursive,
    RwExclusive,
    RwTryExclusive,
    RwUnlockShared,
    RwUnlockExclusive,
    /// Exclusive→shared downgrade: a release-class op (never blocks).
    RwDowngrade,
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    Yield,
}

impl OpKind {
    /// Conditional acquires never block: the controller always schedules
    /// them and instead dictates their outcome.
    pub fn is_try(self) -> bool {
        matches!(
            self,
            OpKind::MutexTryLock
                | OpKind::RwTryShared
                | OpKind::RwTrySharedRecursive
                | OpKind::RwTryExclusive
        )
    }

    /// Stable lower-snake name used in schedule traces.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::ThreadStart => "thread_start",
            OpKind::MutexLock => "mutex_lock",
            OpKind::MutexTryLock => "mutex_try_lock",
            OpKind::MutexUnlock => "mutex_unlock",
            OpKind::RwShared => "rw_shared",
            OpKind::RwTryShared => "rw_try_shared",
            OpKind::RwSharedRecursive => "rw_shared_recursive",
            OpKind::RwTrySharedRecursive => "rw_try_shared_recursive",
            OpKind::RwExclusive => "rw_exclusive",
            OpKind::RwTryExclusive => "rw_try_exclusive",
            OpKind::RwUnlockShared => "rw_unlock_shared",
            OpKind::RwUnlockExclusive => "rw_unlock_exclusive",
            OpKind::RwDowngrade => "rw_downgrade",
            OpKind::AtomicLoad => "atomic_load",
            OpKind::AtomicStore => "atomic_store",
            OpKind::AtomicRmw => "atomic_rmw",
            OpKind::Yield => "yield",
        }
    }

    /// Inverse of [`OpKind::name`], for parsing schedule traces.
    pub fn parse(name: &str) -> Option<OpKind> {
        Some(match name {
            "thread_start" => OpKind::ThreadStart,
            "mutex_lock" => OpKind::MutexLock,
            "mutex_try_lock" => OpKind::MutexTryLock,
            "mutex_unlock" => OpKind::MutexUnlock,
            "rw_shared" => OpKind::RwShared,
            "rw_try_shared" => OpKind::RwTryShared,
            "rw_shared_recursive" => OpKind::RwSharedRecursive,
            "rw_try_shared_recursive" => OpKind::RwTrySharedRecursive,
            "rw_exclusive" => OpKind::RwExclusive,
            "rw_try_exclusive" => OpKind::RwTryExclusive,
            "rw_unlock_shared" => OpKind::RwUnlockShared,
            "rw_unlock_exclusive" => OpKind::RwUnlockExclusive,
            "rw_downgrade" => OpKind::RwDowngrade,
            "atomic_load" => OpKind::AtomicLoad,
            "atomic_store" => OpKind::AtomicStore,
            "atomic_rmw" => OpKind::AtomicRmw,
            "yield" => OpKind::Yield,
            _ => return None,
        })
    }
}

/// One schedule-point operation.
#[derive(Clone, Copy, Debug)]
pub struct Op {
    pub kind: OpKind,
    pub obj: ObjId,
}

/// Installed per virtual thread by the model runtime.
pub trait ThreadHook {
    /// Blocking schedule point before an acquire-class op (or an atomic /
    /// yield). Returns `false` only for try-ops the controller has decided
    /// must fail — the caller then skips the real primitive entirely.
    fn schedule(&self, op: Op) -> bool;

    /// Non-blocking notification after a release-class op completed on the
    /// real primitive.
    fn release(&self, op: Op);
}

thread_local! {
    /// Disarmed fast path: one `Cell` read per sync op on ordinary threads.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static HOOK: RefCell<Option<Rc<dyn ThreadHook>>> = const { RefCell::new(None) };
}

/// Install `hook` for the current thread; every subsequent sync op on this
/// thread becomes a schedule point until [`clear_thread_hook`].
pub fn install_thread_hook(hook: Rc<dyn ThreadHook>) {
    HOOK.with(|h| *h.borrow_mut() = Some(hook));
    ARMED.with(|a| a.set(true));
}

/// Remove the current thread's hook (idempotent).
pub fn clear_thread_hook() {
    ARMED.with(|a| a.set(false));
    HOOK.with(|h| *h.borrow_mut() = None);
}

/// Is the current thread a model thread with a live, armed hook?
pub fn thread_armed() -> bool {
    ARMED.with(|a| a.get())
}

/// Arm/disarm without touching the installed hook. The model runtime
/// disarms a thread *before* unwinding it out of a schedule (teardown), so
/// the lock releases its drop handlers perform pass straight through
/// instead of re-blocking on a controller that has moved on.
pub fn set_thread_armed(on: bool) {
    ARMED.with(|a| a.set(on));
}

/// Schedule point before an acquire-class op. Returns whether a try-op may
/// proceed (always `true` for non-try ops and on disarmed threads).
#[inline]
pub fn acquire_point(kind: OpKind, obj: ObjId) -> bool {
    if !thread_armed() {
        return true;
    }
    let hook = HOOK.with(|h| h.borrow().clone());
    match hook {
        Some(h) => h.schedule(Op { kind, obj }),
        None => true,
    }
}

/// Notification after a release-class op.
#[inline]
pub fn release_point(kind: OpKind, obj: ObjId) {
    if !thread_armed() {
        return;
    }
    let hook = HOOK.with(|h| h.borrow().clone());
    if let Some(h) = hook {
        h.release(Op { kind, obj });
    }
}
