//! Std-only stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `proptest` cannot be vendored. This crate implements a small but real
//! property-testing harness with the same surface syntax:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer/char ranges,
//!   tuples, and [`collection::vec`];
//! * `any::<T>()` over the primitive types the tests sample;
//! * `prop_oneof!`, `proptest!`, `prop_assert!`, `prop_assert_eq!`;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: sampling is a deterministic xorshift
//! stream seeded from the test name (every run explores the same cases,
//! which suits a CI gate), and there is no shrinking — a failing case
//! panics with its case number so it can be replayed under a debugger.

use std::ops::Range;

/// Deterministic generator handed to strategies.
pub struct TestRng(u64);

impl TestRng {
    /// RNG for case `case` of test `name` — deterministic across runs.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng(if h == 0 { 1 } else { h })
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// How a value is produced. Unlike real proptest there is no intermediate
/// value tree: `sample` returns the value directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe alias used by `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A constant strategy (real proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }
}

/// Uniform choice among same-valued strategies (weights unsupported).
pub struct OneOf<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// Run configuration; only the case count is tunable.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // One closure per case so `?`/returns stay local to the case.
                let run = || -> () { $body };
                run();
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! The glob import every proptest test file starts with.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = super::Strategy::sample(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = super::TestRng::for_case("vecs", 0);
        for _ in 0..200 {
            let v = super::Strategy::sample(&collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuples_and_maps(
            (a, b) in (0u32..10, 0u32..10),
            v in collection::vec((0u8..4).prop_map(|x| x * 2), 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            let _ = flag;
        }

        #[test]
        fn oneof_samples_every_arm() {
            // Sampling inside the body, via a strategy value.
            let s = prop_oneof![Just(1u32), Just(2u32), 5u32..7];
            let mut rng = crate::TestRng::for_case("oneof", 0);
            let mut seen = [false; 3];
            for _ in 0..200 {
                match crate::Strategy::sample(&s, &mut rng) {
                    1 => seen[0] = true,
                    2 => seen[1] = true,
                    5 | 6 => seen[2] = true,
                    other => panic!("impossible sample {other}"),
                }
            }
            prop_assert!(seen.iter().all(|&x| x));
        }
    }
}
