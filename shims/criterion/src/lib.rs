//! Std-only stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `criterion` cannot be vendored. This shim keeps the `benches/` targets
//! compiling and producing *useful* numbers: each benchmark runs a short
//! calibrated measurement loop and prints mean time per iteration. It does
//! not implement criterion's statistics, HTML reports, or CLI filtering.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, &mut f);
        self
    }
}

/// Group of related benchmarks (shares tuning knobs).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Measurement handle passed to benchmark closures.
#[derive(Default)]
pub struct Bencher {
    /// (total time, total iterations) accumulated by `iter`/`iter_custom`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f` over a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs ≳1ms, then measure it.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || iters >= 1 << 24 {
                self.accumulate(el, iters);
                return;
            }
            iters *= 8;
        }
    }

    /// `f(iters)` must run `iters` iterations and return the elapsed time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters = 32;
        let el = f(iters);
        self.accumulate(el, iters);
    }

    fn accumulate(&mut self, el: Duration, iters: u64) {
        let (t, n) = self.measured.take().unwrap_or_default();
        self.measured = Some((t + el, n + iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, f: &mut F) {
    let start = Instant::now();
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        if let Some((t, n)) = b.measured {
            total += t;
            iters += n;
        }
        if start.elapsed() > budget {
            break;
        }
    }
    if iters == 0 {
        println!("{label:<40} (no measurement)");
    } else {
        let per = total.as_nanos() as f64 / iters as f64;
        println!("{label:<40} {per:>12.0} ns/iter  ({iters} iters)");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        c.sample_size(2).measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1).measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(1));
        let mut seen = 0u32;
        g.bench_with_input(BenchmarkId::new("n", 7), &7u32, |b, &n| {
            b.iter_custom(|iters| {
                seen = n;
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(n);
                }
                t.elapsed()
            })
        });
        g.finish();
        assert_eq!(seen, 7);
    }
}
