//! The paper's §4 claims:
//!
//! 1. **No deadlocks involving latches** — latch acquisition is strictly
//!    ordered (parent→child, leaf→next-leaf, tree-latch→page-latch, and
//!    never child-holds-while-waiting-for-parent), so heavy mixed workloads
//!    must always run to completion. A hang here would trip the lock
//!    manager's wedge timeout and fail the test.
//! 2. **Rolling-back transactions never deadlock** — undo acquires no locks,
//!    so `rollback()` must never return `Deadlock` no matter the
//!    concurrency.

mod support;

use ariesim::btree::LockProtocol;
use ariesim::common::Error;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use support::{fix, nkey};

#[test]
fn mixed_workload_never_hangs_or_latch_deadlocks() {
    // NOTE: this bare-index fixture has no record manager, so each thread
    // owns a disjoint key set (k ≡ t mod 8) — exactly what data-only
    // locking's record locks would otherwise enforce (§2.1: "the record
    // manager would have already locked the corresponding data"). Conflicts
    // still abound: every next-key lock lands on a *neighbouring thread's*
    // key, and SMOs race everything.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..1500u32 {
        f.tree.insert(&setup, &nkey(i * 8 + 7)).unwrap(); // thread-7 range pre-filled
    }
    f.tm.commit(&setup).unwrap();

    let deadlocks = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..7u32 {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            let deadlocks = deadlocks.clone();
            s.spawn(move || {
                let mut mine: Vec<u32> = Vec::new(); // committed keys I own
                for round in 0..10u32 {
                    let txn = tm.begin();
                    let mut aborted = false;
                    let mut added: Vec<u32> = Vec::new();
                    let mut removed: Vec<u32> = Vec::new();
                    for i in 0..40u32 {
                        let del = (i + t) % 3 == 0 && !mine.is_empty();
                        let r = if del {
                            let n = mine[(round as usize * 17 + i as usize) % mine.len()];
                            if removed.contains(&n) || added.contains(&n) {
                                continue;
                            }
                            match tree.delete(&txn, &nkey(n)) {
                                Ok(()) => {
                                    removed.push(n);
                                    Ok(())
                                }
                                e => e,
                            }
                        } else {
                            let n = t + 8 * (round * 1000 + i * 13 + t * 7);
                            match tree.insert(&txn, &nkey(n)) {
                                Ok(()) => {
                                    added.push(n);
                                    Ok(())
                                }
                                e => e,
                            }
                        };
                        match r {
                            Ok(()) => {}
                            Err(Error::Deadlock { .. }) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                // Claim 2: rollback itself must never fail.
                                tm.rollback(&txn)
                                    .expect("rolling back transactions never deadlock (§4)");
                                aborted = true;
                                break;
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    if !aborted {
                        if round % 2 == 0 {
                            tm.commit(&txn).unwrap();
                            mine.retain(|n| !removed.contains(n));
                            mine.extend(added);
                        } else {
                            tm.rollback(&txn)
                                .expect("voluntary rollback never deadlocks");
                        }
                    }
                }
            });
        }
    });
    // If any latch deadlock had occurred, the 30s wedge timeout would have
    // fired inside a worker and panicked. Structure must be intact.
    f.tree.check_structure().unwrap();
    assert!(
        !f.locks.has_waiters(),
        "all lock queues must drain after the workload"
    );

    // Certify the run mechanically: dump the acquisition-order graph the
    // workload just built and replay it through the offline lockdep checker
    // (the same check CI runs via `arieslint --lockdep`). The graph is only
    // recorded under debug assertions.
    let dump = ariesim::obs::lockdep::dump_jsonl();
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/lockdep.jsonl");
    std::fs::write(&out, &dump).unwrap();
    let parsed = analyze::lockdep::parse_dump(&dump);
    if cfg!(debug_assertions) {
        assert!(
            parsed.acquisitions > 0,
            "debug build recorded no acquisitions — lockdep instrumentation is dead"
        );
        assert!(
            !parsed.edges.is_empty(),
            "mixed workload produced no acquisition-order edges"
        );
    }
    let findings = analyze::lockdep::check_dump("lockdep.jsonl", &parsed);
    assert!(
        findings.is_empty(),
        "lockdep findings (graph is cyclic or violates the §4 order):\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        parsed.max_page_latch_chain <= 2,
        "deepest page-latch chain {} exceeds the paper's budget of 2",
        parsed.max_page_latch_chain
    );
}

#[test]
fn victim_is_the_requester_that_closed_the_cycle() {
    // Lock-level deadlock between two transactions on record names: the
    // transaction whose request completes the cycle gets the error; the
    // other proceeds. (Index traversals themselves cannot deadlock; only
    // user-level lock orders can, and those are detected.)
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(1)).unwrap();
    f.tree.insert(&setup, &nkey(2)).unwrap();
    f.tm.commit(&setup).unwrap();

    use ariesim::lock::{LockDuration, LockMode, LockName};
    let t1 = f.tm.begin();
    let t2 = f.tm.begin();
    let r1 = LockName::Record(support::rid(1));
    let r2 = LockName::Record(support::rid(2));
    f.locks
        .request(t1.id, r1.clone(), LockMode::X, LockDuration::Commit, false)
        .unwrap();
    f.locks
        .request(t2.id, r2.clone(), LockMode::X, LockDuration::Commit, false)
        .unwrap();
    let h = {
        let locks = f.locks.clone();
        let t2_id = t2.id;
        let r1 = r1.clone();
        std::thread::spawn(move || {
            locks.request(t2_id, r1, LockMode::X, LockDuration::Commit, false)
        })
    };
    while !f.locks.has_waiters() {
        std::thread::yield_now();
    }
    let e = f
        .locks
        .request(t1.id, r2, LockMode::X, LockDuration::Commit, false)
        .unwrap_err();
    assert!(matches!(e, Error::Deadlock { txn } if txn == t1.id));
    f.tm.rollback(&t1).unwrap(); // never deadlocks
    h.join().unwrap().unwrap();
    f.tm.commit(&t2).unwrap();
}

#[test]
fn smo_heavy_concurrency_with_rollbacks() {
    // Split and page-delete SMOs racing rollbacks: the §4 argument covers
    // the tree latch too (its holder waits only for page latches, whose
    // holders never wait on locks or the tree latch).
    let f = fix(LockProtocol::DataOnly, false);
    std::thread::scope(|s| {
        for t in 0..6u32 {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            s.spawn(move || {
                for round in 0..4u32 {
                    let txn = tm.begin();
                    let base = t * 100_000 + round * 10_000;
                    for i in 0..300u32 {
                        tree.insert(&txn, &nkey(base + i)).unwrap();
                    }
                    if (t + round) % 2 == 0 {
                        tm.commit(&txn).unwrap();
                        // Delete the batch again to drive page deletions.
                        let txn = tm.begin();
                        for i in 0..300u32 {
                            tree.delete(&txn, &nkey(base + i)).unwrap();
                        }
                        tm.commit(&txn).unwrap();
                    } else {
                        tm.rollback(&txn).expect("rollback amid SMOs never deadlocks");
                    }
                }
            });
        }
    });
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 0, "every batch was deleted or rolled back");
}
