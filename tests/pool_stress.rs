//! Concurrency stress for the partitioned buffer pool.
//!
//! N threads hammer a pool deliberately smaller than the working set with a
//! mix of reads, logged writes, explicit flushes, pin-guard re-latching and
//! background-writer ticks, so pages are continuously evicted and faulted
//! back in while latched neighbours pin frames. Afterwards three oracles
//! must hold:
//!
//! 1. **Pin balance** — every pin taken was released: the sum of all frame
//!    pin counts is zero, and every page is still evictable.
//! 2. **No lost dirty pages** — each page carries a per-page version stamp
//!    (its `owner` word), updated only under the X latch in lockstep with a
//!    shared oracle array; after the storm every page read back through the
//!    pool (i.e. possibly from disk, after eviction) matches the oracle.
//! 3. **WAL rule** — every `page_write_back` event in the obs ring records
//!    the log's durable LSN at the instant of the write (`txn` field) and
//!    the written page's `page_lsn` (`aux` field); `durable >= page_lsn`
//!    must hold for each one, eviction, flush and background writer alike.

use ariesim::common::page::PageType;
use ariesim::common::stats::new_stats;
use ariesim::common::tmp::TempDir;
use ariesim::common::{Lsn, PageId, TxnId};
use ariesim::obs::{Event, EventKind, Obs, ObsHandle};
use ariesim::storage::{BufferPool, DiskManager, EvictionPolicyKind, PoolOptions};
use ariesim::wal::{LogManager, LogOptions, LogRecord, RmId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const FRAMES: usize = 64;
/// Working set is 3x the pool: every thread forces continuous eviction.
const PAGES: u32 = 192;
const THREADS: u32 = 8;

fn ops_per_thread() -> u32 {
    std::env::var("POOL_STRESS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

fn build_pool(
    policy: EvictionPolicyKind,
    obs: ObsHandle,
) -> (TempDir, Arc<BufferPool>, Arc<LogManager>) {
    let dir = TempDir::new("pool-stress");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open_with_obs(
            &dir.file("wal"),
            LogOptions::default(),
            stats.clone(),
            obs.clone(),
        )
        .unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new_with_obs(
        disk,
        log.clone(),
        PoolOptions {
            frames: FRAMES,
            policy,
            ..Default::default()
        },
        stats,
        obs,
    );
    (dir, pool, log)
}

/// Format the working set: page `p` starts at version 0.
fn populate(pool: &Arc<BufferPool>, log: &Arc<LogManager>) {
    for p in 1..=PAGES {
        let lsn = append_update(log, p);
        let mut g = pool.fix_x(PageId(p)).unwrap();
        g.format(PageId(p), PageType::Heap, 0, 0);
        g.record_update(lsn);
    }
    pool.flush_all().unwrap();
}

/// Append a real (unflushed) update record so dirtied pages carry LSNs the
/// WAL rule actually has to force.
fn append_update(log: &Arc<LogManager>, page: u32) -> Lsn {
    log.append(&LogRecord::update(
        TxnId(page as u64),
        Lsn::NULL,
        RmId::Heap,
        PageId(page),
        vec![0xA5],
    ))
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn run_storm(policy: EvictionPolicyKind) {
    let obs = Obs::enabled(1 << 14);
    let (_dir, pool, log) = build_pool(policy, obs.clone());
    populate(&pool, &log);

    // Oracle: expected `owner` stamp per page. Updated while the X latch is
    // held, so whenever the latch is free the page and its slot agree.
    let expected: Arc<Vec<AtomicU32>> =
        Arc::new((0..=PAGES).map(|_| AtomicU32::new(0)).collect());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = pool.clone();
            let log = log.clone();
            let expected = expected.clone();
            s.spawn(move || {
                let mut rng = XorShift(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                for i in 0..ops_per_thread() {
                    let p = 1 + (rng.next() as u32) % PAGES;
                    match rng.next() % 10 {
                        // Logged write: bump the version stamp under X.
                        0..=3 => {
                            let lsn = append_update(&log, p);
                            let mut g = pool.fix_x(PageId(p)).unwrap();
                            assert_eq!(g.page_id(), PageId(p));
                            let v = g.owner() + 1;
                            g.set_owner(v);
                            g.record_update(lsn);
                            expected[p as usize].store(v, Ordering::Release);
                        }
                        // Read: the stamp must match the oracle. Both are
                        // sampled under the S latch (writers update the
                        // oracle before releasing X), so they can't skew.
                        4..=6 => {
                            let g = pool.fix_s(PageId(p)).unwrap();
                            assert_eq!(g.page_id(), PageId(p));
                            let want = expected[p as usize].load(Ordering::Acquire);
                            assert_eq!(
                                g.owner(),
                                want,
                                "page {p} lost a committed stamp (got {}, want {want})",
                                g.owner()
                            );
                        }
                        // Pin, hammer neighbours to force eviction pressure
                        // around the pinned frame, then re-latch through the
                        // pin (no page-table lookup) and check residency.
                        7 => {
                            let pin = pool.pin(PageId(p)).unwrap();
                            for j in 1..4u32 {
                                let q = 1 + (p + j * 31) % PAGES;
                                let g = pool.fix_s(PageId(q)).unwrap();
                                assert_eq!(g.page_id(), PageId(q));
                            }
                            assert!(pool.is_cached(PageId(p)), "pinned page evicted");
                            let g = pin.latch_s().unwrap();
                            assert_eq!(g.page_id(), PageId(p));
                        }
                        // Explicit flush (foreground WAL-rule path).
                        8 => pool.flush_page(PageId(p)).unwrap(),
                        // Background-writer pass (off-foreground WAL path),
                        // plus a periodic table↔frame agreement audit: a
                        // double-installed page (two racing misses) shows
                        // up as an orphaned frame.
                        _ => {
                            if i % 16 == 0 {
                                pool.bg_tick().unwrap();
                            }
                            if i % 64 == 0 {
                                pool.validate_mappings();
                            }
                        }
                    }
                }
            });
        }
    });

    // Oracle 1: pin balance, and page-table/frame agreement.
    assert_eq!(pool.total_pins(), 0, "leaked pins after the storm");
    pool.validate_mappings();

    // Flush through the bg writer so the freshest ring events include
    // write-backs, then verify every page — faulting evicted ones back in
    // from disk — against the oracle.
    while pool.bg_tick().unwrap() > 0 {}
    for p in 1..=PAGES {
        let g = pool.fix_s(PageId(p)).unwrap();
        let want = expected[p as usize].load(Ordering::Acquire);
        assert_eq!(g.owner(), want, "page {p} lost its last stamp after flush");
    }

    // Oracle 3: WAL rule on every observed write-back.
    let dump = obs.ring.dump_jsonl();
    let mut write_backs = 0u32;
    for line in dump.lines() {
        let Some(ev) = Event::parse_json_line(line) else {
            continue;
        };
        if ev.kind == EventKind::PageWriteBack {
            write_backs += 1;
            assert!(
                ev.txn >= ev.aux,
                "WAL rule violated: page {} written at page_lsn {} with log durable only to {}",
                ev.page,
                ev.aux,
                ev.txn
            );
        }
    }
    assert!(
        write_backs > 0,
        "storm produced no observable page write-backs — eviction pressure too low"
    );

    // Sanity of the partitioned layout itself: traffic spread over shards.
    assert!(pool.partitions() > 1, "stress must run partitioned");
    let stats = pool.shard_stats();
    assert!(
        stats.iter().filter(|&&(h, m, ..)| h + m > 0).count() == stats.len(),
        "every partition should have seen traffic: {stats:?}"
    );
}

#[test]
fn storm_clock_policy() {
    run_storm(EvictionPolicyKind::Clock);
}

#[test]
fn storm_lru_k_policy() {
    run_storm(EvictionPolicyKind::LruK(2));
}

/// Pins cloned and dropped across threads stay balanced, and a page pinned
/// anywhere survives arbitrary eviction pressure from everyone else.
#[test]
fn cross_thread_pin_balance() {
    let obs = Obs::enabled(1 << 10);
    let (_dir, pool, log) = build_pool(EvictionPolicyKind::Clock, obs);
    populate(&pool, &log);

    let hot = pool.pin(PageId(7)).unwrap();
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let pool = pool.clone();
            let hot = hot.clone();
            s.spawn(move || {
                for i in 0..200u32 {
                    let p = 1 + (i * 13 + t * 53) % PAGES;
                    let g = pool.fix_s(PageId(p)).unwrap();
                    assert_eq!(g.page_id(), PageId(p));
                    if i % 10 == 0 {
                        // Re-latch the shared hot page through the clone.
                        let hg = hot.latch_s().unwrap();
                        assert_eq!(hg.page_id(), PageId(7));
                    }
                }
                assert!(pool.is_cached(PageId(7)), "cross-thread pin ignored");
                drop(hot);
            });
        }
    });
    drop(hot);
    assert_eq!(pool.total_pins(), 0);
    pool.validate_mappings();
}
