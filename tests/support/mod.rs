//! Shared fixtures for the cross-crate scenario tests: a bare-index stack
//! (log + pool + locks + transaction manager + one B+-tree) and helpers for
//! making keys. The figure-numbered tests in this directory reproduce the
//! paper's scenarios one-for-one; see EXPERIMENTS.md for the index.

use ariesim::btree::{BTree, IndexRm, LockProtocol};
use ariesim::common::stats::{new_stats, StatsHandle};
use ariesim::common::tmp::TempDir;
use ariesim::common::{IndexId, IndexKey, PageId, Rid};
use ariesim::lock::LockManager;
use ariesim::obs::{Obs, ObsHandle};
use ariesim::storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim::txn::{RmRegistry, TransactionManager};
use ariesim::wal::{LogManager, LogOptions};
use std::sync::Arc;

#[allow(dead_code)]
pub struct Fix {
    pub _dir: TempDir,
    pub stats: StatsHandle,
    pub log: Arc<LogManager>,
    pub pool: Arc<BufferPool>,
    pub locks: Arc<LockManager>,
    pub tm: Arc<TransactionManager>,
    pub tree: Arc<BTree>,
    pub rms: Arc<RmRegistry>,
    pub obs: ObsHandle,
}

pub fn fix(protocol: LockProtocol, unique: bool) -> Fix {
    fix_with_obs(protocol, unique, Obs::disabled())
}

#[allow(dead_code)]
pub fn fix_with_obs(protocol: LockProtocol, unique: bool, obs: ObsHandle) -> Fix {
    let dir = TempDir::new("scenario");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open_with_obs(
            &dir.file("wal"),
            LogOptions::default(),
            stats.clone(),
            obs.clone(),
        )
        .unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new_with_obs(
        disk,
        log.clone(),
        PoolOptions { frames: 512, ..Default::default() },
        stats.clone(),
        obs.clone(),
    );
    SpaceMap::initialize(&pool).unwrap();
    let locks = Arc::new(LockManager::new_with_obs(stats.clone(), obs.clone()));
    let rms = Arc::new(RmRegistry::new());
    let index_rm = IndexRm::new(pool.clone(), stats.clone());
    rms.register(index_rm.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks.clone(),
        pool.clone(),
        rms.clone(),
        stats.clone(),
    ));
    let txn = tm.begin();
    let root = BTree::create(&txn, IndexId(1), &pool, &log).unwrap();
    tm.commit(&txn).unwrap();
    let tree = BTree::new(
        IndexId(1),
        root,
        unique,
        protocol,
        pool.clone(),
        locks.clone(),
        log.clone(),
        stats.clone(),
    );
    index_rm.register_tree(tree.clone());
    Fix {
        _dir: dir,
        stats,
        log,
        pool,
        locks,
        tm,
        tree,
        rms,
        obs,
    }
}

#[allow(dead_code)]
pub fn data_only() -> Fix {
    fix(LockProtocol::DataOnly, false)
}

pub fn rid(n: u32) -> Rid {
    Rid::new(PageId(1_000_000 + n / 100), (n % 100) as u16)
}

pub fn key(v: impl AsRef<[u8]>, n: u32) -> IndexKey {
    IndexKey::new(v.as_ref().to_vec(), rid(n))
}

#[allow(dead_code)]
pub fn nkey(n: u32) -> IndexKey {
    key(format!("key-{n:08}"), n)
}
