//! End-to-end span attribution: a real workload's time breakdown must
//! explain (almost exactly) all of the wall time the harness measured.
//!
//! The tentpole property is *conservation*: every worker wraps each
//! operation attempt in a `UserWork` span, the engine's own spans
//! (lock wait, latch wait, WAL append/fsync, page I/O) nest inside and
//! subtract from their parent's self time, so the per-kind self times sum
//! back to the operations' wall time. If instrumentation double-counts
//! (overlapping spans) or leaks (an early return skipping a guard), the
//! sum drifts and this test fails.

use ariesim::common::tmp::TempDir;
use ariesim::db::{Db, DbOptions};
use ariesim::obs::{Attribution, Obs, SpanKind};
use ariesim_workload::{load, run, KeyDist, MixSpec, Target, WorkloadConfig};

fn cfg(threads: usize) -> WorkloadConfig {
    WorkloadConfig {
        threads,
        ops_per_thread: 150,
        keyspace: 200,
        payload: 48,
        dist: KeyDist::Zipfian(0.99),
        mix: MixSpec::CRUD,
        seed: 0xA77_21B,
        standby_read_fraction: 0.5,
    }
}

/// The breakdown's components sum to ~100% of measured wall time, at one
/// thread and under contention.
#[test]
fn breakdown_sums_to_wall_time() {
    for threads in [1usize, 4] {
        let dir = TempDir::new("attribution");
        let db = Db::open_with_obs(
            dir.path(),
            DbOptions {
                frames: 256,
                ..DbOptions::default()
            },
            // Large ring: the exactness check below wants a complete dump.
            Obs::enabled(1 << 18),
        )
        .unwrap();
        let c = cfg(threads);
        load(&db, &c).unwrap();
        let res = run(&Target::Standalone(&db), &c).unwrap();

        assert!(res.wall_ns > 0, "workload measured no wall time");
        let cov = res.attribution_coverage();
        assert!(
            (0.90..=1.05).contains(&cov),
            "{threads} threads: breakdown explains {:.1}% of wall time \
             (attributed {}ns of {}ns)",
            100.0 * cov,
            res.breakdown.total_ns(),
            res.wall_ns
        );

        // The commit path must actually decompose: every committed op
        // forced the log, so WAL append and fsync time must appear, and
        // the residual user work dominates nothing pathological.
        let b = &res.breakdown;
        assert!(b.count[SpanKind::UserWork as usize] >= res.ops);
        assert!(b.self_ns[SpanKind::WalAppend as usize] > 0, "no WAL append time");
        assert!(b.self_ns[SpanKind::WalFsync as usize] > 0, "no WAL fsync time");

        // Offline fold of the JSONL dump agrees exactly with the live
        // totals when the ring did not wrap.
        let dump = db.obs().ring.dump_jsonl();
        let a = Attribution::from_jsonl(&dump);
        if a.complete() {
            assert_eq!(a.self_ns, b.self_ns, "offline fold diverged from live totals");
            assert_eq!(a.count, b.count);
            assert!(!a.per_txn.is_empty(), "per-transaction rows missing");
        } else {
            // A wrapped ring must say so rather than under-report silently.
            assert!(a.dropped > 0);
            assert!(a.render().contains("WARNING"));
        }
    }
}

/// Attributed time can never exceed threads × elapsed: spans are
/// per-thread self times, so the aggregate is bounded by total CPU-time
/// available to the workers.
#[test]
fn attribution_bounded_by_elapsed() {
    let dir = TempDir::new("attribution-bound");
    let db = Db::open_with_obs(
        dir.path(),
        DbOptions {
            frames: 256,
            ..DbOptions::default()
        },
        Obs::enabled(1 << 12),
    )
    .unwrap();
    let c = cfg(2);
    load(&db, &c).unwrap();
    let res = run(&Target::Standalone(&db), &c).unwrap();
    let budget = res.elapsed.as_nanos() as u64 * res.threads as u64;
    assert!(
        res.breakdown.total_ns() <= budget + budget / 10,
        "attributed {}ns exceeds {} threads x {}ns elapsed",
        res.breakdown.total_ns(),
        res.threads,
        res.elapsed.as_nanos()
    );
}
