//! Figures 1 and 3 — the paper's two motivating race scenarios.
//!
//! **Figure 1 (logical undo):** T1 inserts K8 into page P1; T2 splits P1,
//! moving K8 to P2; T1 rolls back. The undo cannot be page-oriented (K8 is
//! no longer on P1): ARIES/IM re-traverses from the root, deletes K8 from
//! P2, and logs the change there via a CLR.
//!
//! **Figure 3 (traverser vs unfinished SMO):** T2 wants to modify a leaf
//! that participates in T1's not-yet-complete SMO (SM_Bit = '1'). T2 must
//! wait — via an instant S tree latch — until the SMO finishes, otherwise a
//! later page-oriented undo of the incomplete SMO would wipe out T2's
//! committed change.

mod support;

use ariesim::btree::LockProtocol;
use ariesim::common::Lsn;
use ariesim::wal::RecordKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use support::{fix, nkey};

#[test]
fn figure1_logical_undo_clr_targets_new_page() {
    let f = fix(LockProtocol::DataOnly, false);
    // Fill "P1" (a single root leaf) close to capacity.
    let setup = f.tm.begin();
    for i in 0..320u32 {
        f.tree.insert(&setup, &nkey(2 * i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let p1 = f.tree.leaf_for_value(&nkey(640).value).unwrap();

    // T1 inserts K8 — the highest key, destined for the right half.
    let t1 = f.tm.begin();
    let k8 = nkey(700_000);
    f.tree.insert(&t1, &k8).unwrap();
    let insert_rec = f
        .log
        .scan(Lsn::NULL)
        .map(|r| r.unwrap())
        .filter(|r| r.txn == t1.id && r.kind == RecordKind::Update)
        .last()
        .unwrap();
    assert_eq!(insert_rec.page, p1, "K8 initially lives on P1");

    // T2 splits P1 by filling it further; K8 moves to the new page P2.
    let t2 = f.tm.begin();
    let mut i = 0u32;
    while f.stats.snapshot().smo_splits == 0 {
        f.tree.insert(&t2, &nkey(2 * i + 1)).unwrap();
        i += 1;
        assert!(i < 2000);
    }
    f.tm.commit(&t2).unwrap();
    let p2 = f.tree.leaf_for_value(&k8.value).unwrap();
    assert_ne!(p2, p1, "the split moved K8 to a different page");

    // T1 rolls back: the undo must be LOGICAL and the CLR must target P2.
    let before = f.stats.snapshot();
    f.tm.rollback(&t1).unwrap();
    let delta = f.stats.snapshot().since(&before);
    assert_eq!(delta.undo_logical, 1, "page-oriented undo impossible");
    let clr = f
        .log
        .scan(Lsn::NULL)
        .map(|r| r.unwrap())
        .filter(|r| r.txn == t1.id && r.kind == RecordKind::Clr)
        .last()
        .unwrap();
    assert_eq!(
        clr.page, p2,
        "the compensation is logged against the page that holds K8 NOW"
    );
    // K8 gone, everything else intact.
    assert!(!f.tree.scan_all_unlocked().unwrap().contains(&k8));
    f.tree.check_structure().unwrap();
}

#[test]
fn figure3_insert_waits_for_unfinished_smo() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..10u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let leaf = f.tree.leaf_for_value(&nkey(5).value).unwrap();

    // Manufacture T1's in-progress SMO: SM_Bit set on the leaf, X tree latch
    // held (exactly the state between an SMO's leaf-level action and its
    // completion).
    f.tree
        .set_page_bits_for_test(leaf, Some(true), None)
        .unwrap();
    let smo_latch = f.tree.hold_tree_latch_x();

    // T2's insert (of value "B", not ambiguous — the leaf is the right one)
    // must still wait for the SMO to finish (§3: otherwise T2 could commit
    // and then have its change wiped out by the SMO's page-oriented undo).
    let done = Arc::new(AtomicBool::new(false));
    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let t2 = tm.begin();
            tree.insert(&t2, &nkey(5_000)).unwrap();
            tm.commit(&t2).unwrap();
            done.store(true, Ordering::SeqCst);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(80));
    assert!(
        !done.load(Ordering::SeqCst),
        "insert must wait while SM_Bit=1 and the SMO holds the tree latch"
    );
    // SMO completes: latch released (bit reset is the waiter's job).
    drop(smo_latch);
    h.join().unwrap();
    assert!(done.load(Ordering::SeqCst));
    // The waiter reset the bit after establishing a POSC.
    let g = f.pool.fix_s(leaf).unwrap();
    assert!(!g.sm_bit(), "bits reset once the SMO completed");
    drop(g);
    f.tree.check_structure().unwrap();
}

#[test]
fn figure3_fetch_proceeds_despite_unfinished_smo_on_leaf() {
    // Contrast case the paper allows: *retrievals* on a leaf with SM_Bit=1
    // need no tree-latch wait when the routing is unambiguous — only
    // modifications must wait (Figure 4 note 3).
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..10u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let leaf = f.tree.leaf_for_value(&nkey(5).value).unwrap();
    f.tree
        .set_page_bits_for_test(leaf, Some(true), None)
        .unwrap();
    let _smo_latch = f.tree.hold_tree_latch_x();

    let txn = f.tm.begin();
    use ariesim::btree::fetch::{FetchCond, FetchResult};
    let r = f.tree.fetch(&txn, &nkey(5).value, FetchCond::Eq).unwrap();
    assert!(matches!(r, FetchResult::Found(_)));
    f.tm.commit(&txn).unwrap();
}
