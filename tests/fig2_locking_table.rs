//! Figure 2 conformance — "Summary of Locking in ARIES/IM":
//!
//! |                    | NEXT KEY               | CURRENT KEY                                   |
//! |--------------------|------------------------|-----------------------------------------------|
//! | FETCH & FETCH NEXT |                        | S commit                                      |
//! | INSERT             | X instant              | X commit *if index-specific locking*          |
//! | DELETE             | X commit               | X instant *if index-specific locking*         |
//!
//! (Under data-only locking the current-key column is empty because the
//! record manager's RID lock already covers it — §2.1.)
//!
//! Each test drives one operation and asserts exactly which lock the index
//! manager took, in which mode, for which duration. Instant-duration locks
//! leave no residue, so they are asserted via (a) the `locks_instant`
//! counter and (b) the absence of a residual grant.

mod support;

use ariesim::btree::fetch::{FetchCond, FetchResult};
use ariesim::btree::LockProtocol;
use ariesim::lock::{LockDuration, LockMode, LockName};
use support::{fix, key, nkey};

fn key_name_index_specific(k: &ariesim::common::IndexKey) -> LockName {
    LockName::KeyValue(ariesim::common::IndexId(1), k.encode())
}

// --- FETCH row of the table ------------------------------------------------

#[test]
fn fetch_found_current_key_s_commit_data_only() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(10)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    assert!(matches!(
        f.tree.fetch(&txn, &nkey(10).value, FetchCond::Eq).unwrap(),
        FetchResult::Found(_)
    ));
    // Data-only: the "key lock" IS the record lock on the key's RID.
    let name = LockName::Record(support::rid(10));
    assert_eq!(f.locks.holds(txn.id, &name), Some(LockMode::S));
    assert_eq!(
        f.locks.holds_duration(txn.id, &name),
        Some(LockDuration::Commit)
    );
    f.tm.commit(&txn).unwrap();
    assert_eq!(f.locks.holds(txn.id, &name), None, "commit releases");
}

#[test]
fn fetch_not_found_locks_next_key_s_commit() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(20)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    assert_eq!(
        f.tree.fetch(&txn, &nkey(15).value, FetchCond::Eq).unwrap(),
        FetchResult::NotFound
    );
    let next = LockName::Record(support::rid(20));
    assert_eq!(f.locks.holds(txn.id, &next), Some(LockMode::S));
    assert_eq!(
        f.locks.holds_duration(txn.id, &next),
        Some(LockDuration::Commit)
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn fetch_next_locks_each_returned_key_s_commit() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in [1u32, 2, 3] {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    let (first, mut cursor) = f
        .tree
        .open_scan(&txn, &nkey(1).value, FetchCond::Ge)
        .unwrap();
    assert_eq!(first, Some(nkey(1)));
    let second = f.tree.fetch_next(&txn, cursor.as_mut().unwrap()).unwrap();
    assert_eq!(second, Some(nkey(2)));
    for i in [1u32, 2] {
        let name = LockName::Record(support::rid(i));
        assert_eq!(f.locks.holds(txn.id, &name), Some(LockMode::S), "key {i}");
        assert_eq!(
            f.locks.holds_duration(txn.id, &name),
            Some(LockDuration::Commit)
        );
    }
    f.tm.commit(&txn).unwrap();
}

// --- INSERT row -------------------------------------------------------------

#[test]
fn insert_next_key_x_instant_data_only() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(30)).unwrap();
    f.tm.commit(&setup).unwrap();

    let before = f.stats.snapshot();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(25)).unwrap(); // next key = nkey(30)
    let delta = f.stats.snapshot().since(&before);
    assert_eq!(delta.locks_next_key, 1, "exactly one next-key lock");
    assert_eq!(delta.locks_instant, 1, "and it was instant duration");
    // Instant means: no residue on the next key.
    let next = LockName::Record(support::rid(30));
    assert_eq!(f.locks.holds(txn.id, &next), None);
    // Data-only: no current-key lock taken by the index manager either
    // (the record manager would hold it; none exists in this bare-index rig).
    let cur = LockName::Record(support::rid(25));
    assert_eq!(f.locks.holds(txn.id, &cur), None);
    f.tm.commit(&txn).unwrap();
}

#[test]
fn insert_current_key_x_commit_if_index_specific() {
    let f = fix(LockProtocol::IndexSpecific, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(30)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    let k = nkey(25);
    f.tree.insert(&txn, &k).unwrap();
    let cur = key_name_index_specific(&k);
    assert_eq!(f.locks.holds(txn.id, &cur), Some(LockMode::X));
    assert_eq!(
        f.locks.holds_duration(txn.id, &cur),
        Some(LockDuration::Commit)
    );
    // Next key still instant: no residue.
    let next = key_name_index_specific(&nkey(30));
    assert_eq!(f.locks.holds(txn.id, &next), None);
    f.tm.commit(&txn).unwrap();
}

#[test]
fn insert_at_right_edge_locks_eof_instant() {
    let f = fix(LockProtocol::DataOnly, false);
    let before = f.stats.snapshot();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(99)).unwrap(); // empty tree: next = EOF
    let delta = f.stats.snapshot().since(&before);
    assert_eq!(delta.locks_eof, 1);
    assert_eq!(delta.locks_instant, 1);
    assert_eq!(
        f.locks
            .holds(txn.id, &LockName::Eof(ariesim::common::IndexId(1))),
        None,
        "instant: no residue"
    );
    f.tm.commit(&txn).unwrap();
}

// --- DELETE row -------------------------------------------------------------

#[test]
fn delete_next_key_x_commit_data_only() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(40)).unwrap();
    f.tree.insert(&setup, &nkey(50)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    f.tree.delete(&txn, &nkey(40)).unwrap();
    let next = LockName::Record(support::rid(50));
    assert_eq!(f.locks.holds(txn.id, &next), Some(LockMode::X));
    assert_eq!(
        f.locks.holds_duration(txn.id, &next),
        Some(LockDuration::Commit),
        "delete's next-key lock is COMMIT duration (the stable tripping point, §2.6)"
    );
    f.tm.commit(&txn).unwrap();
    assert_eq!(f.locks.holds(txn.id, &next), None);
}

#[test]
fn delete_current_key_x_instant_if_index_specific() {
    let f = fix(LockProtocol::IndexSpecific, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(40)).unwrap();
    f.tree.insert(&setup, &nkey(50)).unwrap();
    f.tm.commit(&setup).unwrap();

    let before = f.stats.snapshot();
    let txn = f.tm.begin();
    let k = nkey(40);
    f.tree.delete(&txn, &k).unwrap();
    let delta = f.stats.snapshot().since(&before);
    // Current key was locked X instant: counted, no residue.
    assert!(delta.locks_instant >= 1);
    assert_eq!(f.locks.holds(txn.id, &key_name_index_specific(&k)), None);
    // Next key X commit as always.
    let next = key_name_index_specific(&nkey(50));
    assert_eq!(f.locks.holds(txn.id, &next), Some(LockMode::X));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn delete_last_key_locks_eof_commit() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(60)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    f.tree.delete(&txn, &nkey(60)).unwrap();
    let eof = LockName::Eof(ariesim::common::IndexId(1));
    assert_eq!(f.locks.holds(txn.id, &eof), Some(LockMode::X));
    assert_eq!(
        f.locks.holds_duration(txn.id, &eof),
        Some(LockDuration::Commit)
    );
    f.tm.commit(&txn).unwrap();
}

// --- the asymmetry the paper explains in §2.6 ------------------------------

#[test]
fn uncommitted_delete_blocks_fetch_but_uncommitted_insert_is_visible_tripwire() {
    // Delete leaves a commit-duration wall on the next key: a fetch of the
    // deleted value blocks until the deleter resolves.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("b", 1)).unwrap();
    f.tree.insert(&setup, &key("c", 2)).unwrap();
    f.tm.commit(&setup).unwrap();

    let deleter = f.tm.begin();
    f.tree.delete(&deleter, &key("b", 1)).unwrap();

    let tm = f.tm.clone();
    let tree = f.tree.clone();
    let h = std::thread::spawn(move || {
        let reader = tm.begin();
        // Fetch "b": not found physically; its next key "c" carries the
        // deleter's X commit lock → the reader blocks (trips).
        let r = tree.fetch(&reader, b"b", FetchCond::Eq).unwrap();
        tm.commit(&reader).unwrap();
        r
    });
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!h.is_finished(), "fetch must trip on the deleter's wall");
    f.tm.rollback(&deleter).unwrap();
    // After rollback the key is back: the reader finds it.
    assert!(matches!(h.join().unwrap(), FetchResult::Found(_)));

    // An uncommitted *insert* is its own tripping point: a fetch of it
    // blocks on the inserted key's lock itself.
    let inserter = f.tm.begin();
    f.tree.insert(&inserter, &key("bb", 3)).unwrap();
    // (Bare-index rig: take the record lock the record manager would hold.)
    f.locks
        .request(
            inserter.id,
            LockName::Record(support::rid(3)),
            LockMode::X,
            LockDuration::Commit,
            false,
        )
        .unwrap();
    let tm = f.tm.clone();
    let tree = f.tree.clone();
    let h = std::thread::spawn(move || {
        let reader = tm.begin();
        let r = tree.fetch(&reader, b"bb", FetchCond::Eq).unwrap();
        tm.commit(&reader).unwrap();
        r
    });
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!h.is_finished(), "fetch must block on the uncommitted insert");
    f.tm.commit(&inserter).unwrap();
    assert!(matches!(h.join().unwrap(), FetchResult::Found(_)));
}
