//! Repeatable-read / serializability guarantees (the paper's §2.2–2.6):
//! next-key locking must make "not found" answers stable (no phantoms),
//! protect uncommitted deletes, and protect range-scan edges.

mod support;

use ariesim::btree::fetch::{FetchCond, FetchResult};
use ariesim::btree::LockProtocol;
use support::{fix, nkey};

#[test]
fn phantom_insert_blocks_until_reader_commits() {
    // Reader fetches value 15 → not found → S commit lock on next key 20.
    // Writer inserting 15 needs an instant X lock on 20 → blocks.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(20)).unwrap();
    f.tm.commit(&setup).unwrap();

    let reader = f.tm.begin();
    assert_eq!(
        f.tree.fetch(&reader, &nkey(15).value, FetchCond::Eq).unwrap(),
        FetchResult::NotFound
    );

    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let writer = tm.begin();
            tree.insert(&writer, &nkey(15)).unwrap();
            tm.commit(&writer).unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(
        !h.is_finished(),
        "phantom insert must block on the reader's next-key lock"
    );
    // Re-reading gives the same answer while the writer waits: RR holds.
    assert_eq!(
        f.tree.fetch(&reader, &nkey(15).value, FetchCond::Eq).unwrap(),
        FetchResult::NotFound
    );
    f.tm.commit(&reader).unwrap();
    h.join().unwrap();
}

#[test]
fn phantom_insert_at_eof_blocks_on_eof_lock() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(10)).unwrap();
    f.tm.commit(&setup).unwrap();

    let reader = f.tm.begin();
    // Not found beyond the right edge → EOF locked.
    assert_eq!(
        f.tree.fetch(&reader, &nkey(99).value, FetchCond::Eq).unwrap(),
        FetchResult::NotFound
    );
    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let writer = tm.begin();
            tree.insert(&writer, &nkey(99)).unwrap();
            tm.commit(&writer).unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!h.is_finished(), "EOF lock must block the right-edge insert");
    f.tm.commit(&reader).unwrap();
    h.join().unwrap();
}

#[test]
fn range_scan_edges_are_protected() {
    // A scan over [10, 30] locks every returned key plus the terminating
    // key: inserts anywhere inside the range block until the scanner ends.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in [10u32, 20, 30, 40] {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let scanner = f.tm.begin();
    let (first, mut cur) = f
        .tree
        .open_scan(&scanner, &nkey(10).value, FetchCond::Ge)
        .unwrap();
    assert_eq!(first, Some(nkey(10)));
    let mut cur = cur.take().unwrap();
    // Scan through 20, 30, and stop after seeing 40 (> 30): 40 is locked.
    loop {
        let k = f.tree.fetch_next(&scanner, &mut cur).unwrap().unwrap();
        if k.value >= nkey(40).value {
            break;
        }
    }
    // An insert of 25 (inside the range) needs an instant X lock on 30 —
    // held S by the scanner → blocks.
    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let w = tm.begin();
            tree.insert(&w, &nkey(25)).unwrap();
            tm.commit(&w).unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!h.is_finished(), "insert inside a scanned range must block");
    // An insert of 35 (between the stop key and the terminator 40) also
    // blocks — conservative but correct RR: 40 is the locked edge.
    f.tm.commit(&scanner).unwrap();
    h.join().unwrap();
}

#[test]
fn uncommitted_delete_invisible_to_nobody() {
    // §2.6: a deleted key disappears physically, but the deleter's commit X
    // next-key lock makes sure no one can *conclude* it is gone until the
    // deleter resolves. If the deleter rolls back, readers see the key again.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(10)).unwrap();
    f.tree.insert(&setup, &nkey(20)).unwrap();
    f.tm.commit(&setup).unwrap();

    let deleter = f.tm.begin();
    f.tree.delete(&deleter, &nkey(10)).unwrap();

    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let r = tm.begin();
            let res = tree.fetch(&r, &nkey(10).value, FetchCond::Eq).unwrap();
            tm.commit(&r).unwrap();
            res
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!h.is_finished(), "reader must trip on the deleter's wall");
    f.tm.rollback(&deleter).unwrap();
    assert_eq!(h.join().unwrap(), FetchResult::Found(nkey(10)));
}

#[test]
fn unique_reinsert_of_uncommitted_deleted_value_blocks() {
    // §2.4 unique-index rule: T2 inserting a value whose only instance was
    // deleted by the uncommitted T1 must wait (T1 could roll back, which
    // would otherwise create a duplicate).
    let f = fix(LockProtocol::DataOnly, true);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &nkey(10)).unwrap();
    f.tree.insert(&setup, &nkey(20)).unwrap();
    f.tm.commit(&setup).unwrap();

    let t1 = f.tm.begin();
    f.tree.delete(&t1, &nkey(10)).unwrap();

    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let t2 = tm.begin();
            // Same value, fresh RID.
            let k = ariesim::common::IndexKey::new(nkey(10).value.clone(), support::rid(999));
            let r = tree.insert(&t2, &k);
            match &r {
                Ok(()) => tm.commit(&t2).unwrap(),
                Err(_) => tm.rollback(&t2).unwrap(),
            }
            r
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!h.is_finished(), "re-insert must wait for the deleter");
    // T1 rolls back: the original value returns, so T2's insert must now
    // fail with a unique violation.
    f.tm.rollback(&t1).unwrap();
    let res = h.join().unwrap();
    assert!(
        matches!(res, Err(ariesim::common::Error::UniqueViolation)),
        "after the deleter's rollback the value exists again: {res:?}"
    );
}

#[test]
fn fetch_answer_stable_across_writer_commit_elsewhere() {
    // Sanity: locks only serialize *conflicting* key ranges; disjoint work
    // flows freely while the reader's RR answers stay stable.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in [10u32, 20] {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let reader = f.tm.begin();
    assert_eq!(
        f.tree.fetch(&reader, &nkey(10).value, FetchCond::Eq).unwrap(),
        FetchResult::Found(nkey(10))
    );
    // A writer works on a far-away range and commits — no interference.
    let writer = f.tm.begin();
    for i in 100..120u32 {
        f.tree.insert(&writer, &nkey(i)).unwrap();
    }
    f.tm.commit(&writer).unwrap();
    assert_eq!(
        f.tree.fetch(&reader, &nkey(10).value, FetchCond::Eq).unwrap(),
        FetchResult::Found(nkey(10))
    );
    f.tm.commit(&reader).unwrap();
}
