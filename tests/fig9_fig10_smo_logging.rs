//! Figures 9 and 10 — the exact log-record shapes of the two SMOs.
//!
//! Figure 9 (page split during forward processing): all the split's records
//! are written, then the **dummy CLR** whose `UndoNxtLSN` points at the
//! transaction's last record *before* the SMO, and only then the key insert
//! that necessitated the split. A rollback therefore undoes the insert and
//! skips the split.
//!
//! Figure 10 (page deletion): the **key delete is logged first**, then the
//! page-deletion records, then the dummy CLR whose `UndoNxtLSN` points *at
//! the key-deletion record* — a rollback skips the SMO but still undoes the
//! delete (logically, since the page is gone).

mod support;

use ariesim::btree::body::IndexBody;
use ariesim::btree::LockProtocol;
use ariesim::common::Lsn;
use ariesim::wal::{LogRecord, RecordKind, RmId};
use support::{fix, nkey};

fn index_records_of_txn(f: &support::Fix, txn: ariesim::common::TxnId) -> Vec<LogRecord> {
    f.log
        .scan(Lsn::NULL)
        .map(|r| r.unwrap())
        .filter(|r| r.txn == txn)
        .collect()
}

fn body_of(rec: &LogRecord) -> Option<IndexBody> {
    (rec.rm == RmId::Index).then(|| IndexBody::decode(&rec.body).unwrap())
}

#[test]
fn figure9_split_log_sequence() {
    let f = fix(LockProtocol::DataOnly, false);
    // Fill one leaf to the brim in a committed transaction.
    let setup = f.tm.begin();
    let mut i = 0u32;
    loop {
        f.tree.insert(&setup, &nkey(i * 2)).unwrap();
        i += 1;
        if f.stats.snapshot().smo_splits > 0 {
            panic!("setup must not split");
        }
        // Stop when the leaf is nearly full (next insert will split): probe
        // by free space through the structure checker instead — simpler:
        // fixed count that fits exactly below one 8 KiB leaf.
        if i == 330 {
            break;
        }
    }
    f.tm.commit(&setup).unwrap();

    // T1's insert triggers the split.
    let t1 = f.tm.begin();
    let pre_smo_lsn = t1.last_lsn(); // = Begin record
    let mut j = 330u32;
    while f.stats.snapshot().smo_splits == 0 {
        f.tree.insert(&t1, &nkey(j * 2)).unwrap();
        j += 1;
        assert!(j < 1000);
    }
    let recs = index_records_of_txn(&f, t1.id);

    // Find the dummy CLR.
    let dummy_pos = recs
        .iter()
        .position(|r| r.kind == RecordKind::DummyClr)
        .expect("split must end with a dummy CLR");
    let dummy = &recs[dummy_pos];

    // Everything between the last pre-SMO record and the dummy CLR is the
    // SMO body: page format, shrink, separator post, space-map update.
    let smo_body: Vec<&LogRecord> = recs[..dummy_pos]
        .iter()
        .filter(|r| r.lsn > dummy.undo_next_lsn)
        .collect();
    assert!(
        smo_body
            .iter()
            .any(|r| matches!(body_of(r), Some(IndexBody::PageFormat { .. }))),
        "SMO logs the new page's format"
    );
    assert!(
        smo_body
            .iter()
            .any(|r| matches!(body_of(r), Some(IndexBody::SplitShrink { .. }))),
        "SMO logs the split page's shrink"
    );
    assert!(
        smo_body.iter().any(|r| r.rm == RmId::Space),
        "SMO logs the page allocation"
    );
    // This split grew the root (level-0 root split): RootReplace appears.
    assert!(
        smo_body
            .iter()
            .any(|r| matches!(body_of(r), Some(IndexBody::RootReplace { .. }))),
        "first split of a root-leaf grows the tree"
    );
    // All SMO records are regular redo-undo updates, not CLRs.
    assert!(smo_body.iter().all(|r| r.kind == RecordKind::Update));

    // Figure 9's ordering: the key insert that caused the split comes AFTER
    // the dummy CLR.
    let insert_after = recs[dummy_pos + 1..]
        .iter()
        .find(|r| matches!(body_of(r), Some(IndexBody::InsertKey { .. })))
        .expect("the causing insert follows the SMO");
    assert!(insert_after.lsn > dummy.lsn);

    // UndoNxtLSN of the dummy CLR = last record before the SMO started.
    assert!(dummy.undo_next_lsn >= pre_smo_lsn);
    assert!(
        dummy.undo_next_lsn < smo_body.first().unwrap().lsn,
        "dummy CLR points before the whole SMO"
    );

    // And the semantic consequence: rollback undoes T1's inserts but not the
    // split.
    let leaves_now = f.tree.check_structure().unwrap().leaves;
    f.tm.rollback(&t1).unwrap();
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 330, "T1's inserts all undone");
    assert_eq!(report.leaves, leaves_now, "split survived the rollback");
}

#[test]
fn figure10_page_delete_log_sequence() {
    let f = fix(LockProtocol::DataOnly, false);
    // Two leaves worth of keys, committed.
    let setup = f.tm.begin();
    for i in 0..500u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let leaves_before = f.tree.check_structure().unwrap().leaves;
    assert!(leaves_before >= 2);

    // T1 deletes keys until a page empties and is deleted.
    let t1 = f.tm.begin();
    let mut i = 0u32;
    while f.stats.snapshot().smo_page_deletes == 0 {
        f.tree.delete(&t1, &nkey(i)).unwrap();
        i += 1;
        assert!(i < 500);
    }
    let recs = index_records_of_txn(&f, t1.id);
    let dummy = recs
        .iter()
        .rfind(|r| r.kind == RecordKind::DummyClr)
        .expect("page delete ends with a dummy CLR");

    // Figure 10: the dummy CLR's UndoNxtLSN is the KEY DELETION record.
    let target = f.log.read(dummy.undo_next_lsn).unwrap();
    assert!(
        matches!(body_of(&target), Some(IndexBody::DeleteKey { .. })),
        "dummy CLR must point at the key-deletion record, got {:?}",
        target.kind
    );

    // The SMO body (records between the key delete and the dummy CLR):
    // chain updates, separator removal, page free, space free.
    let smo_body: Vec<&LogRecord> = recs
        .iter()
        .filter(|r| r.lsn > dummy.undo_next_lsn && r.lsn < dummy.lsn)
        .collect();
    assert!(smo_body
        .iter()
        .any(|r| matches!(body_of(r), Some(IndexBody::RemoveSeparator { .. }))));
    assert!(smo_body
        .iter()
        .any(|r| matches!(body_of(r), Some(IndexBody::FreePage { .. }))));
    assert!(smo_body.iter().any(|r| r.rm == RmId::Space));
    assert!(smo_body.iter().all(|r| r.kind == RecordKind::Update));

    // Rollback: the page deletion is NOT undone page-for-page, but the key
    // deletes are (the emptied page's keys return via logical undo, which
    // may re-split).
    f.tm.rollback(&t1).unwrap();
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 500, "every deleted key restored");
}
