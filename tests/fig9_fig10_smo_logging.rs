//! Figures 9 and 10 — the exact log-record shapes of the two SMOs.
//!
//! Figure 9 (page split during forward processing): all the split's records
//! are written, then the **dummy CLR** whose `UndoNxtLSN` points at the
//! transaction's last record *before* the SMO, and only then the key insert
//! that necessitated the split. A rollback therefore undoes the insert and
//! skips the split.
//!
//! Figure 10 (page deletion): the **key delete is logged first**, then the
//! page-deletion records, then the dummy CLR whose `UndoNxtLSN` points *at
//! the key-deletion record* — a rollback skips the SMO but still undoes the
//! delete (logically, since the page is gone).

mod support;

use ariesim::btree::body::IndexBody;
use ariesim::btree::LockProtocol;
use ariesim::common::Lsn;
use ariesim::wal::{LogRecord, RecordKind, RmId};
use support::{fix, nkey};

fn index_records_of_txn(f: &support::Fix, txn: ariesim::common::TxnId) -> Vec<LogRecord> {
    f.log
        .scan(Lsn::NULL)
        .map(|r| r.unwrap())
        .filter(|r| r.txn == txn)
        .collect()
}

fn body_of(rec: &LogRecord) -> Option<IndexBody> {
    (rec.rm == RmId::Index).then(|| IndexBody::decode(&rec.body).unwrap())
}

#[test]
fn figure9_split_log_sequence() {
    let f = fix(LockProtocol::DataOnly, false);
    // Fill one leaf to the brim in a committed transaction.
    let setup = f.tm.begin();
    let mut i = 0u32;
    loop {
        f.tree.insert(&setup, &nkey(i * 2)).unwrap();
        i += 1;
        if f.stats.snapshot().smo_splits > 0 {
            panic!("setup must not split");
        }
        // Stop when the leaf is nearly full (next insert will split): probe
        // by free space through the structure checker instead — simpler:
        // fixed count that fits exactly below one 8 KiB leaf.
        if i == 330 {
            break;
        }
    }
    f.tm.commit(&setup).unwrap();

    // T1's insert triggers the split.
    let t1 = f.tm.begin();
    let pre_smo_lsn = t1.last_lsn(); // = Begin record
    let mut j = 330u32;
    while f.stats.snapshot().smo_splits == 0 {
        f.tree.insert(&t1, &nkey(j * 2)).unwrap();
        j += 1;
        assert!(j < 1000);
    }
    let recs = index_records_of_txn(&f, t1.id);

    // Find the dummy CLR.
    let dummy_pos = recs
        .iter()
        .position(|r| r.kind == RecordKind::DummyClr)
        .expect("split must end with a dummy CLR");
    let dummy = &recs[dummy_pos];

    // Everything between the last pre-SMO record and the dummy CLR is the
    // SMO body: page format, shrink, separator post, space-map update.
    let smo_body: Vec<&LogRecord> = recs[..dummy_pos]
        .iter()
        .filter(|r| r.lsn > dummy.undo_next_lsn)
        .collect();
    assert!(
        smo_body
            .iter()
            .any(|r| matches!(body_of(r), Some(IndexBody::PageFormat { .. }))),
        "SMO logs the new page's format"
    );
    assert!(
        smo_body
            .iter()
            .any(|r| matches!(body_of(r), Some(IndexBody::SplitShrink { .. }))),
        "SMO logs the split page's shrink"
    );
    assert!(
        smo_body.iter().any(|r| r.rm == RmId::Space),
        "SMO logs the page allocation"
    );
    // This split grew the root (level-0 root split): RootReplace appears.
    assert!(
        smo_body
            .iter()
            .any(|r| matches!(body_of(r), Some(IndexBody::RootReplace { .. }))),
        "first split of a root-leaf grows the tree"
    );
    // All SMO records are regular redo-undo updates, not CLRs.
    assert!(smo_body.iter().all(|r| r.kind == RecordKind::Update));

    // Figure 9's ordering: the key insert that caused the split comes AFTER
    // the dummy CLR.
    let insert_after = recs[dummy_pos + 1..]
        .iter()
        .find(|r| matches!(body_of(r), Some(IndexBody::InsertKey { .. })))
        .expect("the causing insert follows the SMO");
    assert!(insert_after.lsn > dummy.lsn);

    // UndoNxtLSN of the dummy CLR = last record before the SMO started.
    assert!(dummy.undo_next_lsn >= pre_smo_lsn);
    assert!(
        dummy.undo_next_lsn < smo_body.first().unwrap().lsn,
        "dummy CLR points before the whole SMO"
    );

    // And the semantic consequence: rollback undoes T1's inserts but not the
    // split.
    let leaves_now = f.tree.check_structure().unwrap().leaves;
    f.tm.rollback(&t1).unwrap();
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 330, "T1's inserts all undone");
    assert_eq!(report.leaves, leaves_now, "split survived the rollback");
}

#[test]
fn figure10_page_delete_log_sequence() {
    let f = fix(LockProtocol::DataOnly, false);
    // Two leaves worth of keys, committed.
    let setup = f.tm.begin();
    for i in 0..500u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let leaves_before = f.tree.check_structure().unwrap().leaves;
    assert!(leaves_before >= 2);

    // T1 deletes keys until a page empties and is deleted.
    let t1 = f.tm.begin();
    let mut i = 0u32;
    while f.stats.snapshot().smo_page_deletes == 0 {
        f.tree.delete(&t1, &nkey(i)).unwrap();
        i += 1;
        assert!(i < 500);
    }
    let recs = index_records_of_txn(&f, t1.id);
    let dummy = recs
        .iter()
        .rfind(|r| r.kind == RecordKind::DummyClr)
        .expect("page delete ends with a dummy CLR");

    // Figure 10: the dummy CLR's UndoNxtLSN is the KEY DELETION record.
    let target = f.log.read(dummy.undo_next_lsn).unwrap();
    assert!(
        matches!(body_of(&target), Some(IndexBody::DeleteKey { .. })),
        "dummy CLR must point at the key-deletion record, got {:?}",
        target.kind
    );

    // The SMO body (records between the key delete and the dummy CLR):
    // chain updates, separator removal, page free, space free.
    let smo_body: Vec<&LogRecord> = recs
        .iter()
        .filter(|r| r.lsn > dummy.undo_next_lsn && r.lsn < dummy.lsn)
        .collect();
    assert!(smo_body
        .iter()
        .any(|r| matches!(body_of(r), Some(IndexBody::RemoveSeparator { .. }))));
    assert!(smo_body
        .iter()
        .any(|r| matches!(body_of(r), Some(IndexBody::FreePage { .. }))));
    assert!(smo_body.iter().any(|r| r.rm == RmId::Space));
    assert!(smo_body.iter().all(|r| r.kind == RecordKind::Update));

    // Rollback: the page deletion is NOT undone page-for-page, but the key
    // deletes are (the emptied page's keys return via logical undo, which
    // may re-split).
    f.tm.rollback(&t1).unwrap();
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 500, "every deleted key restored");
}

// ---------------------------------------------------------------------------
// Crash-driven variants: the same Figure 9/10 guarantees checked through
// restart recovery, with the crash instant pinned by the fault registry's
// named crash points instead of a hand-picked log truncation.
// ---------------------------------------------------------------------------

mod crash_variants {
    use ariesim::common::tmp::TempDir;
    use ariesim::common::Lsn;
    use ariesim::db::{Db, DbOptions, Row};
    use ariesim::wal::{LogRecord, RecordKind};
    use ariesim_fault as fault;
    use std::sync::Arc;

    /// Padded key so one 8 KiB leaf holds ~100 keys.
    fn key_of(i: u32) -> Vec<u8> {
        format!("k{i:06}-{:-<40}", "").into_bytes()
    }

    fn row_of(i: u32) -> Row {
        Row::new(vec![key_of(i), format!("v{i}").into_bytes()])
    }

    /// Open a database with `committed` rows committed, ready to split (or
    /// page-delete) in the next transaction.
    fn seeded_db(dir: &TempDir, committed: u32) -> Arc<Db> {
        let db = Db::open(dir.path(), DbOptions::default()).unwrap();
        db.create_table("t", 2).unwrap();
        db.create_index("t_pk", "t", 0, true).unwrap();
        let txn = db.begin();
        for i in 0..committed {
            db.insert_row(&txn, "t", &row_of(i)).unwrap();
        }
        db.commit(&txn).unwrap();
        db
    }

    /// Arm `point` (forced-tail: the whole log tail is durable at the crash,
    /// the adversarial case where the partial SMO's records survive), run
    /// `work` on a loser transaction inserting `lo..` until the crash fires,
    /// and return the loser's TxnId.
    fn crash_inserting(db: Arc<Db>, lo: u32, point: &str) -> u64 {
        let log = db.log.clone();
        fault::set_pre_crash_hook(move || {
            let _ = log.flush_all();
        });
        fault::arm_forced(point, 1);
        fault::activate();
        let loser = std::sync::Mutex::new(0u64);
        let out = fault::run_to_crash(|| {
            let txn = db.begin();
            *loser.lock().unwrap() = txn.id.0;
            for i in lo..lo + 500 {
                db.insert_row(&txn, "t", &row_of(i)).unwrap();
            }
            db.commit(&txn).unwrap();
            drop(db.crash());
        });
        fault::disarm();
        fault::clear_pre_crash_hook();
        let sig = out.crashed().expect("armed SMO point must fire");
        assert_eq!(sig.point, point);
        let id = *loser.lock().unwrap();
        assert!(id != 0);
        id
    }

    fn records_of(db: &Db, txn: u64) -> Vec<LogRecord> {
        db.log
            .scan(Lsn::NULL)
            .map(|r| r.unwrap())
            .filter(|r| r.txn.0 == txn)
            .collect()
    }

    /// Crash between the split's log records (after SplitShrink, before the
    /// separator post and dummy CLR), with the partial SMO's records durable.
    /// Restart must treat them as regular loser updates — undo them one by
    /// one via CLRs with well-formed UndoNxtLSN chaining — and leave the
    /// committed rows and tree structure intact.
    #[test]
    fn figure9_crash_between_split_records_backs_out_partial_smo() {
        let _x = fault::exclusive();
        let dir = TempDir::new("fig9-crash");
        let db = seeded_db(&dir, 100);
        let loser = crash_inserting(db, 100, "smo.split.shrunk");

        let db = Db::open(dir.path(), DbOptions::default()).unwrap();
        let outcome = db.restart_outcome.as_ref().unwrap();
        assert!(outcome.losers.iter().any(|t| t.0 == loser));
        assert!(outcome.undone > 0, "partial SMO records must be undone");
        let report = db.verify_consistency().unwrap();
        assert_eq!(report.rows, 100, "exactly the committed rows survive");

        // The restart-written CLRs chain backwards: each CLR's UndoNxtLSN is
        // below its own LSN and the chain is strictly descending, ending in
        // the loser's End record — interrupted rollback can always resume.
        let recs = records_of(&db, loser);
        let clrs: Vec<&LogRecord> = recs
            .iter()
            .filter(|r| r.kind == RecordKind::Clr)
            .collect();
        assert!(!clrs.is_empty(), "restart must write CLRs for the loser");
        let mut prev = Lsn(u64::MAX);
        for clr in &clrs {
            assert!(clr.undo_next_lsn < clr.lsn, "CLR points strictly back");
            assert!(
                clr.undo_next_lsn < prev,
                "UndoNxtLSN chain must descend monotonically"
            );
            prev = clr.undo_next_lsn;
        }
        assert!(
            recs.iter().any(|r| r.kind == RecordKind::End),
            "loser fully rolled back at restart"
        );
    }

    /// Crash immediately after the split's dummy CLR (durable). Figure 9's
    /// guarantee: the SMO is complete, so restart's undo of the loser skips
    /// the whole split via the dummy CLR's UndoNxtLSN and the split
    /// survives, while the loser's key inserts are undone.
    #[test]
    fn figure9_crash_at_dummy_clr_split_survives_recovery() {
        let _x = fault::exclusive();
        let dir = TempDir::new("fig9-dummy");
        let db = seeded_db(&dir, 100);
        let loser = crash_inserting(db, 100, "smo.split.after_dummy_clr");

        let db = Db::open(dir.path(), DbOptions::default()).unwrap();
        let report = db.verify_consistency().unwrap();
        assert_eq!(report.rows, 100, "loser inserts undone, committed kept");

        // The dummy CLR survived recovery with its UndoNxtLSN intact: it
        // points at a loser record strictly before the SMO body.
        let recs = records_of(&db, loser);
        let dummy = recs
            .iter()
            .find(|r| r.kind == RecordKind::DummyClr)
            .expect("dummy CLR must be durable at this crash point");
        let target = db.log.read(dummy.undo_next_lsn).unwrap();
        assert_eq!(target.txn.0, loser, "UndoNxtLSN stays inside the chain");
        assert!(target.lsn < dummy.lsn);

        // And the split itself survived: the tree kept its extra leaf even
        // though the transaction that performed it rolled back.
        let tree = db.tree_by_name("t_pk").unwrap();
        let check = tree.check_structure().unwrap();
        assert!(
            check.leaves >= 2,
            "SMO must survive the loser's restart rollback (got {} leaves)",
            check.leaves
        );
        assert_eq!(check.keys, 100);
    }

    /// Figure 10 torture: crash just BEFORE the page-deletion SMO's dummy
    /// CLR (SMO records durable, dummy CLR not). Restart undoes the SMO
    /// records page-by-page AND the key deletes: every key comes back.
    #[test]
    fn figure10_crash_before_dummy_clr_restores_all_keys() {
        figure10_crash_case("smo.delete.before_dummy_clr");
    }

    /// Figure 10 torture: crash just AFTER the dummy CLR. Restart skips the
    /// completed SMO via the dummy CLR (which points AT the key-delete
    /// record) and undoes the key deletes logically: every key comes back.
    #[test]
    fn figure10_crash_after_dummy_clr_restores_all_keys() {
        figure10_crash_case("smo.delete.after_dummy_clr");
    }

    fn figure10_crash_case(point: &str) {
        let _x = fault::exclusive();
        let dir = TempDir::new("fig10-crash");
        let db = seeded_db(&dir, 250);
        let log = db.log.clone();
        fault::set_pre_crash_hook(move || {
            let _ = log.flush_all();
        });
        fault::arm_forced(point, 1);
        fault::activate();
        let loser = std::sync::Mutex::new(0u64);
        let out = fault::run_to_crash(|| {
            use ariesim::db::FetchCond;
            let txn = db.begin();
            *loser.lock().unwrap() = txn.id.0;
            // Delete from the low end until the leftmost leaf empties and
            // the page-deletion SMO reaches the armed point.
            for i in 0..250 {
                let (rid, _) = db
                    .fetch_via(&txn, "t_pk", &key_of(i), FetchCond::Eq)
                    .unwrap()
                    .unwrap();
                db.delete_row(&txn, "t", rid).unwrap();
            }
            db.commit(&txn).unwrap();
            drop(db.crash());
        });
        fault::disarm();
        fault::clear_pre_crash_hook();
        let sig = out.crashed().expect("page-delete SMO point must fire");
        assert_eq!(sig.point, point);
        let loser = *loser.lock().unwrap();

        let db = Db::open(dir.path(), DbOptions::default()).unwrap();
        let report = db.verify_consistency().unwrap();
        assert_eq!(
            report.rows, 250,
            "every key the loser deleted must be restored ({point})"
        );
        if point.ends_with("after_dummy_clr") {
            // Figure 10's chaining survived recovery: the durable dummy CLR
            // points at a key-delete (Update) record of the same txn.
            let recs = records_of(&db, loser);
            let dummy = recs
                .iter()
                .filter(|r| r.kind == RecordKind::DummyClr)
                .max_by_key(|r| r.lsn)
                .expect("dummy CLR durable at this point");
            let target = db.log.read(dummy.undo_next_lsn).unwrap();
            assert_eq!(target.txn.0, loser);
            assert_eq!(
                target.kind,
                RecordKind::Update,
                "UndoNxtLSN points at the key-delete record, not into the SMO"
            );
        }
    }
}
