//! Property test: restart recovery is idempotent.
//!
//! A randomly seeded torture workload crashes at a randomly selected crash
//! point, leaving one durable image. The image is copied; both copies run
//! restart recovery independently; after a full pool flush the two `pages`
//! files must be byte-identical. "Repeating history" means recovery is a
//! pure function of the durable image — a second crash during (or right
//! after) recovery followed by another restart can never diverge.

use ariesim_bench::torture::{
    copy_dir, db_options, prologue, standard_trace, touched_keys, Step,
};
use ariesim_common::tmp::TempDir;
use ariesim_db::Db;
use ariesim_fault as fault;
use proptest::prelude::*;
use std::path::Path;

/// Drive the seeded trace until the armed point fires, leaving a crash image
/// in `dir`. Returns the fired point name (for failure messages) and the
/// `(txn_id, step_index)` begin log the oracle needs.
fn crash_at(dir: &Path, trace: &[Step], point: &str) -> (String, Vec<(u64, usize)>) {
    let db = prologue(dir).unwrap();
    fault::arm(point, 1);
    fault::activate();
    let mut started = Vec::new();
    let out = fault::run_to_crash(|| {
        ariesim_bench::torture::drive_steps(db, trace, &mut started)
    });
    fault::disarm();
    let fired = match out {
        fault::Outcome::Crashed(sig) => sig.point.to_string(),
        // The workload completed without the point firing (cannot happen for
        // a recorded point, but keep the image usable): crash at the end.
        fault::Outcome::Completed(r) => {
            drop(r.unwrap().crash());
            format!("{point} (unfired)")
        }
    };
    (fired, started)
}

/// Recover the image in `dir`, force every page and the log tail out, and
/// return the raw bytes of the `pages` file.
fn recover_and_dump(dir: &Path) -> Vec<u8> {
    let db = Db::open(dir, db_options()).unwrap();
    db.verify_consistency().unwrap();
    db.pool.flush_all().unwrap();
    db.log.flush_all().unwrap();
    drop(db.crash()); // drop without extra writes: image is already forced
    std::fs::read(dir.join("pages")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn recovery_is_a_pure_function_of_the_crash_image(
        seed in any::<u64>(),
        point_sel in any::<u16>(),
    ) {
        let _x = fault::exclusive();
        let trace = standard_trace(seed | 1);
        let touched = touched_keys(&trace);

        // Enumerate the points this seed's workload reaches, then pick one.
        let rec = TempDir::new("prop-idem-record");
        let db = prologue(rec.path()).unwrap();
        fault::record();
        fault::activate();
        let mut rec_started = Vec::new();
        let db = ariesim_bench::torture::drive_steps(db, &trace, &mut rec_started).unwrap();
        fault::disarm();
        drop(db.crash());
        let points = fault::recorded();
        prop_assert!(!points.is_empty());
        let point = points[point_sel as usize % points.len()].0;

        // Crash there, then duplicate the durable image BEFORE any recovery.
        let a = TempDir::new("prop-idem-a");
        let (fired, started) = crash_at(a.path(), &trace, point);
        let b = TempDir::new("prop-idem-b");
        copy_dir(a.path(), b.path()).unwrap();

        let pages_a = recover_and_dump(a.path());
        let pages_b = recover_and_dump(b.path());
        prop_assert_eq!(
            pages_a.len(), pages_b.len(),
            "page file sizes diverged after crash at {} (seed {:#x})",
            &fired, seed
        );
        if let Some(off) = pages_a.iter().zip(&pages_b).position(|(x, y)| x != y) {
            prop_assert!(
                false,
                "recovered page files diverge at byte {} (page {}) after crash at {} (seed {:#x})",
                off,
                off / ariesim_common::PAGE_SIZE,
                &fired,
                seed
            );
        }

        // And the recovered copies agree with the oracle, not just each
        // other: reopen copy B and check the committed-keys contract.
        let db = Db::open(b.path(), db_options()).unwrap();
        let expected = ariesim_bench::torture::expected_keys(&db, &trace, &started);
        if let Err(e) = ariesim_bench::torture::verify_recovered(&db, &expected, &touched) {
            prop_assert!(false, "oracle violated after crash at {}: {}", &fired, e);
        }
    }
}
