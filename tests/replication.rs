//! Log-shipping replication: round-trip, the applied-LSN watermark
//! contract, and failover.
//!
//! The watermark contract under test is the one `crates/repl` documents:
//! a standby read reflects the shipped log *exactly* up to `applied_lsn()`
//! — a key is never visible before its insert has been applied, and is
//! always visible once the watermark has passed its transaction's commit.

use ariesim_common::tmp::TempDir;
use ariesim_common::Lsn;
use ariesim_db::{Db, DbOptions, FetchCond, Row};
use ariesim_obs::Obs;
use ariesim_repl::{fork_standby, InProcessTransport, ReplPair, Shipper};
use std::sync::Arc;

fn opts() -> DbOptions {
    DbOptions {
        frames: 64,
        ..DbOptions::default()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn row(i: u32) -> Row {
    Row::new(vec![key(i), format!("payload-{i}").into_bytes()])
}

fn primary_with_schema(dir: &TempDir) -> Arc<Db> {
    let db = Db::open(&dir.path().join("primary"), opts()).unwrap();
    db.create_table("kv", 2).unwrap();
    db.create_index("kv_pk", "kv", 0, true).unwrap();
    db
}

fn insert_committed(db: &Arc<Db>, ids: std::ops::Range<u32>) {
    let txn = db.begin();
    for i in ids {
        db.insert_row(&txn, "kv", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
}

#[test]
fn round_trip_reads_follow_the_stream() {
    let dir = TempDir::new("repl-roundtrip");
    let primary = primary_with_schema(&dir);
    insert_committed(&primary, 0..20);

    let pair = ReplPair::create(primary, &dir.path().join("standby"), Obs::disabled()).unwrap();

    // Base backup: pre-fork keys are served immediately.
    let (_, r) = pair.standby.read("kv_pk", &key(7)).unwrap().unwrap();
    assert_eq!(r.field(1).unwrap(), format!("payload-{}", 7).as_bytes());
    assert_eq!(pair.standby.count("kv_pk").unwrap(), 20);

    // Post-fork commits are invisible until shipped + applied...
    insert_committed(&pair.primary, 20..40);
    assert!(pair.standby.read("kv_pk", &key(25)).unwrap().is_none());
    assert!(pair.lag_bytes() > 0);

    // ...and visible after a sync, watermark at the primary's log end.
    pair.sync().unwrap();
    assert_eq!(pair.lag_bytes(), 0);
    assert!(pair.standby.read("kv_pk", &key(25)).unwrap().is_some());
    assert_eq!(pair.standby.count("kv_pk").unwrap(), 40);

    // Updates and deletes replicate too.
    let txn = pair.primary.begin();
    let (rid, _) = pair
        .primary
        .fetch_via(&txn, "kv_pk", &key(3), FetchCond::Eq)
        .unwrap()
        .unwrap();
    pair.primary
        .update_row(&txn, "kv", rid, &Row::new(vec![key(3), b"updated".to_vec()]))
        .unwrap();
    let (rid9, _) = pair
        .primary
        .fetch_via(&txn, "kv_pk", &key(9), FetchCond::Eq)
        .unwrap()
        .unwrap();
    pair.primary.delete_row(&txn, "kv", rid9).unwrap();
    pair.primary.commit(&txn).unwrap();
    pair.sync().unwrap();
    let (_, r) = pair.standby.read("kv_pk", &key(3)).unwrap().unwrap();
    assert_eq!(r.field(1).unwrap(), b"updated");
    assert!(pair.standby.read("kv_pk", &key(9)).unwrap().is_none());
    assert_eq!(pair.standby.count("kv_pk").unwrap(), 39);
}

#[test]
fn standby_never_serves_past_its_watermark() {
    let dir = TempDir::new("repl-watermark");
    let primary = primary_with_schema(&dir);

    let base_dir = dir.path().join("standby");
    let (standby, shipper) = fork_standby(
        &primary,
        &base_dir,
        |base| Ok(Arc::new(InProcessTransport::new(base))),
        Obs::disabled(),
    )
    .unwrap();
    // Tiny chunks so the stream advances a record or two at a time.
    let mut shipper: Shipper = shipper.with_chunk(48);

    // Commit keys one per transaction, bracketing each with log positions:
    // below `before` the key cannot exist; at or past `after` it must.
    let mut window: Vec<(u32, Lsn, Lsn)> = Vec::new();
    for i in 0..30 {
        let before = primary.log.next_lsn();
        let txn = primary.begin();
        primary.insert_row(&txn, "kv", &row(i)).unwrap();
        primary.commit(&txn).unwrap();
        window.push((i, before, primary.log.next_lsn()));
    }
    primary.log.flush_all().unwrap();

    // Walk the stream chunk by chunk, checking every key against the
    // watermark after each step.
    loop {
        let shipped = shipper.pump().unwrap();
        standby.pump().unwrap();
        let w = standby.applied_lsn();
        for &(i, before, after) in &window {
            let present = standby.read("kv_pk", &key(i)).unwrap().is_some();
            if present {
                assert!(
                    w > before,
                    "key {i} visible at watermark {w}, inserted only at {before}"
                );
            }
            if w >= after {
                assert!(present, "key {i} missing at watermark {w} >= commit end {after}");
            }
        }
        if shipped == 0 && standby.applied_lsn() >= primary.log.flushed_lsn() {
            break;
        }
    }
    assert_eq!(standby.count("kv_pk").unwrap(), 30);
}

#[test]
fn failover_loses_no_committed_key_and_rolls_back_losers() {
    let dir = TempDir::new("repl-failover");
    let primary = primary_with_schema(&dir);
    insert_committed(&primary, 0..50);
    let pair = ReplPair::create(primary, &dir.path().join("standby"), Obs::disabled()).unwrap();
    insert_committed(&pair.primary, 50..80);

    // A rolled-back transaction: its keys must not survive failover.
    let txn = pair.primary.begin();
    for i in 100..110 {
        pair.primary.insert_row(&txn, "kv", &row(i)).unwrap();
    }
    pair.primary.rollback(&txn).unwrap();

    // An in-flight transaction at failover time: a loser for the promoted
    // standby's undo pass.
    let loser = pair.primary.begin();
    for i in 200..210 {
        pair.primary.insert_row(&loser, "kv", &row(i)).unwrap();
    }
    pair.primary.log.flush_all().unwrap();

    // Semi-sync failover: drain the channel, then the primary "fails".
    pair.sync().unwrap();
    let (primary, standby, _shipper) = pair.into_parts();
    drop(loser);
    drop(primary);

    let promoted = standby.promote().unwrap();
    let outcome = promoted.restart_outcome.as_ref().unwrap();
    assert_eq!(outcome.losers.len(), 1, "the in-flight txn is a loser");
    assert!(outcome.undone >= 10);

    // Every committed key is present; rolled-back and loser keys are not.
    let txn = promoted.begin();
    for i in 0..80 {
        assert!(
            promoted
                .fetch_via(&txn, "kv_pk", &key(i), FetchCond::Eq)
                .unwrap()
                .is_some(),
            "committed key {i} lost in failover"
        );
    }
    for i in (100..110).chain(200..210) {
        assert!(
            promoted
                .fetch_via(&txn, "kv_pk", &key(i), FetchCond::Eq)
                .unwrap()
                .is_none(),
            "uncommitted key {i} survived failover"
        );
    }
    promoted.commit(&txn).unwrap();
    // verify_consistency errors on any heap/index disagreement.
    assert_eq!(promoted.verify_consistency().unwrap().rows, 80);

    // The promoted engine accepts new writes.
    insert_committed(&promoted, 300..305);
    assert_eq!(promoted.verify_consistency().unwrap().rows, 85);
}

#[test]
fn promoted_standby_without_sync_recovers_shipped_prefix() {
    // Unplanned failover: whatever was shipped is recovered, exactly like
    // a crash losing the unflushed tail. The oracle is the standby's own
    // log: committed-in-shipped-prefix keys live, the rest don't.
    let dir = TempDir::new("repl-unplanned");
    let primary = primary_with_schema(&dir);
    let pair = ReplPair::create(primary, &dir.path().join("standby"), Obs::disabled()).unwrap();

    insert_committed(&pair.primary, 0..10);
    pair.sync().unwrap(); // first batch fully shipped
    insert_committed(&pair.primary, 10..20); // second batch never shipped
    let (primary, standby, _shipper) = pair.into_parts();
    drop(primary);

    let promoted = standby.promote().unwrap();
    let txn = promoted.begin();
    for i in 0..10 {
        assert!(promoted
            .fetch_via(&txn, "kv_pk", &key(i), FetchCond::Eq)
            .unwrap()
            .is_some());
    }
    for i in 10..20 {
        assert!(promoted
            .fetch_via(&txn, "kv_pk", &key(i), FetchCond::Eq)
            .unwrap()
            .is_none());
    }
    promoted.commit(&txn).unwrap();
    assert_eq!(promoted.verify_consistency().unwrap().rows, 10);
}
