//! Stats-counter audit: every counter in `ariesim_common::stats` must have
//! a live call site that actually fires under a realistic mix of work.
//!
//! Audit result (kept current with the counter block):
//!
//! * `latches_tree_instant` — live: `BTree::tree_instant_s` (traverse.rs)
//!   and the Delete_Bit POSC reset in insert.rs.
//! * `media_recovery_passes` — live: `ImageCopy::recover_page` (media.rs).
//! * `undo_page_oriented` — live: three undo arms in btree/rmimpl.rs.
//! * `redo_traversals` — deliberately has **no** bump site: ARIES/IM redo
//!   is page-oriented (§10), so the counter exists to prove it stays 0.
//!   It is asserted zero here after a real crash-restart.
//!
//! The test below drives mixed operations (inserts with splits, fetches,
//! deletes, a rollback, a media-recovery pass) and then a crash-restart,
//! and asserts every audited counter fired.

mod support;

use ariesim::btree::fetch::FetchCond;
use ariesim::btree::LockProtocol;
use ariesim::recovery::ImageCopy;
use ariesim::storage::SpaceMap;
use support::{fix, nkey};

#[test]
fn audited_counters_fire_under_mixed_ops_and_recovery() {
    let f = fix(LockProtocol::DataOnly, false);

    // Mixed operations: enough inserts to split pages, some fetches, a
    // delete followed by an insert into the freed space (the Delete_Bit
    // path that takes an instant tree latch), and a rollback.
    let txn = f.tm.begin();
    for i in 0..400u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    let txn = f.tm.begin();
    for i in 0..50u32 {
        f.tree.fetch(&txn, &nkey(i * 7).value, FetchCond::Eq).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    // Delete then re-insert on the same leaf: the insert sees Delete_Bit=1
    // and establishes a POSC via an instant tree latch.
    let txn = f.tm.begin();
    f.tree.delete(&txn, &nkey(200)).unwrap();
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(200)).unwrap();
    f.tm.commit(&txn).unwrap();

    // Rollback of a fresh insert with no intervening split: page-oriented
    // undo.
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(90_000)).unwrap();
    f.tm.rollback(&txn).unwrap();

    // Media recovery: image-copy every allocated page, then roll one leaf
    // forward from the dump (one log pass).
    let pages = SpaceMap::new(f.pool.clone()).allocated_pages().unwrap();
    let copy = ImageCopy::take(&f.pool, &f.log, &pages).unwrap();
    let victim = f.tree.leaf_for_value(&nkey(100).value).unwrap();
    copy.recover_page(&f.log, &f.rms, victim, &f.stats).unwrap();

    // Force dirty pages out so the write path is exercised too (the pool
    // is large enough that nothing evicts on its own here).
    f.pool.flush_all().unwrap();

    let s = f.stats.snapshot();
    // The three counters the audit was asked about:
    assert!(s.latches_tree_instant > 0, "latches_tree_instant dead: {s:?}");
    assert_eq!(s.media_recovery_passes, 1, "media_recovery_passes dead");
    assert!(s.undo_page_oriented > 0, "undo_page_oriented dead: {s:?}");
    // The rest of the counter block, spot-checked per subsystem:
    assert!(s.locks_acquired > 0 && s.locks_record > 0 && s.locks_next_key > 0);
    assert!(s.locks_instant > 0 && s.locks_commit > 0);
    assert!(s.latches_page > 0 && s.latches_tree > 0);
    assert!(s.page_fixes > 0 && s.page_writes > 0);
    assert!(s.log_forces > 0 && s.log_records > 0 && s.log_bytes > 0);
    assert!(s.tree_traversals > 0 && s.smo_splits > 0);
    assert!(s.index_inserts >= 402 && s.index_deletes >= 1 && s.index_fetches >= 50);

    // Crash with an in-flight transaction, then restart: redo counters
    // fire, undo of the loser is page-oriented, and — the paper's claim —
    // redo performs zero tree traversals.
    let loser = f.tm.begin();
    f.tree.insert(&loser, &nkey(91_000)).unwrap();
    f.log.flush_all().unwrap();

    let dir = f._dir.path().to_path_buf();
    let root = f.tree.root;
    drop(loser);
    let support::Fix { _dir: keep, .. } = f;
    let stats2 = ariesim::common::stats::new_stats();
    let log = std::sync::Arc::new(
        ariesim::wal::LogManager::open(
            &dir.join("wal"),
            ariesim::wal::LogOptions::default(),
            stats2.clone(),
        )
        .unwrap(),
    );
    let disk = ariesim::storage::DiskManager::open(&dir.join("db"), stats2.clone()).unwrap();
    let pool = ariesim::storage::BufferPool::new(
        disk,
        log.clone(),
        ariesim::storage::PoolOptions { frames: 512, ..Default::default() },
        stats2.clone(),
    );
    let locks = std::sync::Arc::new(ariesim::lock::LockManager::new(stats2.clone()));
    let rms = std::sync::Arc::new(ariesim::txn::RmRegistry::new());
    let index_rm = ariesim::btree::IndexRm::new(pool.clone(), stats2.clone());
    rms.register(index_rm.clone());
    rms.register(std::sync::Arc::new(ariesim::storage::SpaceRm::new(
        pool.clone(),
    )));
    let tree = ariesim::btree::BTree::new(
        ariesim::common::IndexId(1),
        root,
        false,
        LockProtocol::DataOnly,
        pool.clone(),
        locks,
        log.clone(),
        stats2.clone(),
    );
    index_rm.register_tree(tree.clone());
    ariesim::recovery::restart(&log, &pool, &rms, &stats2).unwrap();

    let s2 = stats2.snapshot();
    assert!(s2.redo_records_seen > 0, "redo saw no records: {s2:?}");
    assert!(s2.redo_applied > 0, "nothing redone: {s2:?}");
    assert!(s2.restart_page_reads > 0, "restart read no pages: {s2:?}");
    assert!(s2.undo_page_oriented > 0, "loser undo not page-oriented: {s2:?}");
    assert_eq!(s2.redo_traversals, 0, "redo must stay page-oriented");
    tree.check_structure().unwrap();
    drop(keep);
}
