//! Figure 11 — the Delete_Bit precaution and the crash it protects against.
//!
//! The scenario: T1's key delete frees space on leaf P6; T2's insert wants
//! to consume that space; if a crash then forces T1's delete to be undone
//! *logically* (the freed space is gone, so the undo needs a page split —
//! reason 1 of §3), the tree must be structurally consistent and traversable
//! at that point. The Delete_Bit makes T2 establish a **point of structural
//! consistency** (instant S tree latch) before consuming the space.

mod support;

use ariesim::btree::LockProtocol;
use support::{fix, key};

/// Keys sized so a leaf holds few of them, making space exhaustion easy.
fn big_key(tag: &str, i: u32) -> ariesim::common::IndexKey {
    key(format!("{tag}-{i:04}-{}", "x".repeat(600)), i)
}

#[test]
fn delete_sets_delete_bit_and_insert_establishes_posc() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..8u32 {
        f.tree.insert(&setup, &big_key("k", i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    // T1 deletes a middle key: the leaf's Delete_Bit goes to '1'.
    let t1 = f.tm.begin();
    f.tree.delete(&t1, &big_key("k", 3)).unwrap();
    let leaf = f.tree.leaf_for_value(&big_key("k", 4).value).unwrap();
    {
        let g = f.pool.fix_s(leaf).unwrap();
        assert!(g.delete_bit(), "key delete must set the Delete_Bit");
    }
    f.tm.commit(&t1).unwrap();

    // T2 inserts into that leaf: it must first take an instant S tree latch
    // (establishing a POSC) and reset the bit.
    let before = f.stats.snapshot();
    let t2 = f.tm.begin();
    f.tree.insert(&t2, &big_key("k", 3)).unwrap();
    f.tm.commit(&t2).unwrap();
    let delta = f.stats.snapshot().since(&before);
    assert!(
        delta.latches_tree_instant >= 1,
        "insert on a Delete_Bit page must establish a POSC: {delta:?}"
    );
    let g = f.pool.fix_s(leaf).unwrap();
    assert!(!g.delete_bit(), "the POSC insert resets the bit");
}

#[test]
fn boundary_key_delete_holds_tree_latch() {
    // Figure 7: deleting the smallest or largest key on a page takes the S
    // tree latch across the delete — verify by holding the X tree latch and
    // watching a boundary delete block while a middle delete proceeds.
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..8u32 {
        f.tree.insert(&setup, &big_key("k", i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let smo_latch = f.tree.hold_tree_latch_x();

    // Middle-key delete: no tree latch needed → completes.
    let h_mid = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let t = tm.begin();
            tree.delete(&t, &big_key("k", 3)).unwrap();
            tm.commit(&t).unwrap();
        })
    };
    h_mid.join().unwrap();

    // Boundary-key delete (smallest on the page): must wait for the latch.
    let h_edge = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        std::thread::spawn(move || {
            let t = tm.begin();
            tree.delete(&t, &big_key("k", 0)).unwrap();
            tm.commit(&t).unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(80));
    assert!(
        !h_edge.is_finished(),
        "boundary-key delete must wait for the tree latch (POSC)"
    );
    drop(smo_latch);
    h_edge.join().unwrap();
    f.tree.check_structure().unwrap();
}

#[test]
fn crash_after_space_consumed_forces_logical_undo_with_split() {
    // The payoff of the whole Figure 11 machinery: T1's delete is undone at
    // restart after T2 consumed the freed space — the undo must go LOGICAL
    // and SPLIT the page (reason 1 of §3), and because every delete/insert
    // obeyed the bit protocol, the tree is structurally consistent when that
    // happens.
    //
    // Deterministic sizing: 611-byte values → 619-byte cells + 4-byte slots
    // = 623 bytes/key; 13 keys ≈ 8099 of the 8160-byte body, leaving 61
    // bytes — too little for a 14th key without the freed space.
    let f = fix(LockProtocol::DataOnly, false);
    let wide = |tag: &str, n: u32| {
        let mut v = format!("{tag}-");
        v.push_str(&"w".repeat(611 - v.len()));
        key(v, n)
    };
    let setup = f.tm.begin();
    for i in 0..13u32 {
        f.tree.insert(&setup, &wide(&format!("k{i:02}"), i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    assert_eq!(f.stats.snapshot().smo_splits, 0, "setup fits on the root leaf");

    // T1 deletes k05 (middle key: no boundary tree latch, next-key lock on
    // k06 only). Never commits.
    let t1 = f.tm.begin();
    f.tree.delete(&t1, &wide("k05", 5)).unwrap();

    // T2 inserts between k02 and k03 — same leaf, far from T1's next-key
    // wall (which guards only the k05..k06 gap) — consuming the freed space.
    // Its Delete_Bit POSC dance is asserted by the first test in this file.
    let t2 = f.tm.begin();
    f.tree.insert(&t2, &wide("k02x", 100)).unwrap();
    f.tm.commit(&t2).unwrap();
    f.log.flush_all().unwrap();

    // Crash: reopen the same files with a fresh stack and run restart.
    let dir_path = f._dir.path().to_path_buf();
    drop(f.tree);
    drop(f.tm);
    let stats2 = ariesim::common::stats::new_stats();
    drop(f.locks);
    drop(f.pool);
    drop(f.log);
    let log = std::sync::Arc::new(
        ariesim::wal::LogManager::open(
            &dir_path.join("wal"),
            ariesim::wal::LogOptions::default(),
            stats2.clone(),
        )
        .unwrap(),
    );
    let disk = ariesim::storage::DiskManager::open(&dir_path.join("db"), stats2.clone()).unwrap();
    let pool = ariesim::storage::BufferPool::new(
        disk,
        log.clone(),
        ariesim::storage::PoolOptions { frames: 512, ..Default::default() },
        stats2.clone(),
    );
    let locks = std::sync::Arc::new(ariesim::lock::LockManager::new(stats2.clone()));
    let rms = std::sync::Arc::new(ariesim::txn::RmRegistry::new());
    let index_rm = ariesim::btree::IndexRm::new(pool.clone(), stats2.clone());
    rms.register(index_rm.clone());
    rms.register(std::sync::Arc::new(ariesim::storage::SpaceRm::new(pool.clone())));
    let tree = ariesim::btree::BTree::new(
        ariesim::common::IndexId(1),
        ariesim::common::PageId(ariesim::storage::FIRST_USER_PAGE),
        false,
        LockProtocol::DataOnly,
        pool.clone(),
        locks,
        log.clone(),
        stats2.clone(),
    );
    index_rm.register_tree(tree.clone());
    let outcome = ariesim::recovery::restart(&log, &pool, &rms, &stats2).unwrap();
    assert_eq!(outcome.losers.len(), 1, "T1 is the loser");

    let s = stats2.snapshot();
    assert!(
        s.undo_logical >= 1,
        "re-inserting k05 cannot fit page-oriented: {s:?}"
    );
    assert!(
        s.smo_splits >= 1,
        "the logical undo had to split the leaf: {s:?}"
    );
    assert_eq!(s.redo_traversals, 0, "redo stayed page-oriented");
    // Final state: 13 original keys (k05 restored) + T2's committed key.
    let report = tree.check_structure().unwrap();
    assert_eq!(report.keys, 14);
    let keys = tree.scan_all_unlocked().unwrap();
    assert!(keys.iter().any(|k| k.value.starts_with(b"k05-")));
    assert!(keys.iter().any(|k| k.value.starts_with(b"k02x-")));
}
