//! Two §2 features beyond the core protocol: multi-granularity data-only
//! locking (record vs page, §2.1) and Fetch Next cursor repositioning
//! (§2.3).

mod support;

use ariesim::btree::fetch::{FetchCond, FetchResult};
use ariesim::btree::{BTree, LockProtocol};
use ariesim::common::{IndexId, IndexKey, PageId, Rid};
use support::nkey;

/// Build a tree with page-granularity data locks on top of the standard
/// fixture stack.
fn page_granularity_fix() -> (support::Fix, std::sync::Arc<BTree>) {
    let f = support::fix(LockProtocol::DataOnly, false);
    let tree = BTree::new_with_granularity(
        IndexId(1),
        f.tree.root,
        false,
        LockProtocol::DataOnly,
        true, // page granularity
        f.pool.clone(),
        f.locks.clone(),
        f.log.clone(),
        f.stats.clone(),
    );
    (f, tree)
}

#[test]
fn page_granularity_one_lock_covers_the_whole_data_page() {
    let (f, tree) = page_granularity_fix();
    // Two keys whose RIDs share data page P77.
    let k1 = IndexKey::new(b"aaa".to_vec(), Rid::new(PageId(77), 1));
    let k2 = IndexKey::new(b"bbb".to_vec(), Rid::new(PageId(77), 2));
    let k3 = IndexKey::new(b"ccc".to_vec(), Rid::new(PageId(88), 1));
    let setup = f.tm.begin();
    for k in [&k1, &k2, &k3] {
        tree.insert(&setup, k).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    assert!(matches!(
        tree.fetch(&txn, b"aaa", FetchCond::Eq).unwrap(),
        FetchResult::Found(_)
    ));
    // The lock taken is on the data page, not the record.
    use ariesim::lock::{LockMode, LockName};
    assert_eq!(
        f.locks.holds(txn.id, &LockName::Page(PageId(77))),
        Some(LockMode::S)
    );
    assert_eq!(
        f.locks.holds(txn.id, &LockName::Record(Rid::new(PageId(77), 1))),
        None
    );
    // A second fetch on the same data page acquires no new lock name.
    let held_before = f.locks.held_count(txn.id);
    assert!(matches!(
        tree.fetch(&txn, b"bbb", FetchCond::Eq).unwrap(),
        FetchResult::Found(_)
    ));
    assert_eq!(f.locks.held_count(txn.id), held_before);
    // A key on another data page needs a new lock.
    tree.fetch(&txn, b"ccc", FetchCond::Eq).unwrap();
    assert_eq!(f.locks.held_count(txn.id), held_before + 1);
    f.tm.commit(&txn).unwrap();
}

#[test]
fn page_granularity_creates_conflicts_record_granularity_avoids() {
    // The coarser granule trades concurrency for fewer locks: a deleter's
    // NEXT-KEY lock lands on the next key's data *page*, colliding with a
    // reader's S lock on that page even though the two transactions touch
    // different records. At record granularity the same schedule runs
    // without blocking.
    let k1 = IndexKey::new(b"aaa".to_vec(), Rid::new(PageId(77), 1));
    let k2 = IndexKey::new(b"bbb".to_vec(), Rid::new(PageId(77), 2));

    // --- page granularity: conflict --------------------------------------
    let (f, tree) = page_granularity_fix();
    let setup = f.tm.begin();
    tree.insert(&setup, &k1).unwrap();
    tree.insert(&setup, &k2).unwrap();
    f.tm.commit(&setup).unwrap();

    let reader = f.tm.begin();
    tree.fetch(&reader, b"bbb", FetchCond::Eq).unwrap(); // S on Page(77)
    let h = {
        let tm = f.tm.clone();
        let tree = tree.clone();
        let k1 = k1.clone();
        std::thread::spawn(move || {
            let w = tm.begin();
            // Deleting "aaa": next-key lock on "bbb" = X on Page(77).
            tree.delete(&w, &k1).unwrap();
            tm.commit(&w).unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(
        !h.is_finished(),
        "page-granularity next-key lock must collide with the reader"
    );
    f.tm.commit(&reader).unwrap();
    h.join().unwrap();

    // --- record granularity: no conflict --------------------------------------
    let f = support::fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &k1).unwrap();
    f.tree.insert(&setup, &k2).unwrap();
    f.tm.commit(&setup).unwrap();
    let reader = f.tm.begin();
    f.tree.fetch(&reader, b"bbb", FetchCond::Eq).unwrap(); // S on Record(77,2)
    let h = {
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        let k1 = k1.clone();
        std::thread::spawn(move || {
            let w = tm.begin();
            tree.delete(&w, &k1).unwrap();
            tm.commit(&w).unwrap();
        })
    };
    // Record granularity: deleter's next-key X on Record(77,2) DOES conflict
    // with the reader's S on the same record — both schedules block here,
    // but a reader of a *different* record on the same page would not:
    h.is_finished(); // (outcome checked below with the disjoint reader)
    std::thread::sleep(std::time::Duration::from_millis(30));
    f.tm.commit(&reader).unwrap();
    h.join().unwrap();

    // Disjoint-record reader: no block at record granularity.
    let f = support::fix(LockProtocol::DataOnly, false);
    let k3 = IndexKey::new(b"ccc".to_vec(), Rid::new(PageId(77), 3));
    let setup = f.tm.begin();
    for k in [&k1, &k2, &k3] {
        f.tree.insert(&setup, k).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let reader = f.tm.begin();
    f.tree.fetch(&reader, b"ccc", FetchCond::Eq).unwrap(); // S on Record(77,3)
    let w = f.tm.begin();
    // Deleting "aaa": next-key X on Record(77,2) — disjoint from the reader.
    f.tree.delete(&w, &k1).unwrap();
    f.tm.commit(&w).unwrap();
    f.tm.commit(&reader).unwrap();
}

// --- Fetch Next repositioning (§2.3) ---------------------------------------

#[test]
fn cursor_survives_interleaved_split() {
    let f = support::fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..320u32 {
        f.tree.insert(&setup, &nkey(2 * i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let scanner = f.tm.begin();
    let (first, cursor) = f
        .tree
        .open_scan(&scanner, &nkey(0).value, FetchCond::Ge)
        .unwrap();
    assert_eq!(first, Some(nkey(0)));
    let mut cursor = cursor.unwrap();
    // Read a few, then have another txn split the leaf under the cursor.
    for i in 1..5u32 {
        assert_eq!(
            f.tree.fetch_next(&scanner, &mut cursor).unwrap(),
            Some(nkey(2 * i))
        );
    }
    let splitter = f.tm.begin();
    let mut j = 0u32;
    while f.stats.snapshot().smo_splits == 0 {
        f.tree.insert(&splitter, &nkey(100_000 + j)).unwrap();
        j += 1;
        assert!(j < 5000);
    }
    f.tm.commit(&splitter).unwrap();
    // The cursor repositions via its noted LSN (now stale) and keeps going
    // without skipping or repeating.
    for i in 5..320u32 {
        assert_eq!(
            f.tree.fetch_next(&scanner, &mut cursor).unwrap(),
            Some(nkey(2 * i)),
            "at position {i}"
        );
    }
    f.tm.commit(&scanner).unwrap();
}

#[test]
fn cursor_repositions_after_own_delete_of_current_key() {
    // §2.3: "The current key may not be in the index anymore due to a key
    // deletion earlier by the same transaction."
    let f = support::fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..10u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    let (first, cursor) = f
        .tree
        .open_scan(&txn, &nkey(3).value, FetchCond::Ge)
        .unwrap();
    assert_eq!(first, Some(nkey(3)));
    let mut cursor = cursor.unwrap();
    // Delete the key the cursor sits on, within the same transaction.
    f.tree.delete(&txn, &nkey(3)).unwrap();
    // Fetch Next must reposition and return the following key.
    assert_eq!(f.tree.fetch_next(&txn, &mut cursor).unwrap(), Some(nkey(4)));
    assert_eq!(f.tree.fetch_next(&txn, &mut cursor).unwrap(), Some(nkey(5)));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn cursor_reaches_eof_and_locks_it() {
    let f = support::fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..3u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let txn = f.tm.begin();
    let (_, cursor) = f
        .tree
        .open_scan(&txn, &nkey(0).value, FetchCond::Ge)
        .unwrap();
    let mut cursor = cursor.unwrap();
    assert_eq!(f.tree.fetch_next(&txn, &mut cursor).unwrap(), Some(nkey(1)));
    assert_eq!(f.tree.fetch_next(&txn, &mut cursor).unwrap(), Some(nkey(2)));
    assert_eq!(f.tree.fetch_next(&txn, &mut cursor).unwrap(), None);
    use ariesim::lock::LockName;
    assert!(f
        .locks
        .holds(txn.id, &LockName::Eof(IndexId(1)))
        .is_some());
    f.tm.commit(&txn).unwrap();
}
