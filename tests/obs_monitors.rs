//! Live latch-protocol invariant monitors, exercised against the real
//! engine under contention and across a crash-restart.
//!
//! ARIES/IM's concurrency story rests on invariants the `ariesim-obs`
//! monitor checks at runtime: latch coupling never holds more than two
//! page latches (§3), no thread waits unconditionally for a lock while
//! latched (§2.2), and restart redo is page-oriented — zero tree
//! traversals (§10). These tests drive splits, lock contention, and a
//! crash, then read the monitor's verdict.

mod support;

use ariesim::btree::fetch::FetchCond;
use ariesim::btree::LockProtocol;
use ariesim::obs::{EventKind, Obs};
use support::{fix_with_obs, nkey};

/// Concurrent inserts driving a steady stream of page splits, mixed with
/// readers: latch coupling must never exceed two page latches, and no
/// thread may block on a lock while latched.
#[test]
fn latch_protocol_holds_under_concurrent_splits() {
    let obs = Obs::enabled(1 << 14);
    let f = fix_with_obs(LockProtocol::DataOnly, false, obs.clone());
    let txn = f.tm.begin();
    for i in 0..200u32 {
        f.tree.insert(&txn, &nkey(i * 100)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let f = &f;
            s.spawn(move || {
                for i in 0..400u32 {
                    let txn = f.tm.begin();
                    let k = nkey(1_000_000 + t * 1_000_000 + i);
                    f.tree.insert(&txn, &k).unwrap();
                    if i % 4 == 0 {
                        f.tree
                            .fetch(&txn, &nkey((i % 200) * 100).value, FetchCond::Ge)
                            .unwrap();
                    }
                    f.tm.commit(&txn).unwrap();
                }
            });
        }
    });

    assert!(
        f.stats.snapshot().smo_splits > 0,
        "workload must actually split pages"
    );
    let m = obs.monitor.snapshot();
    assert!(
        (1..=2).contains(&m.max_latch_depth),
        "latch coupling depth out of range: {m:?}"
    );
    assert_eq!(m.latch_depth_violations, 0, "{m:?}");
    assert_eq!(m.lock_wait_with_latch_violations, 0, "{m:?}");
    assert_eq!(m.latch_underflows, 0, "{m:?}");
    assert!(m.clean(), "{m:?}");
}

/// Crash with losers in flight, restart with a monitored pool: redo must
/// be page-oriented (the monitor counts any traversal as a violation).
#[test]
fn restart_redo_is_page_oriented_per_monitor() {
    let obs = Obs::enabled(1 << 12);
    let f = fix_with_obs(LockProtocol::DataOnly, false, obs.clone());
    let txn = f.tm.begin();
    for i in 0..300u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let loser = f.tm.begin();
    for i in 0..40u32 {
        f.tree.insert(&loser, &nkey(10_000 + i)).unwrap();
    }
    f.log.flush_all().unwrap();

    let dir = f._dir.path().to_path_buf();
    let root = f.tree.root;
    drop(loser);
    let support::Fix { _dir: keep, .. } = f;

    let stats2 = ariesim::common::stats::new_stats();
    let obs2 = Obs::enabled(1 << 12);
    let log = std::sync::Arc::new(
        ariesim::wal::LogManager::open_with_obs(
            &dir.join("wal"),
            ariesim::wal::LogOptions::default(),
            stats2.clone(),
            obs2.clone(),
        )
        .unwrap(),
    );
    let disk = ariesim::storage::DiskManager::open(&dir.join("db"), stats2.clone()).unwrap();
    let pool = ariesim::storage::BufferPool::new_with_obs(
        disk,
        log.clone(),
        ariesim::storage::PoolOptions { frames: 512, ..Default::default() },
        stats2.clone(),
        obs2.clone(),
    );
    let locks = std::sync::Arc::new(ariesim::lock::LockManager::new_with_obs(
        stats2.clone(),
        obs2.clone(),
    ));
    let rms = std::sync::Arc::new(ariesim::txn::RmRegistry::new());
    let index_rm = ariesim::btree::IndexRm::new(pool.clone(), stats2.clone());
    rms.register(index_rm.clone());
    rms.register(std::sync::Arc::new(ariesim::storage::SpaceRm::new(
        pool.clone(),
    )));
    let tree = ariesim::btree::BTree::new(
        ariesim::common::IndexId(1),
        root,
        false,
        LockProtocol::DataOnly,
        pool.clone(),
        locks,
        log.clone(),
        stats2.clone(),
    );
    index_rm.register_tree(tree.clone());
    ariesim::recovery::restart(&log, &pool, &rms, &stats2).unwrap();

    let m = obs2.monitor.snapshot();
    assert_eq!(
        m.redo_traversal_violations, 0,
        "restart redo traversed the tree: {m:?}"
    );
    assert!(m.clean(), "{m:?}");
    // The losers' undo ran through the monitored latch layer too.
    assert!(m.max_latch_depth >= 1, "restart touched no pages? {m:?}");
    tree.check_structure().unwrap();
    drop(keep);
}

/// The event ring observes real engine activity, dumps as JSONL, and every
/// line parses back into the event it came from.
#[test]
fn event_ring_dumps_jsonl_and_reparses() {
    let obs = Obs::enabled(1 << 14);
    let f = fix_with_obs(LockProtocol::DataOnly, false, obs.clone());
    let txn = f.tm.begin();
    for i in 0..150u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tree.delete(&txn, &nkey(10)).unwrap();
    f.tree.fetch(&txn, &nkey(20).value, FetchCond::Eq).unwrap();
    f.tm.commit(&txn).unwrap();

    let events = obs.ring.snapshot();
    assert!(!events.is_empty(), "engine activity recorded no events");
    let dump = obs.ring.dump_jsonl();
    let lines: Vec<&str> = dump.lines().collect();
    // First line is the completeness header; the rest are the events.
    assert_eq!(lines.len(), events.len() + 1);
    let stats = ariesim::obs::RingStats::parse_json_line(lines[0])
        .expect("header line parses as ring stats");
    assert!(stats.complete(), "unwrapped ring must report completeness");

    let parsed: Vec<_> = lines[1..]
        .iter()
        .map(|l| ariesim::obs::Event::parse_json_line(l).expect("line parses"))
        .collect();
    assert_eq!(parsed, events, "JSONL round-trip must be lossless");

    // The mixed workload must have produced the core event vocabulary.
    for kind in [
        EventKind::LatchAcquire,
        EventKind::LatchRelease,
        EventKind::LockGrant,
        EventKind::LogForce,
    ] {
        assert!(
            parsed.iter().any(|e| e.kind == kind),
            "no {kind:?} event in trace"
        );
    }
    // Sequence numbers are strictly increasing (seqlock publication order).
    assert!(parsed.windows(2).all(|w| w[0].seq < w[1].seq));
}
