//! The bounded crash matrix: torture enumeration under `cargo test`.
//!
//! Runs the quick-mode torture harness — every crash point the seeded
//! workload reaches is armed once (plus forced-tail variants for the SMO
//! windows) and the recovery guarantees are checked at each — then crashes
//! inside recovery itself at every point restart reaches. The full
//! (`--quick`-less) enumeration lives in the `torture` binary; this test
//! keeps CI honest without the extra hit-count variants.

use ariesim_bench::torture::{run_torture, TortureConfig};

#[test]
fn crash_matrix_bounded_enumeration() {
    let report = run_torture(&TortureConfig {
        quick: true,
        ..TortureConfig::default()
    })
    .expect("torture harness must run");

    let failures: Vec<String> = report
        .runs
        .iter()
        .filter_map(|r| {
            r.error
                .as_ref()
                .map(|e| format!("{} ({} hit {}): {e}", r.point, r.mode, r.hit))
        })
        .collect();
    assert!(
        failures.is_empty(),
        "recovery failed at {} crash point(s):\n  {}",
        failures.len(),
        failures.join("\n  ")
    );

    // The workload must keep reaching the instrumented boundaries: ISSUE 3's
    // acceptance floor is 25 distinct registered points.
    assert!(
        report.points.len() >= 25,
        "only {} distinct crash points enumerated (expected >= 25): {:?}",
        report.points.len(),
        report.points
    );

    // Every armed run must actually have crashed — an unfired hit-1 arm of a
    // recorded point means record and replay diverged (lost determinism).
    let unfired: Vec<&str> = report
        .runs
        .iter()
        .filter(|r| !r.fired)
        .map(|r| r.point.as_str())
        .collect();
    assert!(
        unfired.is_empty(),
        "recorded points did not fire when armed (nondeterministic workload?): {unfired:?}"
    );

    // Spot-check the coverage: the Figure 9/10 dummy-CLR windows and the WAL
    // torn-tail point must be in the enumeration.
    for must in [
        "smo.split.before_dummy_clr",
        "smo.split.after_dummy_clr",
        "smo.delete.before_dummy_clr",
        "smo.delete.after_dummy_clr",
        "wal.flush.mid",
        "recovery.undo.step",
    ] {
        assert!(
            report.points.iter().any(|p| p == must),
            "crash point {must} missing from enumeration: {:?}",
            report.points
        );
    }
}
