//! The paper's §2.1 claim: "Not more than 2 index pages are held latched
//! simultaneously at anytime" during normal operations. Validated with a
//! per-thread latch-depth high-water mark.
//!
//! Our implementation matches the budget for every single-hop operation and
//! documents one deviation (DESIGN.md §7/§8): a multi-hop next-key walk
//! (possible only mid-SMO or across a split's gap) briefly holds three page
//! latches. These tests pin both facts.

mod support;

use ariesim::btree::fetch::FetchCond;
use ariesim::btree::LockProtocol;
use ariesim::storage::take_latch_high_water;
use support::{fix, nkey};

#[test]
fn fetch_insert_delete_hold_at_most_two_page_latches() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..3000u32 {
        f.tree.insert(&setup, &nkey(2 * i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    assert!(
        f.tree.check_structure().unwrap().height >= 1,
        "need a multi-level tree so coupling spans levels"
    );

    // Fetches (found, not-found, cross-leaf next key).
    take_latch_high_water();
    let txn = f.tm.begin();
    for i in 0..500u32 {
        f.tree
            .fetch(&txn, &nkey(2 * (i * 7 % 3000)).value, FetchCond::Eq)
            .unwrap();
        f.tree
            .fetch(&txn, &nkey(2 * (i * 11 % 3000) + 1).value, FetchCond::Eq)
            .unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let hw = take_latch_high_water();
    assert!(hw <= 2, "fetch held {hw} page latches");

    // Inserts and deletes without SMOs (mid-range keys, pages have room).
    let txn = f.tm.begin();
    for i in 0..300u32 {
        f.tree.insert(&txn, &nkey(2 * i + 1)).unwrap();
    }
    let hw = take_latch_high_water();
    assert!(hw <= 2, "insert held {hw} page latches");
    for i in 0..300u32 {
        f.tree.delete(&txn, &nkey(2 * i + 1)).unwrap();
    }
    let hw = take_latch_high_water();
    assert!(hw <= 2, "delete held {hw} page latches");
    f.tm.commit(&txn).unwrap();
}

#[test]
fn range_scan_holds_at_most_two_page_latches() {
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    for i in 0..2000u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    take_latch_high_water();
    let txn = f.tm.begin();
    let (_, cursor) = f
        .tree
        .open_scan(&txn, &nkey(0).value, FetchCond::Ge)
        .unwrap();
    let mut cursor = cursor.unwrap();
    let mut n = 1;
    while f.tree.fetch_next(&txn, &mut cursor).unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 2000);
    f.tm.commit(&txn).unwrap();
    let hw = take_latch_high_water();
    assert!(hw <= 2, "scan held {hw} page latches");
}

#[test]
fn smos_respect_the_budget_too() {
    // The SMO code releases leaf-level latches before latching parents (§4):
    // splits and page deletions peak at two page latches as well.
    let f = fix(LockProtocol::DataOnly, false);
    take_latch_high_water();
    let txn = f.tm.begin();
    for i in 0..3000u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    assert!(f.stats.snapshot().smo_splits > 0);
    let hw = take_latch_high_water();
    assert!(hw <= 2, "split path held {hw} page latches");

    let txn = f.tm.begin();
    for i in 0..3000u32 {
        f.tree.delete(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    assert!(f.stats.snapshot().smo_page_deletes > 0);
    let hw = take_latch_high_water();
    assert!(hw <= 2, "page-delete path held {hw} page latches");
}
