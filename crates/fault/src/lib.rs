//! Deterministic crash-point injection.
//!
//! ARIES's central claim is crash safety at *every* instant, not just at the
//! handful of drop points a hand-written test thinks of. This crate provides
//! the substrate for checking that claim mechanically: named
//! [`crash_point!`] hooks threaded through the WAL append/flush path, buffer
//! pool write-back, every log-record boundary inside the B+-tree SMOs (the
//! dummy-CLR windows of the paper's Figures 9 and 10), the undo driver, and
//! the restart passes themselves.
//!
//! A hook is **zero-cost when disarmed**: one relaxed atomic load guards the
//! whole thing. When the harness arms the registry, a hook does one of two
//! things at each execution ("hit"):
//!
//! * **record** — register the point's name (first-seen order) and count the
//!   hit, so a harness can enumerate every point a workload reaches;
//! * **crash** — on the N-th hit of the armed point, simulate a system
//!   failure: durable state is whatever the flushed log prefix and on-disk
//!   pages say at this exact instant, and the process's volatile state is
//!   torn down by unwinding with a [`CrashSignal`] panic that the harness
//!   catches at [`run_to_crash`]. (A crash point inside a partially-written
//!   log flush leaves a genuinely torn tail on disk — exactly what restart's
//!   torn-tail scan exists for.)
//!
//! Arming is **thread-scoped**: only hits on the thread that called
//! [`arm`]/[`record`] are counted or crashed, so unrelated threads (other
//! tests in the same binary) can run through armed hooks unharmed. The
//! registry itself is process-global; harnesses that arm it must serialize
//! via [`exclusive`].
//!
//! ## Durability modes
//!
//! [`arm`] crashes with the durable state as-is: the unflushed log tail is
//! lost, as in a real power failure. [`arm_forced`] first runs the
//! registered pre-crash hook (the harness points it at
//! `LogManager::flush_all`), simulating a crash at an instant when the OS
//! had happened to make the whole tail durable — the adversarial case for
//! SMO recovery, because the partial SMO's records *are* in the log and
//! restart must deal with them. Do **not** arm a `wal.*` point in forced
//! mode: the hook would re-enter the log manager's internal lock.

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::ThreadId;

/// Panic payload carried out of a fired crash point; caught by
/// [`run_to_crash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSignal {
    /// Name of the crash point that fired.
    pub point: String,
    /// Which hit fired (1-based).
    pub hit: u64,
}

/// What the durable state looks like at the simulated crash instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Only the flushed log prefix survives (a real power failure: the
    /// in-memory tail is lost).
    FlushedPrefix,
    /// The pre-crash hook (normally `log.flush_all()`) runs first, so the
    /// whole log tail written so far is durable.
    ForcedTail,
}

enum Mode {
    Disarmed,
    Record,
    Armed {
        point: String,
        fire_on_hit: u64,
        durability: Durability,
    },
}

struct PointState {
    name: &'static str,
    /// Source location of the `crash_point!` invocation — two invocations
    /// sharing a name would make torture enumeration silently skip one of
    /// them, so a second location for a known name is a hard error.
    file: &'static str,
    line: u32,
    hits: u64,
}

struct State {
    mode: Mode,
    /// Thread whose hits count (the thread that armed the registry).
    thread: Option<ThreadId>,
    /// Registered points in first-seen order.
    points: Vec<PointState>,
    /// Harness-supplied hook run before a [`Durability::ForcedTail`] crash.
    pre_crash: Option<Box<dyn Fn() + Send>>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State {
    mode: Mode::Disarmed,
    thread: None,
    points: Vec::new(),
    pre_crash: None,
});
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// A named crash point. Expands to a single relaxed atomic load when the
/// registry is disarmed; when active, registers/counts the hit and crashes
/// if this is the armed point's armed hit.
#[macro_export]
macro_rules! crash_point {
    ($name:expr) => {
        if $crate::active() {
            // file!()/line!() expand at the *invocation* site, letting the
            // registry detect two distinct hooks sharing one name.
            $crate::hit_at($name, file!(), line!());
        }
    };
}

/// True when the registry is recording or armed. Used by [`crash_point!`];
/// not meant to be called directly.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Serialize harnesses that arm the global registry (tests in one binary run
/// on concurrent threads). Hold the guard for the whole arm → run → disarm
/// sequence.
pub fn exclusive() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock()
}

fn stage(mode: Mode) {
    let mut g = STATE.lock();
    g.mode = mode;
    g.thread = Some(std::thread::current().id());
    g.points.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Stage recording mode: every [`crash_point!`] hit on this thread (after
/// [`activate`]) is registered and counted, none crash.
pub fn record() {
    stage(Mode::Record);
}

/// Stage a crash at the `fire_on_hit`-th hit (1-based) of `point` on this
/// thread, with [`Durability::FlushedPrefix`] semantics.
pub fn arm(point: &str, fire_on_hit: u64) {
    stage(Mode::Armed {
        point: point.to_string(),
        fire_on_hit,
        durability: Durability::FlushedPrefix,
    });
}

/// Like [`arm`], but with [`Durability::ForcedTail`] semantics: the
/// pre-crash hook is run before unwinding. Never arm a `wal.*` point this
/// way (the hook re-enters the log manager).
pub fn arm_forced(point: &str, fire_on_hit: u64) {
    stage(Mode::Armed {
        point: point.to_string(),
        fire_on_hit,
        durability: Durability::ForcedTail,
    });
}

/// Turn the staged mode live. Separate from [`arm`]/[`record`] so a
/// workload can run its non-interesting prologue (DDL, initial open) with
/// hooks cold and flip them on at the instant enumeration should start.
pub fn activate() {
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disarm everything (recorded points remain readable via [`recorded`]).
pub fn disarm() {
    let mut g = STATE.lock();
    g.mode = Mode::Disarmed;
    g.thread = None;
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Register the hook run before a [`Durability::ForcedTail`] crash.
pub fn set_pre_crash_hook(hook: impl Fn() + Send + 'static) {
    STATE.lock().pre_crash = Some(Box::new(hook));
}

/// Remove the pre-crash hook.
pub fn clear_pre_crash_hook() {
    STATE.lock().pre_crash = None;
}

/// Snapshot of every point hit since the last [`record`]/[`arm`], in
/// first-seen order, with hit counts.
pub fn recorded() -> Vec<(&'static str, u64)> {
    STATE
        .lock()
        .points
        .iter()
        .map(|p| (p.name, p.hits))
        .collect()
}

/// A [`crash_point!`] was reached while active. Not meant to be called
/// directly.
///
/// Panics (a plain panic, not a [`CrashSignal`]) when `name` was first
/// registered at a different source location: duplicate crash-point names
/// would alias in every harness that enumerates points by name.
pub fn hit_at(name: &'static str, file: &'static str, line: u32) {
    let mut g = STATE.lock();
    if matches!(g.mode, Mode::Disarmed) {
        return;
    }
    if g.thread != Some(std::thread::current().id()) {
        return; // another thread wandered through an armed hook: ignore
    }
    let n = match g.points.iter_mut().find(|p| p.name == name) {
        Some(p) => {
            if p.file != file || p.line != line {
                let (f0, l0) = (p.file, p.line);
                drop(g);
                panic!(
                    "duplicate crash point {name:?}: registered at {f0}:{l0}, \
                     hit again from {file}:{line}"
                );
            }
            p.hits += 1;
            p.hits
        }
        None => {
            g.points.push(PointState {
                name,
                file,
                line,
                hits: 1,
            });
            1
        }
    };
    let durability = match &g.mode {
        Mode::Armed {
            point,
            fire_on_hit,
            durability,
        } if point == name && n == *fire_on_hit => *durability,
        _ => return,
    };
    // Fire: one-shot. Disarm before unwinding so the hooks passed through
    // while the harness recovers (and the pre-crash hook's own log flush)
    // are inert.
    g.mode = Mode::Disarmed;
    g.thread = None;
    ACTIVE.store(false, Ordering::Relaxed);
    let hook = if durability == Durability::ForcedTail {
        g.pre_crash.take()
    } else {
        None
    };
    drop(g);
    if let Some(h) = hook {
        h();
        STATE.lock().pre_crash = Some(h);
    }
    std::panic::panic_any(CrashSignal {
        point: name.to_string(),
        hit: n,
    });
}

/// Result of driving a workload under an armed registry.
#[derive(Debug)]
pub enum Outcome<R> {
    /// The workload ran to completion (the armed point/hit was never
    /// reached, or the registry was only recording).
    Completed(R),
    /// A crash point fired; all of the closure's state was dropped by the
    /// unwind, exactly as a process crash drops volatile state.
    Crashed(CrashSignal),
}

impl<R> Outcome<R> {
    /// The signal, if the run crashed.
    pub fn crashed(self) -> Option<CrashSignal> {
        match self {
            Outcome::Crashed(sig) => Some(sig),
            Outcome::Completed(_) => None,
        }
    }
}

/// Run `f`, catching a fired crash point at this boundary. Non-crash panics
/// propagate unchanged. The default panic hook is suppressed for
/// [`CrashSignal`] unwinds so torture runs don't spam stderr.
pub fn run_to_crash<R>(f: impl FnOnce() -> R) -> Outcome<R> {
    install_quiet_hook();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Outcome::Completed(r),
        Err(payload) => match payload.downcast::<CrashSignal>() {
            Ok(sig) => Outcome::Crashed(*sig),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(times: u64) {
        for _ in 0..times {
            crash_point!("test.a");
            crash_point!("test.b");
        }
    }

    #[test]
    fn disarmed_hooks_are_inert() {
        let _x = exclusive();
        record(); // clear any earlier test's registrations
        disarm();
        probe(3);
        assert!(recorded().is_empty());
    }

    #[test]
    fn record_registers_points_in_order_with_counts() {
        let _x = exclusive();
        record();
        activate();
        probe(3);
        disarm();
        assert_eq!(recorded(), vec![("test.a", 3), ("test.b", 3)]);
        // Disarmed again: further hits don't count.
        probe(1);
        assert_eq!(recorded(), vec![("test.a", 3), ("test.b", 3)]);
    }

    #[test]
    fn armed_point_fires_on_exact_hit_and_disarms() {
        let _x = exclusive();
        arm("test.b", 2);
        activate();
        let out = run_to_crash(|| probe(5));
        let sig = out.crashed().expect("must crash");
        assert_eq!(sig.point, "test.b");
        assert_eq!(sig.hit, 2);
        // One-shot: the registry disarmed itself before unwinding.
        assert!(!active());
        probe(10);
        disarm();
    }

    #[test]
    fn unreached_hit_count_completes() {
        let _x = exclusive();
        arm("test.a", 100);
        activate();
        let out = run_to_crash(|| {
            probe(2);
            7
        });
        disarm();
        match out {
            Outcome::Completed(v) => assert_eq!(v, 7),
            Outcome::Crashed(sig) => panic!("unexpected crash at {sig:?}"),
        }
    }

    #[test]
    fn other_threads_do_not_consume_hits() {
        let _x = exclusive();
        arm("test.a", 1);
        activate();
        // A foreign thread runs straight through the armed point.
        std::thread::spawn(|| probe(5)).join().unwrap();
        assert!(active(), "foreign hits must not fire the crash");
        let out = run_to_crash(|| probe(1));
        assert!(out.crashed().is_some());
        disarm();
    }

    #[test]
    fn forced_tail_runs_pre_crash_hook_first() {
        let _x = exclusive();
        let flag = std::sync::Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        set_pre_crash_hook(move || f2.store(true, Ordering::SeqCst));
        arm_forced("test.a", 1);
        activate();
        let out = run_to_crash(|| probe(1));
        assert!(out.crashed().is_some());
        assert!(flag.load(Ordering::SeqCst), "hook must run before unwind");
        clear_pre_crash_hook();
        disarm();
    }

    #[test]
    fn duplicate_point_name_panics() {
        let _x = exclusive();
        record();
        activate();
        crash_point!("test.dup");
        // Same name, different invocation site: must abort the run loudly.
        let caught = std::panic::catch_unwind(|| crash_point!("test.dup"));
        disarm();
        let err = caught.expect_err("duplicate registration must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("duplicate crash point"), "got: {msg}");
    }

    #[test]
    fn non_crash_panics_propagate() {
        let _x = exclusive();
        let caught = std::panic::catch_unwind(|| {
            run_to_crash(|| panic!("a real bug"));
        });
        assert!(caught.is_err(), "ordinary panics must not be swallowed");
    }
}
