//! The log channel between primary and standby.
//!
//! A transport is a byte stream addressed by primary LSN: `send` appends a
//! chunk of whole WAL frames at a stream position, `recv` reads from one.
//! Because LSNs are byte offsets into the primary's log, "stream position"
//! and "LSN" are the same number, and the transport never needs to parse
//! what it carries. Two implementations: an in-process buffer (tests, the
//! workload harness) and a spool file (two engines sharing only a
//! filesystem, the closest this reproduction gets to a network).
//!
//! The transport also carries the primary's **master record** (checkpoint
//! pointer) out of band, so a standby can start its promotion analysis from
//! the last shipped checkpoint instead of the log's beginning.

use ariesim_common::{Error, Lsn, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A shippable log stream. Implementations must tolerate `send` and `recv`
/// racing from different threads.
pub trait LogTransport: Send + Sync {
    /// Append `chunk` at stream position `at`. Positions must be
    /// contiguous: `at` is exactly where the previous send ended (or the
    /// stream's base for the first send).
    fn send(&self, at: Lsn, chunk: &[u8]) -> Result<()>;

    /// Read up to `max` bytes starting at `at`. Empty means nothing new.
    /// Short reads are normal; the result is always whole bytes of the
    /// stream, never padded.
    fn recv(&self, at: Lsn, max: usize) -> Result<Vec<u8>>;

    /// One past the last byte in the stream (= the next send position).
    fn end(&self) -> Result<Lsn>;

    /// Publish the primary's master record (checkpoint LSN).
    fn publish_master(&self, ckpt: Lsn) -> Result<()>;

    /// The most recently published master record; NULL if none yet.
    fn master(&self) -> Result<Lsn>;
}

/// In-process transport: a growable buffer based at the LSN where shipping
/// began (the standby's base backup already holds everything below).
pub struct InProcessTransport {
    base: Lsn,
    buf: Mutex<Vec<u8>>,
    master: AtomicU64,
}

impl InProcessTransport {
    pub fn new(base: Lsn) -> InProcessTransport {
        InProcessTransport {
            base,
            buf: Mutex::new(Vec::new()),
            master: AtomicU64::new(Lsn::NULL.0),
        }
    }
}

impl LogTransport for InProcessTransport {
    fn send(&self, at: Lsn, chunk: &[u8]) -> Result<()> {
        let mut buf = self.buf.lock();
        let end = Lsn(self.base.0 + buf.len() as u64);
        if at != end {
            return Err(Error::Internal(format!(
                "transport send at {at}, stream ends at {end}"
            )));
        }
        buf.extend_from_slice(chunk);
        Ok(())
    }

    fn recv(&self, at: Lsn, max: usize) -> Result<Vec<u8>> {
        let buf = self.buf.lock();
        if at < self.base {
            return Err(Error::Internal(format!(
                "transport recv at {at}, below stream base {}",
                self.base
            )));
        }
        let off = (at.0 - self.base.0) as usize;
        if off >= buf.len() {
            return Ok(Vec::new());
        }
        let to = (off + max).min(buf.len());
        Ok(buf[off..to].to_vec())
    }

    fn end(&self) -> Result<Lsn> {
        Ok(Lsn(self.base.0 + self.buf.lock().len() as u64))
    }

    fn publish_master(&self, ckpt: Lsn) -> Result<()> {
        // ordering: the master record only advances after its checkpoint is in the buffer (Mutex-published)
        self.master.store(ckpt.0, Ordering::Release);
        Ok(())
    }

    fn master(&self) -> Result<Lsn> {
        Ok(Lsn(self.master.load(Ordering::Acquire))) // ordering: pairs with the Release in publish_master
    }
}

/// Spool-file header: magic + the stream's base LSN.
const SPOOL_MAGIC: &[u8; 8] = b"ARIESHP1";
const SPOOL_HEADER: u64 = 16;

/// File-backed transport: the stream is spooled to a file (header: magic +
/// base LSN), the master record to a CRC-guarded sidecar written via
/// rename, mirroring `wal.master`. A sender and a receiver may be distinct
/// `FileTransport` instances — even in different processes.
pub struct FileTransport {
    path: PathBuf,
    base: Lsn,
    /// Writer handle (senders); receivers open fresh read handles per call
    /// so a pure-receiver instance never holds the file open for write.
    writer: Mutex<Option<File>>,
}

impl FileTransport {
    /// Create a new spool at `path` for a stream based at `base`
    /// (truncates any previous spool).
    pub fn create(path: &Path, base: Lsn) -> Result<FileTransport> {
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = SPOOL_MAGIC.to_vec();
        header.extend_from_slice(&base.0.to_le_bytes());
        f.write_all(&header)?;
        Ok(FileTransport {
            path: path.to_path_buf(),
            base,
            writer: Mutex::new(Some(f)),
        })
    }

    /// Open an existing spool (receiver side).
    pub fn open(path: &Path) -> Result<FileTransport> {
        let mut f = File::open(path)?;
        let mut header = [0u8; SPOOL_HEADER as usize];
        f.read_exact(&mut header).map_err(|_| Error::CorruptLog {
            lsn: Lsn::NULL,
            reason: "short log spool header".into(),
        })?;
        if &header[..8] != SPOOL_MAGIC {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad log spool magic".into(),
            });
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&header[8..16]);
        let base = Lsn(u64::from_le_bytes(raw));
        Ok(FileTransport {
            path: path.to_path_buf(),
            base,
            writer: Mutex::new(None),
        })
    }

    /// The stream base this spool was created with.
    pub fn base(&self) -> Lsn {
        self.base
    }

    fn master_path(&self) -> PathBuf {
        self.path.with_extension("spool.master")
    }
}

impl LogTransport for FileTransport {
    fn send(&self, at: Lsn, chunk: &[u8]) -> Result<()> {
        let mut wg = self.writer.lock();
        if wg.is_none() {
            *wg = Some(OpenOptions::new().read(true).write(true).open(&self.path)?);
        }
        let Some(f) = wg.as_mut() else {
            return Err(Error::Internal("spool writer unavailable".into()));
        };
        let len = f.seek(SeekFrom::End(0))?;
        let end = Lsn(self.base.0 + (len - SPOOL_HEADER));
        if at != end {
            return Err(Error::Internal(format!(
                "spool send at {at}, stream ends at {end}"
            )));
        }
        f.write_all(chunk)?;
        Ok(())
    }

    fn recv(&self, at: Lsn, max: usize) -> Result<Vec<u8>> {
        if at < self.base {
            return Err(Error::Internal(format!(
                "spool recv at {at}, below stream base {}",
                self.base
            )));
        }
        let mut f = File::open(&self.path)?;
        let len = f.seek(SeekFrom::End(0))?.saturating_sub(SPOOL_HEADER);
        let off = at.0 - self.base.0;
        if off >= len {
            return Ok(Vec::new());
        }
        let take = ((len - off) as usize).min(max);
        f.seek(SeekFrom::Start(SPOOL_HEADER + off))?;
        let mut out = vec![0u8; take];
        f.read_exact(&mut out)?;
        Ok(out)
    }

    fn end(&self) -> Result<Lsn> {
        let len = std::fs::metadata(&self.path)?.len().saturating_sub(SPOOL_HEADER);
        Ok(Lsn(self.base.0 + len))
    }

    fn publish_master(&self, ckpt: Lsn) -> Result<()> {
        let tmp = self.path.with_extension("spool.master.tmp");
        let mut body = ckpt.0.to_le_bytes().to_vec();
        let crc = ariesim_common::codec::crc32c(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&tmp, &body)?;
        std::fs::rename(&tmp, self.master_path())?;
        Ok(())
    }

    fn master(&self) -> Result<Lsn> {
        let raw = match std::fs::read(self.master_path()) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Lsn::NULL),
            Err(e) => return Err(e.into()),
        };
        if raw.len() != 12
            || ariesim_common::codec::crc32c(&raw[..8])
                != ariesim_common::codec::u32_at(&raw, 8)
        {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad spool master record".into(),
            });
        }
        Ok(Lsn(ariesim_common::codec::u64_at(&raw, 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::tmp::TempDir;

    fn stream_roundtrip(t: &dyn LogTransport, base: Lsn) {
        assert_eq!(t.end().unwrap(), base);
        assert!(t.recv(base, 64).unwrap().is_empty());
        t.send(base, b"hello ").unwrap();
        t.send(Lsn(base.0 + 6), b"world").unwrap();
        // Gap and overlap rejected.
        assert!(t.send(Lsn(base.0 + 100), b"x").is_err());
        assert!(t.send(base, b"x").is_err());
        assert_eq!(t.end().unwrap(), Lsn(base.0 + 11));
        assert_eq!(t.recv(base, 6).unwrap(), b"hello ");
        assert_eq!(t.recv(Lsn(base.0 + 6), 64).unwrap(), b"world");
        assert!(t.recv(Lsn(base.0 + 11), 64).unwrap().is_empty());
        assert_eq!(t.master().unwrap(), Lsn::NULL);
        t.publish_master(Lsn(42)).unwrap();
        assert_eq!(t.master().unwrap(), Lsn(42));
    }

    #[test]
    fn in_process_stream() {
        stream_roundtrip(&InProcessTransport::new(Lsn(1000)), Lsn(1000));
    }

    #[test]
    fn file_spool_stream() {
        let dir = TempDir::new("repl-spool");
        let t = FileTransport::create(&dir.file("spool"), Lsn(1000)).unwrap();
        stream_roundtrip(&t, Lsn(1000));
        // A separate receiver instance sees the same stream.
        let r = FileTransport::open(&dir.file("spool")).unwrap();
        assert_eq!(r.base(), Lsn(1000));
        assert_eq!(r.recv(Lsn(1000), 64).unwrap(), b"hello world");
        assert_eq!(r.master().unwrap(), Lsn(42));
    }
}
