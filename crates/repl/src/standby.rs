//! The warm standby: restart's redo pass running as a service.
//!
//! A standby is assembled from the same stack as a [`Db`] — log, pool,
//! resource managers, catalog, trees — but with **no transaction manager
//! and no restart**: its log is a byte-identical prefix of the primary's
//! (base backup + ingested chunks), and its only writer is the continuous
//! redo applier. Keeping the standby transaction-free is load-bearing:
//! even beginning a read-only transaction would append a Begin record and
//! fork the standby's log away from the primary's.
//!
//! Reads are therefore latch-only snapshot reads at the **applied-LSN
//! watermark**: an `RwLock` excludes the applier (writer) from readers, so
//! a read observes exactly the state at `applied_lsn` — never further,
//! because the applier is the sole mutator and it publishes the watermark
//! under the same gate.
//!
//! Promotion is the paper's observation made literal: a standby *is* a
//! database that crashed at its applied watermark plus whatever log it has
//! ingested. [`Standby::promote`] flushes what it can, tears the standby
//! down, and runs a plain [`Db::open`] — analysis from the last shipped
//! checkpoint, redo of the unapplied suffix, undo of in-flight (loser)
//! transactions shipped from the primary.

use crate::transport::LogTransport;
use ariesim_btree::{BTree, IndexRm};
use ariesim_common::stats::{new_stats, StatsHandle};
use ariesim_common::{Error, Lsn, Result, Rid};
use ariesim_db::catalog::Catalog;
use ariesim_db::{Db, DbOptions, Row};
use ariesim_fault::crash_point;
use ariesim_lock::LockManager;
use ariesim_obs::{ObsHandle, SpanKind};
use ariesim_record::HeapManager;
use ariesim_recovery::{apply_redo, RedoCursor};
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceRm};
use ariesim_txn::RmRegistry;
use ariesim_wal::frame::{self, FrameRead};
use ariesim_wal::{LogManager, LogOptions};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Records applied per gate acquisition: readers interleave at this grain.
const APPLY_BATCH: u64 = 32;

/// Receive chunk size (grown on demand up to [`MAX_RECV_CHUNK`] when a
/// single shipped frame is wider than the window).
const RECV_CHUNK: usize = 64 * 1024;

/// Hard ceiling on the receive window; a "frame" wider than this is
/// stream corruption, not a big record.
const MAX_RECV_CHUNK: usize = 64 * 1024 * 1024;

/// Length of the longest prefix of `chunk` that is entirely whole, valid
/// frames (the transport is a byte stream and may hand us a torn tail).
fn whole_frame_prefix(chunk: &[u8]) -> Result<usize> {
    let mut off = 0u64;
    loop {
        match frame::read_frame(chunk, Lsn(off))? {
            FrameRead::Ok { next, .. } => off = next.0,
            FrameRead::End { .. } => return Ok(off as usize),
        }
    }
}

/// A continuously-redoing replica over a shipped log stream.
pub struct Standby {
    dir: PathBuf,
    opts: DbOptions,
    pub stats: StatsHandle,
    pub log: Arc<LogManager>,
    pub pool: Arc<BufferPool>,
    rms: Arc<RmRegistry>,
    trees: Vec<(String, Arc<BTree>)>,
    transport: Arc<dyn LogTransport>,
    /// Serializes receive+ingest so concurrent pumpers cannot interleave
    /// between reading the ingest point and extending the log.
    recv_lock: Mutex<()>,
    cursor: Mutex<RedoCursor>,
    /// Mirror of `cursor.at`, readable without the cursor lock.
    applied: AtomicU64,
    /// Apply/read exclusion: the applier holds write, readers hold read.
    gate: RwLock<()>,
    obs: ObsHandle,
}

impl Standby {
    /// Open a standby over `dir` (a base backup of the primary — see
    /// [`crate::fork_standby`]) fed by `transport`. Catches up to the
    /// locally durable log before returning, so the applied watermark is
    /// meaningful from the first read.
    pub fn open(
        dir: &Path,
        opts: DbOptions,
        transport: Arc<dyn LogTransport>,
        obs: ObsHandle,
    ) -> Result<Arc<Standby>> {
        let stats = new_stats();
        let log = Arc::new(LogManager::open_with_obs(
            &dir.join("wal"),
            // Standbys stay in leader mode: the apply loop is the only
            // committer, so a dedicated flusher would never batch.
            LogOptions {
                fsync: opts.fsync,
                ..LogOptions::default()
            },
            stats.clone(),
            obs.clone(),
        )?);
        let disk = DiskManager::open(&dir.join("pages"), stats.clone())?;
        let pool = BufferPool::new_with_obs(
            disk,
            log.clone(),
            PoolOptions {
                frames: opts.frames,
                ..PoolOptions::default()
            },
            stats.clone(),
            obs.clone(),
        );
        let locks = Arc::new(LockManager::new(stats.clone()));
        let rms = Arc::new(RmRegistry::new());
        let heap = HeapManager::new_with_granularity(
            pool.clone(),
            locks.clone(),
            log.clone(),
            stats.clone(),
            opts.page_granularity,
        );
        let index_rm = IndexRm::new(pool.clone(), stats.clone());
        rms.register(heap);
        rms.register(index_rm.clone());
        rms.register(Arc::new(SpaceRm::new(pool.clone())));

        let catalog = Catalog::load(&pool)?;
        let mut trees = Vec::new();
        for def in catalog.indexes() {
            let tree = BTree::new_with_granularity(
                def.id,
                def.root,
                def.unique,
                opts.protocol,
                opts.page_granularity,
                pool.clone(),
                locks.clone(),
                log.clone(),
                stats.clone(),
            );
            index_rm.register_tree(tree.clone());
            trees.push((def.name.clone(), tree));
        }

        let this = Standby {
            dir: dir.to_path_buf(),
            opts,
            stats,
            log,
            pool,
            rms,
            trees,
            transport,
            recv_lock: Mutex::new(()),
            cursor: Mutex::new(RedoCursor::starting_at(Lsn::NULL)),
            applied: AtomicU64::new(0),
            gate: RwLock::new(()),
            obs,
        };
        // Catch up to the locally durable log (the base backup may predate
        // its own log end; redo's page_lsn check makes this idempotent).
        this.apply_once()?;
        Ok(Arc::new(this))
    }

    /// This standby's observability domain (ingest/apply histograms and
    /// the replication-lag gauge live here).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// The applied-LSN watermark: reads reflect the log exactly up to here.
    pub fn applied_lsn(&self) -> Lsn {
        Lsn(self.applied.load(Ordering::Acquire)) // ordering: pairs with the Release store in apply_available
    }

    /// Durable primary log this standby has not yet applied, in bytes
    /// (computed against the transport's stream end; the primary may be
    /// further ahead still).
    pub fn lag_bytes(&self) -> u64 {
        self.transport
            .end()
            .map(|e| e.0.saturating_sub(self.applied_lsn().0))
            .unwrap_or(0)
    }

    /// Receive and ingest at most one chunk from the transport, and adopt
    /// the primary's master record once the checkpoint it names has been
    /// shipped. Returns bytes ingested (0 = nothing new).
    ///
    /// The transport is a byte stream, so a bounded `recv` can cut the
    /// last frame in half; only the whole-frame prefix is ingested and the
    /// remainder is re-fetched next cycle. A lone frame wider than the
    /// window widens it.
    pub fn recv_once(&self) -> Result<u64> {
        let _recv = self.recv_lock.lock();
        let at = self.log.next_lsn();
        let mut max = RECV_CHUNK;
        let (chunk, whole) = loop {
            let chunk = self.transport.recv(at, max)?;
            let whole = whole_frame_prefix(&chunk)?;
            // A full window with no complete frame means the next frame is
            // wider than the window; anything short of a full window is
            // simply all the stream has right now.
            if whole > 0 || chunk.len() < max {
                break (chunk, whole);
            }
            max = max
                .checked_mul(2)
                .filter(|&m| m <= MAX_RECV_CHUNK)
                .ok_or_else(|| Error::CorruptLog {
                    lsn: at,
                    reason: "shipped frame wider than the receive limit".into(),
                })?;
        };
        if whole > 0 {
            let t = self.obs.timer();
            self.log.ingest_frames(at, &chunk[..whole])?;
            self.obs.hist.repl_ingest.record_since(t);
            crash_point!("repl.recv.ingested");
        }
        let master = self.transport.master()?;
        if !master.is_null() && master < self.log.next_lsn() && self.log.read_master()? != master
        {
            self.log.write_master(master)?;
        }
        Ok(whole as u64)
    }

    /// Apply all ingested-but-unapplied log, a batch at a time; readers
    /// interleave between batches. Returns the new applied watermark.
    pub fn apply_once(&self) -> Result<Lsn> {
        let upto = self.log.flushed_lsn();
        loop {
            let _w = self.gate.write();
            let mut cur = self.cursor.lock();
            let t = self.obs.timer();
            let span = self.obs.span(SpanKind::Apply, 0, 0);
            let examined = apply_redo(
                &self.log,
                &self.pool,
                self.rms.as_ref(),
                &self.stats,
                &mut cur,
                upto,
                APPLY_BATCH,
            )?;
            // ordering: publishes the pages applied above; applied_lsn readers see a page image at least this new
            self.applied.store(cur.at.0, Ordering::Release);
            drop(span);
            if examined == 0 {
                break;
            }
            self.obs.hist.repl_apply.record_since(t);
            drop(cur);
            drop(_w);
            crash_point!("repl.apply.batch");
        }
        Ok(self.applied_lsn())
    }

    /// One receive + apply cycle; updates the replication-lag gauge from
    /// the two watermarks (the transport's durable end vs our applied LSN
    /// — see `ariesim_obs::ReplLag` for the unit semantics).
    ///
    /// The gauge is set twice per cycle: first with the backlog the cycle
    /// *found* (durable end vs the applied watermark before this batch —
    /// its `.max()` over a run is the high-water lag), then with the
    /// settled post-apply state (normally 0, so `.last()` reads as
    /// "caught up" between cycles).
    pub fn pump(&self) -> Result<u64> {
        let n = self.recv_once()?;
        let lag = &self.obs.gauge.repl_lag;
        let before = self.applied_lsn();
        let end = self.transport.end().unwrap_or(before);
        lag.set_watermarks(end.0, before.0);
        let applied = self.apply_once()?;
        lag.set_watermarks(end.0, applied.0);
        Ok(n)
    }

    /// Snapshot read at the applied watermark: the row whose key in
    /// `index` equals `value`. Latch-only (no transaction, no locks — see
    /// module docs); the apply gate guarantees the answer is exactly the
    /// watermark state.
    pub fn read(&self, index: &str, value: &[u8]) -> Result<Option<(Rid, Row)>> {
        let tree = self.tree(index)?;
        // An in-flight SMO shipped mid-window can make the leaf chain
        // momentarily ambiguous; applying further log resolves it.
        for _ in 0..64 {
            let _r = self.gate.read();
            match tree.get_unlocked(value) {
                Ok(None) => return Ok(None),
                Ok(Some(key)) => {
                    let g = self.pool.fix_s(key.rid.page)?; // latch-rank: 2
                    let bytes = g
                        .cell(key.rid.slot.0)
                        .map(|c| c.to_vec())
                        .ok_or(Error::BadRid { rid: key.rid })?;
                    return Ok(Some((key.rid, Row::decode(&bytes)?)));
                }
                Err(Error::WouldBlock) => {
                    drop(_r);
                    self.apply_once()?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(Error::Internal(format!(
            "standby read of {index} still ambiguous after catch-up"
        )))
    }

    /// Unlocked count of live keys in `index` (verification helper).
    pub fn count(&self, index: &str) -> Result<usize> {
        let tree = self.tree(index)?;
        let _r = self.gate.read();
        Ok(tree.scan_all_unlocked()?.len())
    }

    fn tree(&self, index: &str) -> Result<Arc<BTree>> {
        self.trees
            .iter()
            .find(|(n, _)| n == index)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| Error::Internal(format!("no index {index} on standby")))
    }

    /// Fail over: complete recovery over everything this standby has
    /// ingested and open the result as a read-write [`Db`]. Consumes the
    /// standby (the caller must hold the only `Arc`). Uncommitted primary
    /// transactions whose updates were shipped are rolled back by restart's
    /// undo pass, exactly as if the primary had crashed here.
    pub fn promote(self: Arc<Self>) -> Result<Arc<Db>> {
        let this = Arc::try_unwrap(self)
            .map_err(|_| Error::Internal("standby still shared at promote".into()))?;
        crash_point!("repl.promote.begin");
        let Standby {
            dir, opts, pool, ..
        } = this;
        // Flushing shrinks the redo pass of the reopen; correctness never
        // depends on it (redo is idempotent, the ingested log is durable).
        pool.flush_all()?;
        drop(pool);
        crash_point!("repl.promote.reopen");
        let db = Db::open(&dir, opts)?;
        crash_point!("repl.promote.done");
        Ok(db)
    }
}
