//! `ariesim-repl` — log-shipping replication for the ARIES/IM stack.
//!
//! The design follows directly from two properties of the engine:
//!
//! 1. **LSNs are byte offsets** into the log file, so a standby whose log
//!    is a byte-identical prefix of the primary's can use primary LSNs
//!    verbatim — in page LSNs, in the master record, everywhere.
//! 2. **Redo is page-oriented and idempotent** (the `page_lsn` test), so
//!    "continuously apply shipped log" is restart's redo pass running
//!    forever, with no analysis and no dirty page table.
//!
//! The pieces:
//!
//! * [`LogTransport`] ([`transport`]) — the shipped byte stream, in-process
//!   or spool-file backed, plus the out-of-band master record.
//! * [`Shipper`] ([`ship`]) — walks the primary's durable log in
//!   whole-frame chunks; stateless across restarts.
//! * [`Standby`] ([`standby`]) — ingests chunks into its own (durable)
//!   log, continuously redoes them, serves latch-only snapshot reads at
//!   the applied-LSN watermark, and promotes by completing recovery.
//! * [`fork_standby`] / [`ReplPair`] — base-backup provisioning and a
//!   harness-friendly bundle of the three.
//!
//! Shipping is asynchronous: a primary commit does not wait for the
//! standby. A failover that must lose no committed transaction therefore
//! drains the channel first ([`ReplPair::sync`]); an unplanned failover
//! recovers exactly what was shipped, the replication analogue of losing
//! the unflushed log tail in a crash.

pub mod ship;
pub mod standby;
pub mod transport;

pub use ship::Shipper;
pub use standby::Standby;
pub use transport::{FileTransport, InProcessTransport, LogTransport};

use ariesim_common::{Error, Lsn, Result};
use ariesim_db::Db;
use ariesim_obs::ObsHandle;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// Provision a standby from a quiesced primary: checkpoint, flush
/// everything, copy the database directory, and open a [`Standby`] over
/// the copy with a shipper resuming at the copy's log end. The primary
/// must have no active transactions (base backup by copy is only
/// byte-stable on a quiesced engine; a fuzzy backup would use
/// `ariesim_recovery::media` instead).
pub fn fork_standby(
    primary: &Arc<Db>,
    standby_dir: &Path,
    make_transport: impl FnOnce(Lsn) -> Result<Arc<dyn LogTransport>>,
    obs: ObsHandle,
) -> Result<(Arc<Standby>, Shipper)> {
    if primary.tm.active_count() != 0 {
        return Err(Error::Internal(
            "fork_standby requires a quiesced primary (active transactions)".into(),
        ));
    }
    primary.checkpoint()?;
    primary.log.flush_all()?;
    primary.pool.flush_all()?;
    let base = primary.log.flushed_lsn();
    let transport = make_transport(base)?;
    if transport.end()? != base {
        return Err(Error::Internal(format!(
            "transport stream ends at {}, base backup at {base}",
            transport.end()?
        )));
    }
    copy_flat_dir(primary.dir(), standby_dir)?;
    let standby = Standby::open(
        standby_dir,
        primary.options().clone(),
        transport.clone(),
        obs,
    )?;
    let shipper = Shipper::new(primary.log.clone(), transport)?;
    Ok((standby, shipper))
}

/// A primary, its standby, and the shipper between them — the bundle the
/// workload harness and the torture matrix drive.
pub struct ReplPair {
    pub primary: Arc<Db>,
    pub standby: Arc<Standby>,
    shipper: Mutex<Shipper>,
}

impl ReplPair {
    /// Fork a standby of `primary` into `standby_dir` over an in-process
    /// transport. See [`fork_standby`] for the quiescence requirement.
    pub fn create(
        primary: Arc<Db>,
        standby_dir: &Path,
        standby_obs: ObsHandle,
    ) -> Result<ReplPair> {
        let (standby, shipper) = fork_standby(
            &primary,
            standby_dir,
            |base| Ok(Arc::new(InProcessTransport::new(base))),
            standby_obs,
        )?;
        Ok(ReplPair {
            primary,
            standby,
            shipper: Mutex::new(shipper),
        })
    }

    /// One replication cycle: ship at most one chunk, ingest and apply it.
    /// Returns bytes shipped (0 = channel idle and standby caught up).
    ///
    /// Gauges the lag the cycle *found* first: the pair sees the primary's
    /// durable log end, which the transport-only view inside
    /// [`Standby::pump`] cannot (that view never exceeds the shipped
    /// prefix). `repl_lag_*.max()` over a run is therefore the true
    /// high-water backlog; `.last()` is the settled post-apply state.
    pub fn pump(&self) -> Result<u64> {
        self.standby.obs().gauge.repl_lag.set_watermarks(
            self.primary.log.flushed_lsn().0,
            self.standby.applied_lsn().0,
        );
        let shipped = self.shipper.lock().pump()?;
        self.standby.pump()?;
        Ok(shipped)
    }

    /// Drain: ship and apply until the standby's watermark reaches the
    /// primary's durable log end (flushes the primary's log first, so a
    /// preceding commit is always covered).
    pub fn sync(&self) -> Result<Lsn> {
        self.primary.log.flush_all()?;
        loop {
            let shipped = self.shipper.lock().ship_all()?;
            self.standby.pump()?;
            if shipped == 0 && self.standby.applied_lsn() >= self.primary.log.flushed_lsn() {
                return Ok(self.standby.applied_lsn());
            }
        }
    }

    /// Durable primary log the standby has not yet applied, in bytes.
    pub fn lag_bytes(&self) -> u64 {
        self.primary
            .log
            .flushed_lsn()
            .0
            .saturating_sub(self.standby.applied_lsn().0)
    }

    /// Tear the pair apart (e.g. to drop the primary and promote).
    pub fn into_parts(self) -> (Arc<Db>, Arc<Standby>, Shipper) {
        (self.primary, self.standby, self.shipper.into_inner())
    }
}

/// Copy the regular files of `src` into `dst` (database directories are
/// flat: wal, wal.master, pages).
fn copy_flat_dir(src: &Path, dst: &Path) -> Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}
