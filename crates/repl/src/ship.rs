//! Primary-side log shipping.
//!
//! The shipper walks the primary's *durable* log image in whole-frame
//! chunks and appends them to the transport. It keeps no durable state of
//! its own: the shipped watermark is volatile, and on restart a new shipper
//! resumes from wherever the transport stream ends — the transport's
//! contiguity check makes double-shipping impossible.

use crate::transport::LogTransport;
use ariesim_common::{Lsn, Result};
use ariesim_fault::crash_point;
use ariesim_wal::LogManager;
use std::sync::Arc;

/// Default chunk size: a few pages' worth of log per send.
pub const DEFAULT_CHUNK: usize = 32 * 1024;

/// Streams a primary's durable log into a transport.
pub struct Shipper {
    log: Arc<LogManager>,
    transport: Arc<dyn LogTransport>,
    /// Next LSN to ship (everything below is in the transport).
    shipped: Lsn,
    chunk: usize,
}

impl Shipper {
    /// A shipper resuming from the transport's current end (for a fresh
    /// pair this is the stream base = the base-backup boundary).
    pub fn new(log: Arc<LogManager>, transport: Arc<dyn LogTransport>) -> Result<Shipper> {
        let shipped = transport.end()?;
        Ok(Shipper {
            log,
            transport,
            shipped,
            chunk: DEFAULT_CHUNK,
        })
    }

    /// Override the per-send chunk size (tests use tiny chunks to exercise
    /// partial shipping).
    pub fn with_chunk(mut self, chunk: usize) -> Shipper {
        self.chunk = chunk.max(1);
        self
    }

    /// Next LSN to ship.
    pub fn shipped_lsn(&self) -> Lsn {
        self.shipped
    }

    /// Durable primary log not yet shipped, in bytes.
    pub fn backlog(&self) -> u64 {
        self.log.flushed_lsn().0.saturating_sub(self.shipped.0)
    }

    /// Ship at most one chunk. Returns the bytes shipped (0 = caught up).
    /// Also forwards the primary's master record whenever the whole log
    /// prefix it points into has been shipped.
    pub fn pump(&mut self) -> Result<u64> {
        let (chunk, next) = self.log.read_durable_chunk(self.shipped, self.chunk)?;
        if !chunk.is_empty() {
            self.transport.send(self.shipped, &chunk)?;
            crash_point!("repl.ship.chunk");
            self.shipped = next;
        }
        let master = self.log.read_master()?;
        if !master.is_null() && master < self.shipped && self.transport.master()? != master {
            self.transport.publish_master(master)?;
        }
        Ok(chunk.len() as u64)
    }

    /// Ship everything currently durable (drain the backlog).
    pub fn ship_all(&mut self) -> Result<u64> {
        let mut total = 0;
        loop {
            let n = self.pump()?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }
}
