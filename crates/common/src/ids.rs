//! Strongly-typed identifiers.
//!
//! Every identifier that crosses a subsystem boundary is a newtype so that a
//! page id can never be confused with a transaction id at a call site. All of
//! them are `Copy`, ordered, hashable, and have a stable 8-byte (or smaller)
//! little-endian wire encoding used by the log and page formats.

use std::fmt;

/// Log sequence number: the byte offset of a log record in the (conceptually
/// infinite) log address space. LSNs increase monotonically over time, which
/// is the property ARIES's `page_LSN` comparison relies on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN: "no log record". Used for `prev_lsn` of a transaction's
    /// first record and for pages that have never been modified.
    pub const NULL: Lsn = Lsn(0);

    /// The smallest valid (non-null) LSN. The log reserves offset 0 for NULL
    /// by starting real records at this offset.
    pub const FIRST: Lsn = Lsn(1);

    #[inline]
    pub fn is_null(self) -> bool {
        self == Lsn::NULL
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Lsn(NULL)")
        } else {
            write!(f, "Lsn({})", self.0)
        }
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a page in the database file. Page 0 is the database header
/// page; space-map pages and user pages follow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (e.g. a leaf with no successor). Page 0 is the
    /// header page and can never legitimately be linked to, so it doubles as
    /// the null value in chain pointers.
    pub const NULL: PageId = PageId(0);

    #[inline]
    pub fn is_null(self) -> bool {
        self == PageId::NULL
    }

    /// Byte offset of this page inside the database file.
    #[inline]
    pub fn file_offset(self) -> u64 {
        self.0 as u64 * crate::page::PAGE_SIZE as u64
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Slot number of a record within a slotted page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotNo(pub u16);

/// Record identifier: (data page, slot). This is what ARIES/IM's *data-only
/// locking* locks — "to lock a key, ARIES/IM locks the record whose record ID
/// is present in the key" (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    pub page: PageId,
    pub slot: SlotNo,
}

impl Rid {
    pub const fn new(page: PageId, slot: u16) -> Rid {
        Rid {
            page,
            slot: SlotNo(slot),
        }
    }

    /// Stable 6-byte wire encoding (4-byte page, 2-byte slot), used inside
    /// index keys and log records.
    pub const WIRE_LEN: usize = 6;

    pub fn encode_into(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.page.0.to_le_bytes());
        out.extend_from_slice(&self.slot.0.to_le_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Option<Rid> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        let page = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let slot = u16::from_le_bytes(bytes[4..6].try_into().ok()?);
        Some(Rid::new(PageId(page), slot))
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.page, self.slot.0)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Transaction identifier, assigned monotonically by the transaction manager.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Sentinel used in log records that are not owned by any transaction
    /// (e.g. checkpoint records).
    pub const NONE: TxnId = TxnId(0);
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of an index (one B+-tree). Doubles as the name of the tree
/// latch and of the index's EOF lock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

impl fmt::Debug for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a table (one heap file).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tbl{}", self.0)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_null() {
        assert!(Lsn::NULL.is_null());
        assert!(!Lsn::FIRST.is_null());
        assert!(Lsn(5) < Lsn(9));
        assert_eq!(Lsn::default(), Lsn::NULL);
    }

    #[test]
    fn page_id_file_offset_uses_page_size() {
        assert_eq!(PageId(0).file_offset(), 0);
        assert_eq!(PageId(3).file_offset(), 3 * crate::page::PAGE_SIZE as u64);
    }

    #[test]
    fn rid_roundtrip() {
        let rid = Rid::new(PageId(0xDEAD_BEEF), 0x1234);
        let mut buf = Vec::new();
        rid.encode_into(&mut buf);
        assert_eq!(buf.len(), Rid::WIRE_LEN);
        assert_eq!(Rid::decode(&buf), Some(rid));
    }

    #[test]
    fn rid_decode_short_buffer_is_none() {
        assert_eq!(Rid::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn rid_ordering_is_page_then_slot() {
        let a = Rid::new(PageId(1), 9);
        let b = Rid::new(PageId(2), 0);
        let c = Rid::new(PageId(2), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(format!("{}", PageId(7)), "P7");
        assert_eq!(format!("{}", TxnId(3)), "T3");
        assert_eq!(format!("{}", Rid::new(PageId(7), 2)), "P7.2");
        assert_eq!(format!("{}", IndexId(1)), "I1");
    }
}
