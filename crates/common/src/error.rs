//! Error types shared across the engine.

use crate::ids::{Lsn, PageId, Rid, TxnId};
use std::fmt;

/// Engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Engine-wide error type.
///
/// Variants are deliberately coarse at subsystem boundaries: callers almost
/// always either propagate, retry (for `Deadlock`/`WouldBlock`), or surface a
/// user-visible condition (`UniqueViolation`, `NotFound`).
#[derive(Debug)]
pub enum Error {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A conditional lock or latch request could not be granted immediately.
    /// Never escapes the index manager: it drives the "release latches and
    /// re-request unconditionally" path from §2.2 of the paper.
    WouldBlock,
    /// The lock manager chose this transaction as a deadlock victim.
    Deadlock { txn: TxnId },
    /// Unique-index key-value violation (paper §2.4: commit-duration S lock on
    /// the found key makes the error condition repeatable).
    UniqueViolation,
    /// Requested key / record does not exist.
    NotFound,
    /// A page image failed structural validation (bad type, torn write, ...).
    CorruptPage { page: PageId, reason: String },
    /// A log record failed to decode at the given LSN.
    CorruptLog { lsn: Lsn, reason: String },
    /// The buffer pool has no evictable frame.
    BufferPoolFull,
    /// A pinned buffer frame no longer holds the pinned page: the load that
    /// installed the page failed in a concurrent thread and was unwound
    /// while this pin was held. Re-fixing the page through the pool retries
    /// the read.
    StalePin { page: PageId },
    /// A record was not where the caller said it was.
    BadRid { rid: Rid },
    /// The transaction is not in a state that allows the operation
    /// (e.g. operating on a committed transaction handle).
    BadTxnState { txn: TxnId, state: &'static str },
    /// Attempt to insert a payload that cannot fit even on an empty page.
    TooLarge { len: usize, max: usize },
    /// Internal invariant violation; indicates a bug, carries context.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::WouldBlock => write!(f, "conditional request would block"),
            Error::Deadlock { txn } => write!(f, "deadlock: {txn} chosen as victim"),
            Error::UniqueViolation => write!(f, "unique key violation"),
            Error::NotFound => write!(f, "not found"),
            Error::CorruptPage { page, reason } => write!(f, "corrupt page {page}: {reason}"),
            Error::CorruptLog { lsn, reason } => write!(f, "corrupt log record at {lsn}: {reason}"),
            Error::BufferPoolFull => write!(f, "buffer pool full: no evictable frame"),
            Error::StalePin { page } => {
                write!(f, "stale pin: {page} was unloaded after a failed read")
            }
            Error::BadRid { rid } => write!(f, "no record at {rid}"),
            Error::BadTxnState { txn, state } => {
                write!(f, "operation invalid for {txn} in state {state}")
            }
            Error::TooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds page capacity {max}")
            }
            Error::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True if the operation may succeed when retried after the conflicting
    /// transaction finishes (deadlock victims are retried by workload drivers).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Deadlock { .. } | Error::WouldBlock | Error::StalePin { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;

    #[test]
    fn display_mentions_context() {
        let e = Error::CorruptPage {
            page: PageId(4),
            reason: "bad type byte".into(),
        };
        let s = e.to_string();
        assert!(s.contains("P4") && s.contains("bad type byte"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::Deadlock { txn: TxnId(1) }.is_retryable());
        assert!(Error::WouldBlock.is_retryable());
        assert!(!Error::NotFound.is_retryable());
        assert!(!Error::UniqueViolation.is_retryable());
    }
}
