//! Index keys.
//!
//! Per the paper §1.1, "a key in a leaf page is a key-value, record-ID pair".
//! The RID suffix makes every key unique even in a *nonunique* index, which is
//! what lets ARIES/IM lock individual keys rather than key values — the
//! concurrency improvement over ARIES/KVL called out in §1. Ordering is
//! lexicographic on the value bytes, with the RID as tiebreaker.

use crate::codec::{Reader, Writer};
use crate::error::Result;
use crate::ids::Rid;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

/// A complete index key: (key-value, RID).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IndexKey {
    pub value: Vec<u8>,
    pub rid: Rid,
}

impl IndexKey {
    pub fn new(value: impl Into<Vec<u8>>, rid: Rid) -> IndexKey {
        IndexKey {
            value: value.into(),
            rid,
        }
    }

    /// Wire encoding: u16 length-prefixed value, then the 6-byte RID.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.value.len() + 8);
        w.bytes(&self.value).rid(self.rid);
        w.into_vec()
    }

    pub fn encode_into(&self, w: &mut Writer) {
        w.bytes(&self.value).rid(self.rid);
    }

    pub fn decode(buf: &[u8]) -> Result<IndexKey> {
        let mut r = Reader::new(buf);
        Self::decode_from(&mut r)
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<IndexKey> {
        let value = r.bytes()?.to_vec();
        let rid = r.rid()?;
        Ok(IndexKey { value, rid })
    }

    pub fn wire_len(&self) -> usize {
        2 + self.value.len() + Rid::WIRE_LEN
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .cmp(&other.value)
            .then_with(|| self.rid.cmp(&other.rid))
    }
}

impl fmt::Debug for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.value) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => {
                write!(f, "⟨{:?}@{}⟩", s, self.rid)
            }
            _ => write!(f, "⟨{:02x?}@{}⟩", self.value, self.rid),
        }
    }
}

/// What the caller hands to a search: a value, optionally qualified by a RID.
///
/// * Unique-index operations and user Fetch calls search by value alone.
/// * Nonunique-index Insert/Delete search with the full (value, RID) key
///   (paper §1.1: "for a nonunique index, the whole new key is provided as
///   input for search").
///
/// A value-only search key compares *before* every full key with the same
/// value, so a search positions at the first duplicate.
#[derive(Clone, PartialEq, Eq)]
pub struct SearchKey<'a> {
    pub value: Cow<'a, [u8]>,
    pub rid: Option<Rid>,
}

impl<'a> SearchKey<'a> {
    pub fn value_only(value: &'a [u8]) -> SearchKey<'a> {
        SearchKey {
            value: Cow::Borrowed(value),
            rid: None,
        }
    }

    pub fn full(value: &'a [u8], rid: Rid) -> SearchKey<'a> {
        SearchKey {
            value: Cow::Borrowed(value),
            rid: Some(rid),
        }
    }

    pub fn from_key(key: &'a IndexKey) -> SearchKey<'a> {
        SearchKey::full(&key.value, key.rid)
    }

    /// Compare against a full key stored on a page.
    pub fn cmp_key(&self, key: &IndexKey) -> Ordering {
        match self.value.as_ref().cmp(&key.value[..]) {
            Ordering::Equal => match self.rid {
                Some(rid) => rid.cmp(&key.rid),
                // Value-only searches sort before all (value, rid) keys.
                None => Ordering::Less,
            },
            ord => ord,
        }
    }

    /// True if `key` matches this search key's value (ignoring the RID when
    /// the search is value-only).
    pub fn value_matches(&self, key: &IndexKey) -> bool {
        self.value.as_ref() == &key.value[..]
            && self.rid.is_none_or(|rid| rid == key.rid)
    }
}

impl fmt::Debug for SearchKey<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rid {
            Some(rid) => write!(
                f,
                "search⟨{}@{}⟩",
                String::from_utf8_lossy(self.value.as_ref()),
                rid
            ),
            None => write!(f, "search⟨{}⟩", String::from_utf8_lossy(self.value.as_ref())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;

    fn rid(p: u32, s: u16) -> Rid {
        Rid::new(PageId(p), s)
    }

    #[test]
    fn ordering_value_then_rid() {
        let a = IndexKey::new(b"apple".to_vec(), rid(1, 0));
        let b = IndexKey::new(b"apple".to_vec(), rid(1, 1));
        let c = IndexKey::new(b"banana".to_vec(), rid(0, 0));
        assert!(a < b && b < c);
    }

    #[test]
    fn wire_roundtrip() {
        let k = IndexKey::new(b"key-value".to_vec(), rid(42, 7));
        let enc = k.encode();
        assert_eq!(enc.len(), k.wire_len());
        assert_eq!(IndexKey::decode(&enc).unwrap(), k);
    }

    #[test]
    fn empty_value_is_legal() {
        let k = IndexKey::new(Vec::new(), rid(1, 1));
        assert_eq!(IndexKey::decode(&k.encode()).unwrap(), k);
    }

    #[test]
    fn value_only_search_sorts_before_duplicates() {
        let k = IndexKey::new(b"dup".to_vec(), rid(1, 0));
        let s = SearchKey::value_only(b"dup");
        assert_eq!(s.cmp_key(&k), Ordering::Less);
        assert!(s.value_matches(&k));
    }

    #[test]
    fn full_search_orders_by_rid_among_duplicates() {
        let k0 = IndexKey::new(b"dup".to_vec(), rid(1, 0));
        let k1 = IndexKey::new(b"dup".to_vec(), rid(1, 1));
        let s = SearchKey::full(b"dup", rid(1, 1));
        assert_eq!(s.cmp_key(&k0), Ordering::Greater);
        assert_eq!(s.cmp_key(&k1), Ordering::Equal);
        assert!(!s.value_matches(&k0));
        assert!(s.value_matches(&k1));
    }

    #[test]
    fn search_key_value_mismatch() {
        let k = IndexKey::new(b"xyz".to_vec(), rid(1, 0));
        assert_eq!(SearchKey::value_only(b"abc").cmp_key(&k), Ordering::Less);
        assert_eq!(SearchKey::value_only(b"zzz").cmp_key(&k), Ordering::Greater);
        assert!(!SearchKey::value_only(b"abc").value_matches(&k));
    }

    #[test]
    fn debug_formats_do_not_panic_on_binary() {
        let k = IndexKey::new(vec![0u8, 255u8], rid(1, 0));
        let _ = format!("{k:?}");
    }
}
