//! Slotted-page body layout, shared by heap data pages and index pages.
//!
//! The body (bytes [`PAGE_HEADER_LEN`]`..PAGE_SIZE`) holds a slot array
//! growing upward from the header and a cell area growing downward from the
//! end of the page:
//!
//! ```text
//! [ header | slot0 slot1 ... slotN | ....free.... | cellN ... cell1 cell0 ]
//!           ^PAGE_HEADER_LEN                      ^heap_top          ^PAGE_SIZE
//! ```
//!
//! Each slot is 4 bytes: cell offset (u16) and cell length (u16). A slot with
//! offset 0 is *dead* — offset 0 lies inside the page header, so it can never
//! address a real cell.
//!
//! Two usage disciplines share this layout:
//!
//! * **Index pages** keep cells sorted by key and use the *positional* API
//!   ([`PageBuf::insert_cell_at`] / [`PageBuf::delete_cell_at`]) which shifts
//!   the slot array. Slot numbers are not stable and nothing outside the page
//!   refers to them.
//! * **Heap pages** need stable RIDs, so they use the *allocating* API
//!   ([`PageBuf::alloc_cell`] / [`PageBuf::free_cell`]) which reuses dead
//!   slots and never renumbers live ones.
//!
//! Cell space lost to deletion is reclaimed lazily by compaction when an
//! insert needs contiguous room that exists only as fragments.

use crate::error::{Error, Result};
use crate::ids::SlotNo;
use crate::page::{PageBuf, OFF_HEAP_TOP, OFF_SLOT_COUNT, PAGE_HEADER_LEN, PAGE_SIZE};

/// Bytes of slot-array overhead per cell.
pub const SLOT_LEN: usize = 4;

/// Largest cell that fits on a freshly formatted page.
pub const MAX_CELL_LEN: usize = PAGE_SIZE - PAGE_HEADER_LEN - SLOT_LEN;

impl PageBuf {
    // --- slot bookkeeping ---------------------------------------------------

    /// Number of slots (live + dead) on the page.
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.put_u16(OFF_SLOT_COUNT, n);
    }

    fn heap_top(&self) -> usize {
        self.get_u16(OFF_HEAP_TOP) as usize
    }

    fn set_heap_top(&mut self, v: usize) {
        debug_assert!(v <= PAGE_SIZE);
        self.put_u16(OFF_HEAP_TOP, v as u16);
    }

    fn slot_off(i: u16) -> usize {
        PAGE_HEADER_LEN + i as usize * SLOT_LEN
    }

    fn read_slot(&self, i: u16) -> (usize, usize) {
        let off = Self::slot_off(i);
        (
            self.get_u16(off) as usize,
            self.get_u16(off + 2) as usize,
        )
    }

    fn write_slot(&mut self, i: u16, cell_off: usize, cell_len: usize) {
        let off = Self::slot_off(i);
        self.put_u16(off, cell_off as u16);
        self.put_u16(off + 2, cell_len as u16);
    }

    // --- queries -------------------------------------------------------------

    /// Cell bytes at slot `i`; `None` if the slot is dead or out of range.
    pub fn cell(&self, i: u16) -> Option<&[u8]> {
        if i >= self.slot_count() {
            return None;
        }
        let (off, len) = self.read_slot(i);
        if off == 0 {
            return None;
        }
        Some(&self.as_bytes()[off..off + len])
    }

    /// Number of live (non-dead) slots.
    pub fn live_cells(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&i| self.read_slot(i).0 != 0)
            .count() as u16
    }

    /// True if the page has no live cells.
    pub fn is_body_empty(&self) -> bool {
        self.live_cells() == 0
    }

    /// Contiguous free bytes between the slot array and the cell area.
    pub fn contiguous_free(&self) -> usize {
        self.heap_top() - (PAGE_HEADER_LEN + self.slot_count() as usize * SLOT_LEN)
    }

    /// Total reclaimable free bytes (contiguous + dead-cell fragments). A dead
    /// slot's 4 slot bytes are only reclaimable for positional pages (where
    /// dead slots never exist) so they are not counted here.
    pub fn total_free(&self) -> usize {
        let live_bytes: usize = (0..self.slot_count())
            .map(|i| {
                let (off, len) = self.read_slot(i);
                if off == 0 {
                    0
                } else {
                    len
                }
            })
            .sum();
        PAGE_SIZE
            - PAGE_HEADER_LEN
            - self.slot_count() as usize * SLOT_LEN
            - live_bytes
    }

    /// Would a cell of `len` bytes fit if we also need a new slot entry?
    pub fn fits(&self, len: usize) -> bool {
        self.total_free() >= len + SLOT_LEN
    }

    // --- compaction ------------------------------------------------------------

    /// Rewrite the cell area so all free space is contiguous. Live slot
    /// numbers and cell contents are unchanged.
    pub fn compact(&mut self) {
        let n = self.slot_count();
        // Copy out live cells, then repack from the page end downward.
        let mut cells: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
        for i in 0..n {
            if let Some(c) = self.cell(i) {
                cells.push((i, c.to_vec()));
            }
        }
        let mut top = PAGE_SIZE;
        for (i, data) in cells {
            top -= data.len();
            self.as_bytes_mut()[top..top + data.len()].copy_from_slice(&data);
            let len = data.len();
            self.write_slot(i, top, len);
        }
        self.set_heap_top(top);
    }

    fn make_room(&mut self, len: usize, extra_slots: usize) -> Result<usize> {
        if len > MAX_CELL_LEN {
            return Err(Error::TooLarge {
                len,
                max: MAX_CELL_LEN,
            });
        }
        let slot_bytes = extra_slots * SLOT_LEN;
        if self.contiguous_free() < len + slot_bytes {
            if self.total_free() < len + slot_bytes {
                return Err(Error::TooLarge {
                    len,
                    max: self.total_free().saturating_sub(slot_bytes),
                });
            }
            self.compact();
        }
        let top = self.heap_top() - len;
        Ok(top)
    }

    // --- positional API (index pages) -------------------------------------------

    /// Insert a cell at position `idx`, shifting slots `idx..` up by one.
    /// Fails with [`Error::TooLarge`] if the page cannot hold it.
    pub fn insert_cell_at(&mut self, idx: u16, data: &[u8]) -> Result<()> {
        let n = self.slot_count();
        assert!(idx <= n, "insert_cell_at index {idx} > slot count {n}");
        let top = self.make_room(data.len(), 1)?;
        self.as_bytes_mut()[top..top + data.len()].copy_from_slice(data);
        self.set_heap_top(top);
        // Shift the slot array up by one entry.
        let src = Self::slot_off(idx);
        let end = Self::slot_off(n);
        self.as_bytes_mut().copy_within(src..end, src + SLOT_LEN);
        self.write_slot(idx, top, data.len());
        self.set_slot_count(n + 1);
        Ok(())
    }

    /// Remove the cell at position `idx`, shifting slots `idx+1..` down.
    /// Returns the removed cell's bytes.
    pub fn delete_cell_at(&mut self, idx: u16) -> Result<Vec<u8>> {
        let n = self.slot_count();
        if idx >= n {
            return Err(Error::Internal(format!(
                "delete_cell_at {idx} on page with {n} slots"
            )));
        }
        let data = self
            .cell(idx)
            .ok_or_else(|| Error::Internal(format!("delete_cell_at {idx}: dead slot")))?
            .to_vec();
        let src = Self::slot_off(idx + 1);
        let end = Self::slot_off(n);
        self.as_bytes_mut().copy_within(src..end, src - SLOT_LEN);
        self.set_slot_count(n - 1);
        // The cell bytes become a fragment; reclaimed by the next compaction.
        Ok(data)
    }

    /// Replace the cell at position `idx` with `data` (index parent updates).
    pub fn replace_cell_at(&mut self, idx: u16, data: &[u8]) -> Result<()> {
        let n = self.slot_count();
        if idx >= n {
            return Err(Error::Internal(format!(
                "replace_cell_at {idx} on page with {n} slots"
            )));
        }
        let (old_off, old_len) = self.read_slot(idx);
        if old_off == 0 {
            return Err(Error::Internal(format!("replace_cell_at {idx}: dead slot")));
        }
        if data.len() <= old_len {
            // In-place: keep the old offset, shrink the length.
            let bytes = self.as_bytes_mut();
            bytes[old_off..old_off + data.len()].copy_from_slice(data);
            self.write_slot(idx, old_off, data.len());
            return Ok(());
        }
        // Need a bigger cell: kill the old one first so compaction can reclaim
        // it, then allocate fresh space.
        self.write_slot(idx, 0, 0);
        let top = match self.make_room(data.len(), 0) {
            Ok(t) => t,
            Err(e) => {
                // Restore the original cell on failure.
                self.write_slot(idx, old_off, old_len);
                return Err(e);
            }
        };
        self.as_bytes_mut()[top..top + data.len()].copy_from_slice(data);
        self.set_heap_top(top);
        self.write_slot(idx, top, data.len());
        Ok(())
    }

    // --- allocating API (heap pages) ----------------------------------------------

    /// Store `data` in a free slot (reusing a dead one if available) and
    /// return its stable slot number.
    pub fn alloc_cell(&mut self, data: &[u8]) -> Result<SlotNo> {
        let n = self.slot_count();
        let reuse = (0..n).find(|&i| self.read_slot(i).0 == 0);
        let extra_slots = usize::from(reuse.is_none());
        let top = self.make_room(data.len(), extra_slots)?;
        self.as_bytes_mut()[top..top + data.len()].copy_from_slice(data);
        self.set_heap_top(top);
        let slot = match reuse {
            Some(i) => i,
            None => {
                self.set_slot_count(n + 1);
                n
            }
        };
        self.write_slot(slot, top, data.len());
        Ok(SlotNo(slot))
    }

    /// Store `data` at a *specific* slot number, which must be dead or beyond
    /// the current slot array (recovery redo of a heap insert must reproduce
    /// the exact RID).
    pub fn alloc_cell_at(&mut self, slot: SlotNo, data: &[u8]) -> Result<()> {
        let n = self.slot_count();
        if slot.0 < n && self.read_slot(slot.0).0 != 0 {
            return Err(Error::Internal(format!(
                "alloc_cell_at: slot {} already live",
                slot.0
            )));
        }
        let extra = (slot.0 as usize + 1).saturating_sub(n as usize);
        let top = self.make_room(data.len(), extra)?;
        self.as_bytes_mut()[top..top + data.len()].copy_from_slice(data);
        self.set_heap_top(top);
        if slot.0 >= n {
            // Intervening new slots are born dead.
            for i in n..slot.0 {
                self.write_slot(i, 0, 0);
            }
            self.set_slot_count(slot.0 + 1);
        }
        self.write_slot(slot.0, top, data.len());
        Ok(())
    }

    /// Free a heap cell, leaving a dead slot so other RIDs stay valid.
    /// Returns the old contents.
    pub fn free_cell(&mut self, slot: SlotNo) -> Result<Vec<u8>> {
        let data = self
            .cell(slot.0)
            .ok_or(Error::BadRid {
                rid: crate::ids::Rid {
                    page: self.page_id(),
                    slot,
                },
            })?
            .to_vec();
        self.write_slot(slot.0, 0, 0);
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;
    use crate::page::PageType;

    fn fresh() -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.format(PageId(1), PageType::Heap, 0, 0);
        p
    }

    #[test]
    fn positional_insert_preserves_order() {
        let mut p = fresh();
        p.insert_cell_at(0, b"bb").unwrap();
        p.insert_cell_at(0, b"aa").unwrap();
        p.insert_cell_at(2, b"dd").unwrap();
        p.insert_cell_at(2, b"cc").unwrap();
        let cells: Vec<&[u8]> = (0..p.slot_count()).map(|i| p.cell(i).unwrap()).collect();
        assert_eq!(cells, vec![&b"aa"[..], b"bb", b"cc", b"dd"]);
    }

    #[test]
    fn positional_delete_shifts_down() {
        let mut p = fresh();
        for (i, c) in [b"a", b"b", b"c"].iter().enumerate() {
            p.insert_cell_at(i as u16, *c).unwrap();
        }
        let removed = p.delete_cell_at(1).unwrap();
        assert_eq!(removed, b"b");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.cell(0).unwrap(), b"a");
        assert_eq!(p.cell(1).unwrap(), b"c");
    }

    #[test]
    fn alloc_reuses_dead_slots() {
        let mut p = fresh();
        let s0 = p.alloc_cell(b"one").unwrap();
        let s1 = p.alloc_cell(b"two").unwrap();
        assert_eq!((s0.0, s1.0), (0, 1));
        p.free_cell(s0).unwrap();
        assert!(p.cell(0).is_none());
        assert_eq!(p.cell(1).unwrap(), b"two"); // stable
        let s2 = p.alloc_cell(b"three").unwrap();
        assert_eq!(s2.0, 0); // reused
        assert_eq!(p.cell(0).unwrap(), b"three");
    }

    #[test]
    fn alloc_cell_at_reproduces_exact_slot() {
        let mut p = fresh();
        p.alloc_cell_at(SlotNo(3), b"redo").unwrap();
        assert_eq!(p.slot_count(), 4);
        assert!(p.cell(0).is_none() && p.cell(2).is_none());
        assert_eq!(p.cell(3).unwrap(), b"redo");
        // Occupied slot is rejected.
        assert!(p.alloc_cell_at(SlotNo(3), b"again").is_err());
        // Dead slot is accepted.
        p.alloc_cell_at(SlotNo(1), b"fill").unwrap();
        assert_eq!(p.cell(1).unwrap(), b"fill");
    }

    #[test]
    fn compaction_reclaims_fragments() {
        let mut p = fresh();
        // Fill the page with 100-byte cells.
        let blob = [7u8; 100];
        let mut slots = Vec::new();
        while p.fits(blob.len()) {
            slots.push(p.alloc_cell(&blob).unwrap());
        }
        assert!(p.alloc_cell(&[0u8; 200]).is_err());
        // Free two non-adjacent cells: 200 bytes total, fragmented.
        p.free_cell(slots[0]).unwrap();
        p.free_cell(slots[2]).unwrap();
        // A 150-byte insert only fits after compaction, which make_room does
        // automatically.
        let s = p.alloc_cell(&[9u8; 150]).unwrap();
        assert_eq!(p.cell(s.0).unwrap(), &[9u8; 150][..]);
        // Untouched neighbours survive compaction.
        assert_eq!(p.cell(slots[1].0).unwrap(), &blob[..]);
    }

    #[test]
    fn replace_cell_grow_and_shrink() {
        let mut p = fresh();
        p.insert_cell_at(0, b"aaaa").unwrap();
        p.insert_cell_at(1, b"bbbb").unwrap();
        p.replace_cell_at(0, b"xx").unwrap(); // shrink in place
        assert_eq!(p.cell(0).unwrap(), b"xx");
        p.replace_cell_at(0, b"yyyyyyyy").unwrap(); // grow
        assert_eq!(p.cell(0).unwrap(), b"yyyyyyyy");
        assert_eq!(p.cell(1).unwrap(), b"bbbb");
    }

    #[test]
    fn replace_failure_restores_original() {
        let mut p = fresh();
        p.insert_cell_at(0, b"small").unwrap();
        let huge = vec![1u8; PAGE_SIZE];
        assert!(p.replace_cell_at(0, &huge).is_err());
        assert_eq!(p.cell(0).unwrap(), b"small");
    }

    #[test]
    fn too_large_cell_is_rejected_upfront() {
        let mut p = fresh();
        assert!(matches!(
            p.insert_cell_at(0, &vec![0u8; MAX_CELL_LEN + 1]),
            Err(Error::TooLarge { .. })
        ));
    }

    #[test]
    fn free_counters_are_consistent() {
        let mut p = fresh();
        let before = p.total_free();
        assert_eq!(before, p.contiguous_free());
        p.insert_cell_at(0, &[0u8; 64]).unwrap();
        assert_eq!(p.total_free(), before - 64 - SLOT_LEN);
        p.delete_cell_at(0).unwrap();
        assert_eq!(p.total_free(), before);
    }

    #[test]
    fn emptiness_tracks_live_cells_only() {
        let mut p = fresh();
        assert!(p.is_body_empty());
        let s = p.alloc_cell(b"x").unwrap();
        assert!(!p.is_body_empty());
        p.free_cell(s).unwrap();
        assert!(p.is_body_empty()); // dead slot remains but page is "empty"
        assert_eq!(p.slot_count(), 1);
    }

    #[test]
    fn fill_page_exactly_to_capacity() {
        let mut p = fresh();
        let free = p.total_free();
        // One cell consuming every available byte.
        let cell = vec![3u8; free - SLOT_LEN];
        p.insert_cell_at(0, &cell).unwrap();
        assert_eq!(p.total_free(), 0);
        assert!(!p.fits(1));
    }
}
