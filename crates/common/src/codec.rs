//! Little-endian byte codecs with explicit framing.
//!
//! The log and page formats are hand-serialized (see DESIGN.md §6): recovery
//! must cope with a log whose tail was torn by a crash, so every frame is
//! length-prefixed and checksummed at the layer above, and decoding is
//! explicit about how many bytes it consumed.

use crate::error::{Error, Result};
use crate::ids::{IndexId, Lsn, PageId, Rid, TableId, TxnId};

/// Append-only byte writer used to build log-record and page payloads.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn lsn(&mut self, v: Lsn) -> &mut Self {
        self.u64(v.0)
    }

    pub fn page_id(&mut self, v: PageId) -> &mut Self {
        self.u32(v.0)
    }

    pub fn txn_id(&mut self, v: TxnId) -> &mut Self {
        self.u64(v.0)
    }

    pub fn index_id(&mut self, v: IndexId) -> &mut Self {
        self.u32(v.0)
    }

    pub fn table_id(&mut self, v: TableId) -> &mut Self {
        self.u32(v.0)
    }

    pub fn rid(&mut self, v: Rid) -> &mut Self {
        v.encode_into(&mut self.buf);
        self
    }

    /// Length-prefixed (u16) byte string. Panics if longer than u16::MAX,
    /// which page-capacity checks make impossible for legitimate payloads.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        assert!(v.len() <= u16::MAX as usize, "bytes field too long");
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v);
        self
    }

    /// Raw bytes with no prefix (caller knows the length from elsewhere).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }
}

/// Cursor-style reader matching [`Writer`]. Every method returns
/// `Error::CorruptLog`-shaped failures via [`Error::Internal`]-free paths:
/// the caller wraps short reads in its own context.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Internal(format!(
                "decode underrun: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Bounds-checked fixed-size read: the length check lives in [`take`], so
    /// the array conversion cannot fail and no `unwrap` is needed.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_n()?))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_n()?))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_n()?))
    }

    pub fn lsn(&mut self) -> Result<Lsn> {
        Ok(Lsn(self.u64()?))
    }

    pub fn page_id(&mut self) -> Result<PageId> {
        Ok(PageId(self.u32()?))
    }

    pub fn txn_id(&mut self) -> Result<TxnId> {
        Ok(TxnId(self.u64()?))
    }

    pub fn index_id(&mut self) -> Result<IndexId> {
        Ok(IndexId(self.u32()?))
    }

    pub fn table_id(&mut self) -> Result<TableId> {
        Ok(TableId(self.u32()?))
    }

    pub fn rid(&mut self) -> Result<Rid> {
        let s = self.take(Rid::WIRE_LEN)?;
        Rid::decode(s).ok_or_else(|| Error::Internal("rid decode".into()))
    }

    /// Length-prefixed byte string written by [`Writer::bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u16()? as usize;
        self.take(len)
    }

    /// All remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

/// Copy `N` little-endian bytes at `off` into an array. Indexing panics on an
/// out-of-range offset exactly like a slice would — the point is that the
/// array conversion itself is infallible, so callers reading fixed header
/// offsets need no `unwrap`/`expect` on the parse.
fn le_at<const N: usize>(b: &[u8], off: usize) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(&b[off..off + N]);
    a
}

/// `u16` at a fixed offset (page headers, frame headers).
pub fn u16_at(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(le_at(b, off))
}

/// `u32` at a fixed offset.
pub fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(le_at(b, off))
}

/// `u64` at a fixed offset.
pub fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(le_at(b, off))
}

/// CRC-32 (Castagnoli polynomial, bitwise) used to frame log records so that
/// restart can distinguish "end of log" from a torn tail. Slow-but-simple is
/// fine: it is only on the log append/scan path, not the page path.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78; // reflected CRC-32C
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotNo;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .lsn(Lsn(42))
            .page_id(PageId(9))
            .txn_id(TxnId(3))
            .index_id(IndexId(1))
            .table_id(TableId(2))
            .rid(Rid::new(PageId(5), 6))
            .bytes(b"hello")
            .raw(b"tail");
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.lsn().unwrap(), Lsn(42));
        assert_eq!(r.page_id().unwrap(), PageId(9));
        assert_eq!(r.txn_id().unwrap(), TxnId(3));
        assert_eq!(r.index_id().unwrap(), IndexId(1));
        assert_eq!(r.table_id().unwrap(), TableId(2));
        let rid = r.rid().unwrap();
        assert_eq!(rid.page, PageId(5));
        assert_eq!(rid.slot, SlotNo(6));
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.rest(), b"tail");
        assert!(r.is_empty());
    }

    #[test]
    fn underrun_is_error_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn bytes_underrun_in_body_is_error() {
        // Prefix claims 10 bytes, only 2 present.
        let mut w = Writer::new();
        w.u16(10).raw(&[1, 2]);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = b"some log record payload".to_vec();
        let c1 = crc32c(&data);
        data[3] ^= 0x40;
        assert_ne!(c1, crc32c(&data));
    }
}
