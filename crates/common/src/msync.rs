//! Model-aware atomics: drop-in wrappers over `std::sync::atomic` whose
//! every operation is a schedule point for the deterministic model checker
//! (`crates/model`).
//!
//! The engine's lock-free protocol words — the buffer pool's per-frame pin
//! count and owner word, the WAL's durable-LSN mirror — are the state whose
//! interleavings the checker must control, so those fields use these
//! wrappers. Plain relaxed statistics counters deliberately do **not**:
//! every facade operation is a scheduling decision, and instrumenting
//! no-protocol counters would multiply the schedule space without adding
//! any checkable behavior.
//!
//! On ordinary threads (no model run) each operation costs one
//! thread-local flag read on top of the underlying atomic — the same
//! disarmed-fast-path design as `crash_point!`.

use parking_lot::sched::{self, OpKind};
use std::sync::atomic::Ordering;

macro_rules! model_atomic {
    ($name:ident, $inner:ty, $prim:ty) => {
        /// Model-checkable atomic; see the module docs.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: <$inner>::new(v),
                }
            }

            #[inline]
            fn point(&self, kind: OpKind) {
                sched::acquire_point(kind, self as *const Self as usize);
            }

            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                self.point(OpKind::AtomicLoad);
                self.inner.load(order)
            }

            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                self.point(OpKind::AtomicStore);
                self.inner.store(v, order)
            }

            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.point(OpKind::AtomicRmw);
                self.inner.swap(v, order)
            }

            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.point(OpKind::AtomicRmw);
                self.inner.fetch_add(v, order)
            }

            #[inline]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.point(OpKind::AtomicRmw);
                self.inner.fetch_sub(v, order)
            }

            #[inline]
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.point(OpKind::AtomicRmw);
                self.inner.fetch_max(v, order)
            }

            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.point(OpKind::AtomicRmw);
                self.inner.compare_exchange(current, new, success, failure)
            }

            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            #[inline]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

/// Explicit schedule point; see [`yield_point!`](crate::yield_point).
/// `site` (a `file:line` literal) doubles as the point's identity.
#[inline]
pub fn yield_now(site: &'static str) {
    sched::acquire_point(OpKind::Yield, site.as_ptr() as usize);
}

/// Insert an explicit schedule point into model-checked code: under a model
/// run the controller may preempt here; everywhere else it is one
/// thread-local flag read. Use it to expose an interleaving window the
/// sync-op instrumentation alone would not (e.g. between two plain reads a
/// harness wants to split).
#[macro_export]
macro_rules! yield_point {
    () => {
        $crate::msync::yield_now(concat!(file!(), ":", line!()))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_atomics_behave_like_std() {
        let a = AtomicU32::new(5);
        assert_eq!(a.load(Ordering::Acquire), 5);
        a.store(7, Ordering::Release);
        assert_eq!(a.fetch_add(1, Ordering::AcqRel), 7);
        assert_eq!(a.fetch_sub(2, Ordering::AcqRel), 8);
        assert_eq!(a.swap(42, Ordering::AcqRel), 6);
        assert_eq!(
            a.compare_exchange(42, 43, Ordering::AcqRel, Ordering::Acquire),
            Ok(42)
        );
        let b = AtomicU64::new(1);
        assert_eq!(b.fetch_max(9, Ordering::AcqRel), 1);
        assert_eq!(b.into_inner(), 9);
    }

    #[test]
    fn yield_point_is_a_noop_when_disarmed() {
        yield_point!();
    }
}
