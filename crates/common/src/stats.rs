//! Instrumentation counters.
//!
//! The paper's efficiency measures (§1) are "the number of locks acquired,
//! the number of pages accessed during redo, undo, and normal operations,
//! the number of passes of the log made during media recovery, and the number
//! of required synchronous data base page and log I/Os". Every subsystem
//! increments these shared counters so the benchmark harness can print
//! exactly those comparisons for ARIES/IM vs its baselines.
//!
//! Counters are plain relaxed atomics: they order nothing and must never be
//! used for synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! counters {
    ($( $(#[$doc:meta])* $name:ident ),* $(,)?) => {
        /// Live counter block, shared via [`StatsHandle`].
        #[derive(Default)]
        pub struct Stats {
            $( $(#[$doc])* pub $name: AtomicU64, )*
        }

        /// A point-in-time copy of every counter.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( pub $name: u64, )*
        }

        impl Stats {
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    // ordering: statistics counter; snapshots are advisory, no payload is published through them
                    $( $name: self.$name.load(Ordering::Relaxed), )*
                }
            }

            pub fn reset(&self) {
                // ordering: advisory counter reset; racing bumps may survive and that is fine
                $( self.$name.store(0, Ordering::Relaxed); )*
            }
        }

        impl StatsSnapshot {
            /// Per-counter difference `self - earlier` (saturating).
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.saturating_sub(earlier.$name), )*
                }
            }

            /// (name, value) pairs for table printers.
            pub fn entries(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )* ]
            }
        }
    };
}

counters! {
    // --- lock manager ----------------------------------------------------
    /// Lock requests granted (any name, any mode, any duration).
    locks_acquired,
    /// Lock requests that blocked (unconditional wait actually occurred).
    lock_waits,
    /// Conditional lock requests denied (the §2.2 release-latches path).
    lock_conditional_denials,
    /// Locks acquired on record RIDs (data-only locking).
    locks_record,
    /// Locks acquired on index key values (index-specific / KVL locking).
    locks_keyvalue,
    /// Locks acquired on the per-index EOF name.
    locks_eof,
    /// Instant-duration lock acquisitions.
    locks_instant,
    /// Commit-duration lock acquisitions.
    locks_commit,
    /// Next-key locks acquired by index insert/delete/fetch protocols.
    locks_next_key,
    /// Deadlocks detected (victims chosen).
    deadlocks,

    // --- latches ----------------------------------------------------------
    /// Page latch acquisitions (S or X).
    latches_page,
    /// Page latch acquisitions that had to wait.
    latch_page_waits,
    /// Tree latch acquisitions (S, X or instant).
    latches_tree,
    /// Tree latch acquisitions that had to wait.
    latch_tree_waits,
    /// Instant-duration tree latch acquisitions (POSC establishment).
    latches_tree_instant,

    // --- buffer pool / I/O --------------------------------------------------
    /// Page fixes (buffer pool lookups).
    page_fixes,
    /// Pages read from disk (misses).
    page_reads,
    /// Pages written to disk.
    page_writes,
    /// Synchronous log flushes (forced writes).
    log_forces,
    /// Log records appended.
    log_records,
    /// Log bytes appended.
    log_bytes,

    // --- index operations ----------------------------------------------------
    /// Completed tree traversals (root-to-leaf descents).
    tree_traversals,
    /// Traversals restarted because of an unfinished SMO (ambiguity path).
    traversal_restarts,
    /// Page split SMOs performed.
    smo_splits,
    /// Page deletion SMOs performed.
    smo_page_deletes,
    /// Key inserts performed.
    index_inserts,
    /// Key deletes performed.
    index_deletes,
    /// Fetch / fetch-next calls served.
    index_fetches,

    // --- recovery ---------------------------------------------------------------
    /// Log records examined during the redo pass.
    redo_records_seen,
    /// Updates actually redone (page_lsn < record LSN).
    redo_applied,
    /// Tree traversals performed during the redo pass. The paper requires
    /// this to be zero: redo is always page-oriented.
    redo_traversals,
    /// Undo actions performed page-oriented (no traversal).
    undo_page_oriented,
    /// Undo actions that required a logical undo (retraversal from root).
    undo_logical,
    /// Pages read from disk during restart recovery.
    restart_page_reads,
    /// Log passes performed during media recovery.
    media_recovery_passes,
}

/// Shared handle to a counter block.
pub type StatsHandle = Arc<Stats>;

/// Convenience constructor.
pub fn new_stats() -> StatsHandle {
    Arc::new(Stats::default())
}

impl Stats {
    /// Relaxed increment; use through the named counter field:
    /// `stats.locks_acquired.bump()` reads better via the extension trait.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed); // ordering: advisory counter; nothing synchronizes-with it
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed); // ordering: advisory counter; nothing synchronizes-with it
    }
}

/// Extension so call sites read `stats.page_fixes.bump()`.
pub trait Bump {
    fn bump(&self);
    fn add(&self, n: u64);
    fn get(&self) -> u64;
}

impl Bump for AtomicU64 {
    #[inline]
    fn bump(&self) {
        self.fetch_add(1, Ordering::Relaxed); // ordering: advisory counter; nothing synchronizes-with it
    }

    #[inline]
    fn add(&self, n: u64) {
        self.fetch_add(n, Ordering::Relaxed); // ordering: advisory counter; nothing synchronizes-with it
    }

    #[inline]
    fn get(&self) -> u64 {
        self.load(Ordering::Relaxed) // ordering: advisory read of a counter; staleness is acceptable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = new_stats();
        s.locks_acquired.bump();
        s.locks_acquired.bump();
        let a = s.snapshot();
        s.locks_acquired.bump();
        s.page_fixes.add(5);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.locks_acquired, 1);
        assert_eq!(d.page_fixes, 5);
        assert_eq!(d.lock_waits, 0);
    }

    #[test]
    fn reset_zeroes_all() {
        let s = new_stats();
        s.smo_splits.add(3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn entries_lists_every_counter_once() {
        let snap = new_stats().snapshot();
        let names: Vec<_> = snap.entries().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert!(names.contains(&"redo_traversals"));
        assert!(names.contains(&"locks_next_key"));
    }

    #[test]
    fn concurrent_bumps_do_not_lose_counts() {
        let s = new_stats();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.latches_page.bump();
                    }
                });
            }
        });
        assert_eq!(s.latches_page.get(), 4000);
    }
}
