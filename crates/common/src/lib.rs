//! Shared primitives for the ARIES/IM reproduction.
//!
//! This crate holds everything that more than one subsystem needs and that
//! carries no policy of its own: strongly-typed identifiers ([`ids`]),
//! error types ([`error`]), little-endian byte codecs with explicit framing
//! ([`codec`]), the raw fixed-size page and its common header ([`page`]),
//! the slotted-page body layout shared by heap and index pages ([`slotted`]),
//! index key representation and ordering ([`key`]), and the instrumentation
//! counters used to regenerate the paper's efficiency measures ([`stats`]).
//!
//! Nothing here knows about transactions, logging, or B+-trees.

pub mod codec;
pub mod error;
pub mod ids;
pub mod key;
pub mod msync;
pub mod page;
pub mod slotted;
pub mod stats;
pub mod tmp;

pub use error::{Error, Result};
pub use ids::{IndexId, Lsn, PageId, Rid, SlotNo, TableId, TxnId};
pub use key::IndexKey;
pub use page::{PageBuf, PageType, PAGE_SIZE};
