//! Self-cleaning temporary directories for tests and benches.
//!
//! A tiny substitute for the `tempfile` crate (kept out of the dependency
//! set; see DESIGN.md §6). Directories are created under the OS temp dir
//! with a process-unique, monotonic name and removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory removed (best-effort) when the value is dropped.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory, e.g. `/tmp/ariesim-12345-7-mylabel`.
    pub fn new(label: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed); // ordering: unique-id counter; only uniqueness matters, not order
        let path = std::env::temp_dir().join(format!(
            "ariesim-{}-{}-{}",
            std::process::id(),
            n,
            label
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept;
        {
            let d = TempDir::new("t");
            kept = d.path().to_path_buf();
            std::fs::write(d.file("x"), b"hi").unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("same");
        let b = TempDir::new("same");
        assert_ne!(a.path(), b.path());
    }
}
