//! Raw fixed-size pages and the common page header.
//!
//! Every page in the database file — header, space map, heap, index — is a
//! [`PAGE_SIZE`]-byte buffer beginning with the same 32-byte header. The
//! fields ARIES/IM relies on live here:
//!
//! * `page_lsn` — LSN of the log record describing the most recent update to
//!   the page (ARIES §1.2: comparing it with a log record's LSN decides redo
//!   applicability unambiguously);
//! * `SM_Bit` flag — set on every page affected by an in-progress structure
//!   modification operation (paper §2.1);
//! * `Delete_Bit` flag — set by a key delete on a leaf, consulted by inserts
//!   that would consume the freed space (paper §3, Figure 11).
//!
//! Layout (little-endian):
//!
//! ```text
//! off  len  field
//!   0    8  page_lsn
//!   8    4  page_id (self-identification; torn-write detection)
//!  12    1  page_type
//!  13    1  flags (bit0 = SM_Bit, bit1 = Delete_Bit)
//!  14    2  level (index pages: 0 = leaf; heap pages: unused)
//!  16    4  prev page id (leaf chain / heap file chain)
//!  20    4  next page id (leaf chain / heap file chain)
//!  24    4  owner id (IndexId or TableId)
//!  28    2  slot_count        (managed by slotted layer)
//!  30    2  heap_top          (managed by slotted layer)
//!  32       body
//! ```

use crate::error::{Error, Result};
use crate::ids::{Lsn, PageId};

/// Size of every database page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Length of the common page header; the slotted body starts here.
pub const PAGE_HEADER_LEN: usize = 32;

const OFF_LSN: usize = 0;
const OFF_PAGE_ID: usize = 8;
const OFF_TYPE: usize = 12;
const OFF_FLAGS: usize = 13;
const OFF_LEVEL: usize = 14;
const OFF_PREV: usize = 16;
const OFF_NEXT: usize = 20;
const OFF_OWNER: usize = 24;
pub(crate) const OFF_SLOT_COUNT: usize = 28;
pub(crate) const OFF_HEAP_TOP: usize = 30;

const FLAG_SM_BIT: u8 = 0x01;
const FLAG_DELETE_BIT: u8 = 0x02;

/// Discriminates what a page is used for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageType {
    /// Page 0: database header (catalog roots, page count).
    Header = 1,
    /// Allocation space map.
    SpaceMap = 2,
    /// Heap data page holding records.
    Heap = 3,
    /// B+-tree leaf: keys are (key-value, RID) pairs (paper §1.1).
    IndexLeaf = 4,
    /// B+-tree nonleaf: child pointers and high keys (paper §1.1).
    IndexNonLeaf = 5,
    /// Deallocated page on the free list.
    Free = 6,
}

impl PageType {
    pub fn from_u8(v: u8) -> Option<PageType> {
        Some(match v {
            1 => PageType::Header,
            2 => PageType::SpaceMap,
            3 => PageType::Heap,
            4 => PageType::IndexLeaf,
            5 => PageType::IndexNonLeaf,
            6 => PageType::Free,
            _ => return None,
        })
    }

    pub fn is_index(self) -> bool {
        matches!(self, PageType::IndexLeaf | PageType::IndexNonLeaf)
    }
}

/// An owned page image. Heap-allocated; the buffer pool holds one per frame.
pub struct PageBuf {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        PageBuf {
            bytes: Box::new(*self.bytes),
        }
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        PageBuf::zeroed()
    }
}

impl PageBuf {
    /// All-zero page (page_lsn NULL, type byte 0 = invalid until formatted).
    pub fn zeroed() -> PageBuf {
        PageBuf {
            bytes: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Build from raw bytes read off disk.
    pub fn from_bytes(src: &[u8]) -> Result<PageBuf> {
        if src.len() != PAGE_SIZE {
            return Err(Error::Internal(format!(
                "page image of {} bytes, expected {PAGE_SIZE}",
                src.len()
            )));
        }
        let mut p = PageBuf::zeroed();
        p.bytes.copy_from_slice(src);
        Ok(p)
    }

    /// Format as a fresh page of the given type, clearing the body.
    pub fn format(&mut self, id: PageId, ty: PageType, owner: u32, level: u16) {
        self.bytes.fill(0);
        self.set_page_id(id);
        self.set_page_type(ty);
        self.set_owner(owner);
        self.set_level(level);
        self.set_prev(PageId::NULL);
        self.set_next(PageId::NULL);
        // Slotted body bookkeeping: empty slot array, heap grows down from end.
        // PAGE_SIZE (8192) fits in u16.
        self.put_u16(OFF_SLOT_COUNT, 0);
        self.put_u16(OFF_HEAP_TOP, PAGE_SIZE as u16);
    }

    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    // --- primitive field access -------------------------------------------

    #[inline]
    pub(crate) fn get_u16(&self, off: usize) -> u16 {
        crate::codec::u16_at(&self.bytes[..], off)
    }

    #[inline]
    pub(crate) fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn get_u32(&self, off: usize) -> u32 {
        crate::codec::u32_at(&self.bytes[..], off)
    }

    #[inline]
    fn put_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    // --- header fields -----------------------------------------------------

    pub fn page_lsn(&self) -> Lsn {
        Lsn(crate::codec::u64_at(&self.bytes[..], OFF_LSN))
    }

    pub fn set_page_lsn(&mut self, lsn: Lsn) {
        self.bytes[OFF_LSN..OFF_LSN + 8].copy_from_slice(&lsn.0.to_le_bytes());
    }

    pub fn page_id(&self) -> PageId {
        PageId(self.get_u32(OFF_PAGE_ID))
    }

    pub fn set_page_id(&mut self, id: PageId) {
        self.put_u32(OFF_PAGE_ID, id.0);
    }

    pub fn page_type(&self) -> Result<PageType> {
        PageType::from_u8(self.bytes[OFF_TYPE]).ok_or_else(|| Error::CorruptPage {
            page: self.page_id(),
            reason: format!("invalid page type byte {}", self.bytes[OFF_TYPE]),
        })
    }

    pub fn set_page_type(&mut self, ty: PageType) {
        self.bytes[OFF_TYPE] = ty as u8;
    }

    /// The SM_Bit: '1' while the page participates in a not-yet-completed SMO.
    pub fn sm_bit(&self) -> bool {
        self.bytes[OFF_FLAGS] & FLAG_SM_BIT != 0
    }

    pub fn set_sm_bit(&mut self, v: bool) {
        if v {
            self.bytes[OFF_FLAGS] |= FLAG_SM_BIT;
        } else {
            self.bytes[OFF_FLAGS] &= !FLAG_SM_BIT;
        }
    }

    /// The Delete_Bit: '1' after a key delete freed space on this leaf
    /// (paper §3, Figure 11 precaution).
    pub fn delete_bit(&self) -> bool {
        self.bytes[OFF_FLAGS] & FLAG_DELETE_BIT != 0
    }

    pub fn set_delete_bit(&mut self, v: bool) {
        if v {
            self.bytes[OFF_FLAGS] |= FLAG_DELETE_BIT;
        } else {
            self.bytes[OFF_FLAGS] &= !FLAG_DELETE_BIT;
        }
    }

    /// Index level: 0 for leaves, parents are child level + 1.
    pub fn level(&self) -> u16 {
        self.get_u16(OFF_LEVEL)
    }

    pub fn set_level(&mut self, v: u16) {
        self.put_u16(OFF_LEVEL, v);
    }

    pub fn prev(&self) -> PageId {
        PageId(self.get_u32(OFF_PREV))
    }

    pub fn set_prev(&mut self, id: PageId) {
        self.put_u32(OFF_PREV, id.0);
    }

    pub fn next(&self) -> PageId {
        PageId(self.get_u32(OFF_NEXT))
    }

    pub fn set_next(&mut self, id: PageId) {
        self.put_u32(OFF_NEXT, id.0);
    }

    /// Owning object (IndexId.0 or TableId.0 depending on page type).
    pub fn owner(&self) -> u32 {
        self.get_u32(OFF_OWNER)
    }

    pub fn set_owner(&mut self, v: u32) {
        self.put_u32(OFF_OWNER, v);
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageBuf")
            .field("id", &self.page_id())
            .field("type", &PageType::from_u8(self.bytes[OFF_TYPE]))
            .field("lsn", &self.page_lsn())
            .field("sm_bit", &self.sm_bit())
            .field("delete_bit", &self.delete_bit())
            .field("level", &self.level())
            .field("prev", &self.prev())
            .field("next", &self.next())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_resets_everything() {
        let mut p = PageBuf::zeroed();
        p.set_page_lsn(Lsn(99));
        p.set_sm_bit(true);
        p.format(PageId(7), PageType::IndexLeaf, 3, 0);
        assert_eq!(p.page_id(), PageId(7));
        assert_eq!(p.page_type().unwrap(), PageType::IndexLeaf);
        assert_eq!(p.owner(), 3);
        assert_eq!(p.page_lsn(), Lsn::NULL);
        assert!(!p.sm_bit());
        assert!(!p.delete_bit());
        assert!(p.prev().is_null() && p.next().is_null());
    }

    #[test]
    fn flags_are_independent() {
        let mut p = PageBuf::zeroed();
        p.format(PageId(1), PageType::IndexLeaf, 0, 0);
        p.set_sm_bit(true);
        p.set_delete_bit(true);
        assert!(p.sm_bit() && p.delete_bit());
        p.set_sm_bit(false);
        assert!(!p.sm_bit() && p.delete_bit());
        p.set_delete_bit(false);
        assert!(!p.sm_bit() && !p.delete_bit());
    }

    #[test]
    fn bad_type_byte_is_corrupt_page() {
        let p = PageBuf::zeroed(); // type byte 0
        assert!(matches!(p.page_type(), Err(Error::CorruptPage { .. })));
    }

    #[test]
    fn from_bytes_rejects_wrong_length() {
        assert!(PageBuf::from_bytes(&[0u8; 100]).is_err());
        assert!(PageBuf::from_bytes(&[0u8; PAGE_SIZE]).is_ok());
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = PageBuf::zeroed();
        p.format(PageId(5), PageType::Heap, 2, 0);
        p.set_page_lsn(Lsn(1234));
        p.set_next(PageId(6));
        let q = PageBuf::from_bytes(p.as_bytes().as_slice()).unwrap();
        assert_eq!(q.page_id(), PageId(5));
        assert_eq!(q.page_lsn(), Lsn(1234));
        assert_eq!(q.next(), PageId(6));
    }

    #[test]
    fn page_type_is_index() {
        assert!(PageType::IndexLeaf.is_index());
        assert!(PageType::IndexNonLeaf.is_index());
        assert!(!PageType::Heap.is_index());
    }
}
