//! Property tests: the slotted page against simple models.
//!
//! The positional API (index pages) is modelled by a `Vec<Vec<u8>>`; the
//! allocating API (heap pages) by a `Vec<Option<Vec<u8>>>` with stable
//! indices. Any sequence of operations that the model accepts must leave the
//! page with identical contents, and space accounting must never lie.

use ariesim_common::ids::{PageId, SlotNo};
use ariesim_common::page::{PageBuf, PageType};
use ariesim_common::slotted::SLOT_LEN;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum PosOp {
    Insert(u16, Vec<u8>),
    Delete(u16),
    Replace(u16, Vec<u8>),
}

fn pos_op() -> impl Strategy<Value = PosOp> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..120))
            .prop_map(|(i, d)| PosOp::Insert(i, d)),
        any::<u16>().prop_map(PosOp::Delete),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(i, d)| PosOp::Replace(i, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn positional_page_matches_vec_model(ops in proptest::collection::vec(pos_op(), 1..120)) {
        let mut page = PageBuf::zeroed();
        page.format(PageId(1), PageType::IndexLeaf, 1, 0);
        let mut model: Vec<Vec<u8>> = Vec::new();

        for op in ops {
            match op {
                PosOp::Insert(i, data) => {
                    let idx = (i as usize % (model.len() + 1)) as u16;
                    match page.insert_cell_at(idx, &data) {
                        Ok(()) => model.insert(idx as usize, data),
                        // Page full: the model must indeed not have room.
                        Err(_) => {
                            let used: usize = model.iter().map(|c| c.len() + SLOT_LEN).sum();
                            prop_assert!(
                                used + data.len() + SLOT_LEN > 8192 - 32,
                                "spurious full: used={used} insert={}",
                                data.len()
                            );
                        }
                    }
                }
                PosOp::Delete(i) => {
                    if model.is_empty() {
                        prop_assert!(page.delete_cell_at(0).is_err() || page.slot_count() == 0);
                        continue;
                    }
                    let idx = (i as usize % model.len()) as u16;
                    let removed = page.delete_cell_at(idx).unwrap();
                    prop_assert_eq!(&removed, &model.remove(idx as usize));
                }
                PosOp::Replace(i, data) => {
                    if model.is_empty() {
                        continue;
                    }
                    let idx = (i as usize % model.len()) as u16;
                    if page.replace_cell_at(idx, &data).is_ok() {
                        model[idx as usize] = data;
                    }
                }
            }
            // Full-state comparison after every op.
            prop_assert_eq!(page.slot_count() as usize, model.len());
            for (j, want) in model.iter().enumerate() {
                prop_assert_eq!(page.cell(j as u16).unwrap(), &want[..]);
            }
        }
    }

    #[test]
    fn heap_page_rids_are_stable(ops in proptest::collection::vec(
        (any::<bool>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 1..100)),
        1..100,
    )) {
        let mut page = PageBuf::zeroed();
        page.format(PageId(2), PageType::Heap, 1, 0);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();

        for (is_alloc, pick, data) in ops {
            if is_alloc {
                if let Ok(slot) = page.alloc_cell(&data) {
                    let s = slot.0 as usize;
                    if s == model.len() {
                        model.push(Some(data));
                    } else {
                        prop_assert!(model[s].is_none(), "alloc into live slot");
                        model[s] = Some(data);
                    }
                }
            } else {
                let live: Vec<usize> = model
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.is_some().then_some(i))
                    .collect();
                if live.is_empty() {
                    continue;
                }
                let idx = live[pick as usize % live.len()];
                let freed = page.free_cell(SlotNo(idx as u16)).unwrap();
                prop_assert_eq!(Some(freed), model[idx].take());
            }
            // Every live RID still reads back its exact contents.
            for (i, want) in model.iter().enumerate() {
                match want {
                    Some(w) => prop_assert_eq!(page.cell(i as u16).unwrap(), &w[..]),
                    None => prop_assert!(page.cell(i as u16).is_none()),
                }
            }
        }
    }

    #[test]
    fn compaction_is_invisible(cells in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..80), 2..40,
    ), kill in proptest::collection::vec(any::<u16>(), 1..10)) {
        let mut page = PageBuf::zeroed();
        page.format(PageId(3), PageType::Heap, 1, 0);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for c in &cells {
            if page.alloc_cell(c).is_ok() {
                model.push(Some(c.clone()));
            }
        }
        for k in kill {
            let idx = k as usize % model.len();
            if model[idx].is_some() {
                page.free_cell(SlotNo(idx as u16)).unwrap();
                model[idx] = None;
            }
        }
        page.compact();
        for (i, want) in model.iter().enumerate() {
            match want {
                Some(w) => prop_assert_eq!(page.cell(i as u16).unwrap(), &w[..]),
                None => prop_assert!(page.cell(i as u16).is_none()),
            }
        }
        // After compaction all free space is contiguous.
        prop_assert_eq!(page.contiguous_free(), page.total_free());
    }
}
