//! ARIES/KVL — the key-value-locking baseline (Mohan, VLDB 1990), the method
//! the ARIES/IM paper improves on.
//!
//! KVL locks whole key **values**: every duplicate of a value in a nonunique
//! index shares one lock name, so a transaction touching any instance of a
//! value blocks every other transaction touching *any* instance. The
//! ARIES/IM paper's critique (§1):
//!
//! > "even in ARIES/KVL locks are acquired on key values, rather than on
//! > individual keys. The latter makes a significant difference in the case
//! > of nonunique indexes. Furthermore, the number of locks acquired for
//! > even single record operations like record insert or delete is very
//! > high."
//!
//! The mode/duration table implemented (via
//! [`LockProtocol::KeyValue`] inside `ariesim-btree`, so both protocols run
//! on the identical tree substrate — only locking differs):
//!
//! | operation              | current key value      | next key value      |
//! |------------------------|------------------------|---------------------|
//! | fetch / fetch next     | S commit               | S commit (not found)|
//! | insert, value exists   | IX commit              | —                   |
//! | insert, new value      | IX commit              | X instant           |
//! | delete, duplicates left| X commit               | —                   |
//! | delete, last instance  | X commit               | X commit            |
//!
//! Because the index takes its own value locks *in addition to* the record
//! manager's RID locks, single-record operations cost more lock calls than
//! ARIES/IM data-only locking — experiment E8 measures exactly this, and
//! experiment E9 measures the lost concurrency on duplicate-heavy workloads.

use ariesim_btree::{BTree, LockProtocol};
use ariesim_common::stats::StatsHandle;
use ariesim_common::{IndexId, PageId};
use ariesim_lock::LockManager;
use ariesim_storage::BufferPool;
use ariesim_wal::LogManager;
use std::sync::Arc;

/// Open an index handle that follows the ARIES/KVL protocol.
pub fn open_kvl_tree(
    index_id: IndexId,
    root: PageId,
    unique: bool,
    pool: Arc<BufferPool>,
    locks: Arc<LockManager>,
    log: Arc<LogManager>,
    stats: StatsHandle,
) -> Arc<BTree> {
    BTree::new(
        index_id,
        root,
        unique,
        LockProtocol::KeyValue,
        pool,
        locks,
        log,
        stats,
    )
}

/// The protocol marker, re-exported for configuration code.
pub const KVL: LockProtocol = LockProtocol::KeyValue;
