//! Conformance tests for the ARIES/KVL baseline: the lock table from the
//! crate docs, and the concurrency difference vs ARIES/IM that the paper's
//! §1 claims (value locks serialize transactions touching different
//! *duplicates* of one value; individual-key locks do not).

use ariesim_btree::fetch::{FetchCond, FetchResult};
use ariesim_btree::{BTree, IndexRm, LockProtocol};
use ariesim_common::stats::{new_stats, StatsHandle};
use ariesim_common::tmp::TempDir;
use ariesim_common::{Error, IndexId, IndexKey, PageId, Rid};
use ariesim_lock::{LockManager, LockMode, LockName};
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim_txn::{RmRegistry, TransactionManager};
use ariesim_wal::{LogManager, LogOptions};
use std::sync::Arc;

struct Fix {
    _dir: TempDir,
    stats: StatsHandle,
    locks: Arc<LockManager>,
    tm: Arc<TransactionManager>,
    tree: Arc<BTree>,
}

fn fix(protocol: LockProtocol, unique: bool) -> Fix {
    let dir = TempDir::new("kvl");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions::default(), stats.clone());
    SpaceMap::initialize(&pool).unwrap();
    let locks = Arc::new(LockManager::new(stats.clone()));
    let rms = Arc::new(RmRegistry::new());
    let index_rm = IndexRm::new(pool.clone(), stats.clone());
    rms.register(index_rm.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks.clone(),
        pool.clone(),
        rms,
        stats.clone(),
    ));
    let txn = tm.begin();
    let root = BTree::create(&txn, IndexId(1), &pool, &log).unwrap();
    tm.commit(&txn).unwrap();
    let tree = BTree::new(
        IndexId(1),
        root,
        unique,
        protocol,
        pool,
        locks.clone(),
        log,
        stats.clone(),
    );
    index_rm.register_tree(tree.clone());
    Fix {
        _dir: dir,
        stats,
        locks,
        tm,
        tree,
    }
}

fn key(v: &str, n: u32) -> IndexKey {
    IndexKey::new(v.as_bytes().to_vec(), Rid::new(PageId(900_000), n as u16))
}

fn value_lock(v: &str) -> LockName {
    LockName::KeyValue(IndexId(1), v.as_bytes().to_vec())
}

#[test]
fn insert_new_value_takes_ix_commit_on_value() {
    let f = fix(LockProtocol::KeyValue, false);
    let txn = f.tm.begin();
    f.tree.insert(&txn, &key("m", 1)).unwrap();
    assert_eq!(
        f.locks.holds(txn.id, &value_lock("m")),
        Some(LockMode::IX),
        "KVL insert must hold IX commit on the inserted value"
    );
    f.tm.commit(&txn).unwrap();
    assert_eq!(f.locks.holds(txn.id, &value_lock("m")), None);
}

#[test]
fn insert_existing_value_skips_next_lock() {
    let f = fix(LockProtocol::KeyValue, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("dup", 1)).unwrap();
    f.tree.insert(&setup, &key("zzz", 1)).unwrap();
    f.tm.commit(&setup).unwrap();

    let before = f.stats.snapshot();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &key("dup", 2)).unwrap();
    let delta = f.stats.snapshot().since(&before);
    assert_eq!(
        delta.locks_next_key, 0,
        "inserting a duplicate of an existing value needs no next-value lock"
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn delete_last_instance_locks_next_value_commit() {
    let f = fix(LockProtocol::KeyValue, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("a", 1)).unwrap();
    f.tree.insert(&setup, &key("b", 1)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    f.tree.delete(&txn, &key("a", 1)).unwrap();
    assert_eq!(
        f.locks.holds(txn.id, &value_lock("a")),
        Some(LockMode::X),
        "deleted value held X commit"
    );
    assert_eq!(
        f.locks.holds(txn.id, &value_lock("b")),
        Some(LockMode::X),
        "last-instance delete holds X commit on the NEXT value"
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn delete_with_remaining_duplicates_skips_next_lock() {
    let f = fix(LockProtocol::KeyValue, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("v", 1)).unwrap();
    f.tree.insert(&setup, &key("v", 2)).unwrap();
    f.tree.insert(&setup, &key("w", 1)).unwrap();
    f.tm.commit(&setup).unwrap();

    let txn = f.tm.begin();
    f.tree.delete(&txn, &key("v", 1)).unwrap();
    assert_eq!(f.locks.holds(txn.id, &value_lock("v")), Some(LockMode::X));
    assert_eq!(
        f.locks.holds(txn.id, &value_lock("w")),
        None,
        "duplicates of 'v' remain: no next-value lock needed"
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn kvl_serializes_different_duplicates_aries_im_does_not() {
    // THE headline difference (paper §1): under KVL, T2 deleting one
    // duplicate of a value blocks T1 inserting another duplicate of the same
    // value. Under ARIES/IM data-only locking they proceed concurrently.

    // --- KVL: conflict --------------------------------------------------
    let f = fix(LockProtocol::KeyValue, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("dup", 1)).unwrap();
    f.tree.insert(&setup, &key("dup", 2)).unwrap();
    f.tree.insert(&setup, &key("zz", 1)).unwrap();
    f.tm.commit(&setup).unwrap();

    let t1 = f.tm.begin();
    f.tree.delete(&t1, &key("dup", 1)).unwrap(); // X commit on value "dup"

    let tm = f.tm.clone();
    let tree = f.tree.clone();
    let h = std::thread::spawn(move || {
        let t2 = tm.begin();
        // IX on value "dup" conflicts with T1's X → blocks.
        tree.insert(&t2, &key("dup", 3)).unwrap();
        tm.commit(&t2).unwrap();
    });
    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(
        !h.is_finished(),
        "KVL: duplicate insert must block on the value lock"
    );
    f.tm.commit(&t1).unwrap();
    h.join().unwrap();

    // --- ARIES/IM data-only: no conflict -------------------------------------
    let f = fix(LockProtocol::DataOnly, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("dup", 1)).unwrap();
    f.tree.insert(&setup, &key("dup", 2)).unwrap();
    f.tree.insert(&setup, &key("zz", 1)).unwrap();
    f.tm.commit(&setup).unwrap();

    let t1 = f.tm.begin();
    f.tree.delete(&t1, &key("dup", 1)).unwrap();
    let tm = f.tm.clone();
    let tree = f.tree.clone();
    let h = std::thread::spawn(move || {
        let t2 = tm.begin();
        tree.insert(&t2, &key("dup", 3)).unwrap();
        tm.commit(&t2).unwrap();
    });
    // Wait on outcome, not time: ARIES/IM must let T2 through while T1 is
    // still uncommitted. (T2's next-key lock target is ("dup",2)'s record —
    // not locked by T1, whose next-key lock is also ("dup",2)... X instant vs
    // X commit conflict? T1 deleted ("dup",1): its commit X next-key lock is
    // on ("dup",2)'s RID. T2 inserts ("dup",3): its instant X next-key target
    // is ("zz",1)'s RID — no conflict.)
    h.join().unwrap();
    f.tm.commit(&t1).unwrap();
}

#[test]
fn kvl_fetch_locks_the_value() {
    let f = fix(LockProtocol::KeyValue, false);
    let setup = f.tm.begin();
    f.tree.insert(&setup, &key("q", 1)).unwrap();
    f.tm.commit(&setup).unwrap();
    let txn = f.tm.begin();
    match f.tree.fetch(&txn, b"q", FetchCond::Eq).unwrap() {
        FetchResult::Found(k) => assert_eq!(k, key("q", 1)),
        other => panic!("{other:?}"),
    }
    assert_eq!(f.locks.holds(txn.id, &value_lock("q")), Some(LockMode::S));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn kvl_unique_violation_still_detected() {
    let f = fix(LockProtocol::KeyValue, true);
    let txn = f.tm.begin();
    f.tree.insert(&txn, &key("u", 1)).unwrap();
    assert!(matches!(
        f.tree.insert(&txn, &key("u", 2)),
        Err(Error::UniqueViolation)
    ));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn kvl_rollbacks_work_identically() {
    let f = fix(LockProtocol::KeyValue, false);
    let txn = f.tm.begin();
    for i in 0..50u32 {
        f.tree.insert(&txn, &key(&format!("k{i:03}"), i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    for i in 0..25u32 {
        f.tree.delete(&txn, &key(&format!("k{i:03}"), i)).unwrap();
    }
    f.tm.rollback(&txn).unwrap();
    assert_eq!(f.tree.scan_all_unlocked().unwrap().len(), 50);
    f.tree.check_structure().unwrap();
}
