//! `BENCH_<topic>.json` emission and validation.
//!
//! One stable machine-readable schema (`ariesim-bench-v1`) for every
//! benchmark the workload harness produces, so CI can smoke-validate the
//! files and downstream tooling can diff runs. Built on the std-only
//! writer/parser in `ariesim_obs::json`.

use crate::driver::{KeyDist, RunResult, WorkloadConfig};
use ariesim_common::{Error, Result};
use ariesim_obs::json::{self, JsonValue, Object};
use ariesim_obs::HistogramSnapshot;

/// Schema identifier stamped into every BENCH file.
pub const SCHEMA: &str = "ariesim-bench-v1";

fn hist_json(s: &HistogramSnapshot) -> String {
    let mut o = Object::new();
    o.field_u64("count", s.count);
    o.field_u64("p50_ns", s.p50());
    o.field_u64("p99_ns", s.p99());
    o.field_u64("max_ns", s.max());
    o.field_u64("mean_ns", s.mean_ns());
    o.finish()
}

fn config_json(cfg: &WorkloadConfig) -> String {
    let mut o = Object::new();
    o.field_u64("ops_per_thread", cfg.ops_per_thread);
    o.field_u64("keyspace", cfg.keyspace);
    o.field_u64("payload_bytes", cfg.payload as u64);
    match cfg.dist {
        KeyDist::Uniform => {
            o.field_str("dist", "uniform");
        }
        KeyDist::Zipfian(theta) => {
            o.field_str("dist", "zipfian");
            o.field_f64("theta", theta);
        }
    }
    o.field_str("mix", &cfg.mix.to_string());
    o.field_u64("seed", cfg.seed);
    o.field_f64("standby_read_fraction", cfg.standby_read_fraction);
    o.finish()
}

fn breakdown_json(r: &RunResult) -> String {
    let mut spans = Object::new();
    for (name, self_ns, count) in r.breakdown.named() {
        let mut s = Object::new();
        s.field_u64("self_ns", self_ns);
        s.field_u64("count", count);
        spans.field_raw(name, &s.finish());
    }
    let mut o = Object::new();
    o.field_u64("wall_ns", r.wall_ns);
    o.field_u64("attributed_ns", r.breakdown.total_ns());
    o.field_u64("aborted_ns", r.aborted_ns);
    o.field_f64("coverage", r.attribution_coverage());
    o.field_raw("spans", &spans.finish());
    o.finish()
}

fn run_json(r: &RunResult) -> String {
    let mut lat = Object::new();
    lat.field_raw("read", &hist_json(&r.read));
    lat.field_raw("insert", &hist_json(&r.insert));
    lat.field_raw("update", &hist_json(&r.update));
    lat.field_raw("delete", &hist_json(&r.delete));
    lat.field_raw("commit", &hist_json(&r.commit));
    lat.field_raw("repl_apply", &hist_json(&r.repl_apply));

    let mut o = Object::new();
    o.field_u64("threads", r.threads as u64);
    o.field_u64("ops", r.ops);
    o.field_u64("elapsed_ms", r.elapsed.as_millis() as u64);
    o.field_f64("throughput_ops_s", r.throughput());
    o.field_u64("aborts", r.aborts);
    o.field_u64("standby_reads", r.standby_reads);
    o.field_u64("max_repl_lag_bytes", r.max_lag_bytes);
    o.field_u64("max_repl_lag_lsn_delta", r.max_lag_lsn_delta);
    o.field_raw("latency", &lat.finish());
    o.field_raw("breakdown", &breakdown_json(r));
    // Group-commit amortization: batch/rider counts plus the batch-size
    // distribution (values are waiters per batch, not nanoseconds).
    let mut bs = Object::new();
    bs.field_u64("count", r.wal_batch.count);
    bs.field_u64("p50", r.wal_batch.p50());
    bs.field_u64("p99", r.wal_batch.p99());
    bs.field_u64("max", r.wal_batch.max());
    bs.field_u64("mean", r.wal_batch.mean_ns());
    let mut wg = Object::new();
    wg.field_u64("batches", r.wal_group_batches);
    wg.field_u64("riders", r.wal_group_riders);
    wg.field_raw("batch_size", &bs.finish());
    o.field_raw("wal_group", &wg.finish());
    o.finish()
}

/// Render one BENCH document: a topic, the run configuration, and one
/// entry per thread count.
pub fn bench_json(topic: &str, cfg: &WorkloadConfig, runs: &[RunResult]) -> String {
    let mut o = Object::new();
    o.field_str("schema", SCHEMA);
    o.field_str("topic", topic);
    o.field_raw("config", &config_json(cfg));
    let mut arr = String::from("[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&run_json(r));
    }
    arr.push(']');
    o.field_raw("runs", &arr);
    o.finish()
}

fn need<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a JsonValue> {
    v.get(key)
        .ok_or_else(|| Error::Internal(format!("BENCH json: missing {ctx}.{key}")))
}

fn need_u64(v: &JsonValue, key: &str, ctx: &str) -> Result<u64> {
    need(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| Error::Internal(format!("BENCH json: {ctx}.{key} not a u64")))
}

/// Validate one BENCH document against the `ariesim-bench-v1` schema:
/// parses, checks the schema tag, and checks every run entry for the
/// required counters and internally-consistent latency blocks
/// (`p50 <= p99 <= max`). Returns the topic.
pub fn validate(text: &str) -> Result<String> {
    let v = json::parse(text)
        .ok_or_else(|| Error::Internal("BENCH json: not valid JSON".into()))?;
    let schema = need(&v, "schema", "root")?
        .as_str()
        .ok_or_else(|| Error::Internal("BENCH json: schema not a string".into()))?;
    if schema != SCHEMA {
        return Err(Error::Internal(format!(
            "BENCH json: schema {schema:?}, expected {SCHEMA:?}"
        )));
    }
    let topic = need(&v, "topic", "root")?
        .as_str()
        .ok_or_else(|| Error::Internal("BENCH json: topic not a string".into()))?
        .to_string();
    need(&v, "config", "root")?;
    let JsonValue::Array(runs) = need(&v, "runs", "root")? else {
        return Err(Error::Internal("BENCH json: runs not an array".into()));
    };
    if runs.is_empty() {
        return Err(Error::Internal("BENCH json: no runs".into()));
    }
    for run in runs {
        let threads = need_u64(run, "threads", "run")?;
        if threads == 0 {
            return Err(Error::Internal("BENCH json: run with zero threads".into()));
        }
        need_u64(run, "ops", "run")?;
        need_u64(run, "aborts", "run")?;
        need_u64(run, "max_repl_lag_bytes", "run")?;
        need_u64(run, "max_repl_lag_lsn_delta", "run")?;
        need(run, "throughput_ops_s", "run")?;
        // Per-phase commit-path attribution: every span kind must be
        // present, and the attributed time must explain the measured op
        // wall time (the coverage acceptance bound below).
        let bd = need(run, "breakdown", "run")?;
        let wall_ns = need_u64(bd, "wall_ns", "breakdown")?;
        let attributed = need_u64(bd, "attributed_ns", "breakdown")?;
        need_u64(bd, "aborted_ns", "breakdown")?;
        let spans = need(bd, "spans", "breakdown")?;
        for name in ariesim_obs::SPAN_NAMES {
            let s = need(spans, name, "breakdown.spans")?;
            need_u64(s, "self_ns", name)?;
            need_u64(s, "count", name)?;
        }
        if wall_ns > 0 {
            let cov = attributed as f64 / wall_ns as f64;
            // Upper slack is wider than lower: with the dedicated WAL
            // flusher, fsync self-time lands on the off-worker flusher
            // thread while the committers it serves also attribute the
            // same wall period as wait — a batch can therefore be counted
            // from both sides and push coverage slightly above 1.
            if !(0.95..=1.10).contains(&cov) {
                return Err(Error::Internal(format!(
                    "BENCH json: breakdown covers {cov:.3} of wall time, \
                     outside [0.95, 1.10]"
                )));
            }
        }
        // Group-commit stats are emitted by current builds but absent from
        // BENCH files produced before the WAL pipeline landed, so they are
        // validated only when present.
        if let Some(wg) = run.get("wal_group") {
            need_u64(wg, "batches", "wal_group")?;
            need_u64(wg, "riders", "wal_group")?;
            let bs = need(wg, "batch_size", "wal_group")?;
            need_u64(bs, "count", "wal_group.batch_size")?;
            need_u64(bs, "p50", "wal_group.batch_size")?;
            need_u64(bs, "p99", "wal_group.batch_size")?;
        }
        let lat = need(run, "latency", "run")?;
        for op in ["read", "insert", "update", "delete", "commit", "repl_apply"] {
            let h = need(lat, op, "latency")?;
            let count = need_u64(h, "count", op)?;
            let p50 = need_u64(h, "p50_ns", op)?;
            let p99 = need_u64(h, "p99_ns", op)?;
            need_u64(h, "max_ns", op)?;
            // p50/p99 are bucket tops of the same histogram, so ordering
            // must hold; max_ns is exact and may sit below a bucket top.
            if count > 0 && p50 > p99 {
                return Err(Error::Internal(format!(
                    "BENCH json: {op} percentiles not ordered (p50 {p50} > p99 {p99})"
                )));
            }
        }
    }
    Ok(topic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_obs::LatencyHistogram;
    use std::time::Duration;

    fn fake_result(threads: usize) -> RunResult {
        let h = LatencyHistogram::default();
        h.record_ns(1_000);
        h.record_ns(2_000);
        h.record_ns(50_000);
        // wall = 3 populated op histograms (53 µs each) + aborted time;
        // the fake breakdown attributes exactly that, so coverage = 1.
        let mut breakdown = ariesim_obs::SpanSnapshot::default();
        breakdown.self_ns[ariesim_obs::SpanKind::UserWork as usize] = 100_000;
        breakdown.count[ariesim_obs::SpanKind::UserWork as usize] = 9;
        breakdown.self_ns[ariesim_obs::SpanKind::LockWait as usize] = 60_000;
        breakdown.count[ariesim_obs::SpanKind::LockWait as usize] = 2;
        RunResult {
            threads,
            ops: 1000,
            elapsed: Duration::from_millis(250),
            read: h.snapshot(),
            insert: h.snapshot(),
            update: h.snapshot(),
            delete: HistogramSnapshot::default(),
            commit: h.snapshot(),
            aborts: 3,
            standby_reads: 200,
            max_lag_bytes: 4096,
            max_lag_lsn_delta: 4096,
            repl_apply: h.snapshot(),
            breakdown,
            wall_ns: 160_000,
            aborted_ns: 1_000,
            wal_group_batches: 40,
            wal_group_riders: 160,
            wal_batch: h.snapshot(),
        }
    }

    #[test]
    fn emitted_document_validates() {
        let cfg = WorkloadConfig::default();
        let text = bench_json("replication", &cfg, &[fake_result(1), fake_result(8)]);
        assert_eq!(validate(&text).unwrap(), "replication");
        // And the interesting fields survive a round-trip.
        let v = json::parse(&text).unwrap();
        let runs = match v.get("runs").unwrap() {
            JsonValue::Array(a) => a,
            other => panic!("runs not an array: {other:?}"),
        };
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("threads").unwrap().as_u64(), Some(8));
        assert_eq!(
            runs[0].get("max_repl_lag_bytes").unwrap().as_u64(),
            Some(4096)
        );
        assert_eq!(
            v.get("config").unwrap().get("dist").unwrap().as_str(),
            Some("zipfian")
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate(r#"{"schema":"other","topic":"t","runs":[]}"#).is_err());
        let cfg = WorkloadConfig::default();
        let good = bench_json("t", &cfg, &[fake_result(1)]);
        assert!(validate(&good).is_ok());
        let wrong_schema = good.replace(SCHEMA, "ariesim-bench-v0");
        assert!(validate(&wrong_schema).is_err());
        let no_runs = bench_json("t", &cfg, &[]);
        assert!(validate(&no_runs).is_err());
        let no_lat = good.replace("\"latency\"", "\"latency_gone\"");
        assert!(validate(&no_lat).is_err());
        let no_breakdown = good.replace("\"breakdown\"", "\"breakdown_gone\"");
        assert!(validate(&no_breakdown).is_err());
        // Attribution that explains only a fraction of wall time fails the
        // 5% coverage bound.
        let poor_coverage = good.replace("\"attributed_ns\":160000", "\"attributed_ns\":10000");
        assert_ne!(poor_coverage, good, "replacement must hit");
        assert!(validate(&poor_coverage).is_err());
    }
}
