//! `ariesim-workload` — a YCSB-style traffic harness for the ARIES/IM
//! stack.
//!
//! [`driver`] runs N client threads issuing a configurable
//! read/insert/update/delete mix with uniform or zipfian ([`zipf`]) key
//! choice against a standalone engine or a replicated
//! [`ariesim_repl::ReplPair`]; [`bench_json`] renders the results as
//! `BENCH_<topic>.json` in the stable `ariesim-bench-v1` schema and
//! validates such files for CI. The `workload` binary wires it all to a
//! command line.

pub mod bench_json;
pub mod driver;
pub mod rng;
pub mod zipf;

pub use bench_json::{bench_json, validate, SCHEMA};
pub use driver::{load, run, KeyDist, MixSpec, RunResult, Target, WorkloadConfig};
pub use rng::Rng;
pub use zipf::Zipf;
