//! Seeded xorshift64* generator — deterministic, one per worker thread.

/// Small fast PRNG; not cryptographic, stable across platforms.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1) // never zero, xorshift's absorbing state
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut uniq = xs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
