//! Zipfian key-choice distribution, the YCSB standard skew.
//!
//! This is the Gray et al. rejection-free approximation ("Quickly
//! generating billion-record synthetic databases", SIGMOD '94) that YCSB
//! itself uses: precompute the generalized harmonic number `zeta(n,
//! theta)` once, then each sample costs one uniform draw and one `powf`.
//! Rank 0 is the hottest key; with the YCSB default `theta = 0.99` and
//! `n = 1000` it absorbs roughly 13% of all draws.

use crate::rng::Rng;

/// A zipfian sampler over ranks `0..n` with skew `theta` in `(0, 1)`.
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n >= 2, "zipfian needs at least two ranks");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draw one rank in `[0, n)`; rank 0 is most popular.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank =
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Generalized harmonic number `sum_{i=1..n} 1/i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(n: u64, theta: f64, draws: usize) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(0x00DE_C0DE);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 0.99);
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn distribution_shape_matches_theory() {
        // With n = 1000 and theta = 0.99, the theoretical mass of rank 0
        // is 1/zeta(1000, 0.99) ~= 0.129. Allow a generous band — this is
        // a shape check, not a statistics exam.
        let n = 1000;
        let draws = 200_000;
        let counts = frequencies(n, 0.99, draws);
        let p0 = counts[0] as f64 / draws as f64;
        assert!(
            (0.08..0.20).contains(&p0),
            "hottest-rank mass {p0} outside [0.08, 0.20]"
        );

        // Head dominance: the top 10 ranks of 1000 should carry well over
        // a quarter of the mass (theory: ~35%), the bottom half well
        // under a tenth.
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[n as usize / 2..].iter().sum();
        assert!(head as f64 / draws as f64 > 0.25, "head too light: {head}");
        assert!((tail as f64) / (draws as f64) < 0.10, "tail too heavy: {tail}");

        // Monotone-ish decay: aggregate by decade so sampling noise does
        // not flake the ordering.
        let d0: u64 = counts[..10].iter().sum();
        let d1: u64 = counts[10..100].iter().sum::<u64>() / 9;
        let d2: u64 = counts[100..1000].iter().sum::<u64>() / 90;
        assert!(d0 > d1 && d1 > d2, "decade masses not decaying: {d0} {d1} {d2}");
    }

    #[test]
    fn lower_theta_is_flatter() {
        let draws = 100_000;
        let skewed = frequencies(100, 0.99, draws)[0];
        let flat = frequencies(100, 0.10, draws)[0];
        assert!(
            skewed > 2 * flat,
            "theta 0.99 head {skewed} not clearly above theta 0.10 head {flat}"
        );
    }
}
