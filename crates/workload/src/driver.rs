//! The YCSB-style traffic driver.
//!
//! N worker threads issue single-operation transactions against a `kv`
//! table (key, payload) through its unique primary index, choosing keys
//! uniformly or zipfian-skewed and operations from a configurable
//! read/insert/update/delete mix. The same driver runs against a
//! standalone engine or a [`ReplPair`]; in the latter case a dedicated
//! pumper thread ships and applies log continuously, and a configurable
//! fraction of reads is served by the standby at its applied watermark.
//!
//! Latency is measured per operation into [`LatencyHistogram`]s; commit
//! latency and replication lag come from the engine's own `crates/obs`
//! instrumentation, so the harness reports the same numbers `--obs`
//! reports elsewhere.

use crate::rng::Rng;
use crate::zipf::Zipf;
use ariesim_common::{Error, Result};
use ariesim_db::{Db, FetchCond, Row};
use ariesim_obs::{HistogramSnapshot, LatencyHistogram, SpanKind, SpanSnapshot};
use ariesim_repl::ReplPair;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Key-choice distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    Uniform,
    /// Zipfian with the given theta (YCSB default 0.99).
    Zipfian(f64),
}

/// Operation mix as integer weights; `read:insert:update:delete`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixSpec {
    pub read: u32,
    pub insert: u32,
    pub update: u32,
    pub delete: u32,
}

impl MixSpec {
    /// YCSB workload-A-ish default: half reads, half updates.
    pub const UPDATE_HEAVY: MixSpec = MixSpec {
        read: 50,
        insert: 0,
        update: 50,
        delete: 0,
    };

    /// A mixed workload exercising every operation kind.
    pub const CRUD: MixSpec = MixSpec {
        read: 70,
        insert: 15,
        update: 10,
        delete: 5,
    };

    /// Parse `"r:i:u:d"`, e.g. `"70:15:10:5"`.
    pub fn parse(s: &str) -> Result<MixSpec> {
        let parts: Vec<u32> = s
            .split(':')
            .map(|p| {
                p.parse()
                    .map_err(|_| Error::Internal(format!("bad mix component {p:?} in {s:?}")))
            })
            .collect::<Result<_>>()?;
        let [read, insert, update, delete]: [u32; 4] = parts
            .try_into()
            .map_err(|_| Error::Internal(format!("mix {s:?} needs exactly r:i:u:d")))?;
        if read + insert + update + delete == 0 {
            return Err(Error::Internal("mix weights sum to zero".into()));
        }
        Ok(MixSpec {
            read,
            insert,
            update,
            delete,
        })
    }

    fn total(&self) -> u32 {
        self.read + self.insert + self.update + self.delete
    }
}

impl std::fmt::Display for MixSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}",
            self.read, self.insert, self.update, self.delete
        )
    }
}

/// One run's shape.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    pub threads: usize,
    pub ops_per_thread: u64,
    /// Preloaded key population; inserts extend past it.
    pub keyspace: u64,
    /// Payload bytes per row.
    pub payload: usize,
    pub dist: KeyDist,
    pub mix: MixSpec,
    pub seed: u64,
    /// In replication mode, the fraction of reads served by the standby.
    pub standby_read_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            threads: 1,
            ops_per_thread: 10_000,
            keyspace: 10_000,
            payload: 100,
            dist: KeyDist::Zipfian(0.99),
            mix: MixSpec::CRUD,
            seed: 0x5EED,
            standby_read_fraction: 0.5,
        }
    }
}

/// What the driver runs against.
pub enum Target<'a> {
    Standalone(&'a Arc<Db>),
    Repl(&'a ReplPair),
}

impl Target<'_> {
    fn primary(&self) -> &Arc<Db> {
        match self {
            Target::Standalone(db) => db,
            Target::Repl(pair) => &pair.primary,
        }
    }
}

/// Per-operation latency snapshots plus run-level counters.
pub struct RunResult {
    pub threads: usize,
    /// Committed operations (aborted-and-retried attempts not counted).
    pub ops: u64,
    pub elapsed: Duration,
    pub read: HistogramSnapshot,
    pub insert: HistogramSnapshot,
    pub update: HistogramSnapshot,
    pub delete: HistogramSnapshot,
    /// Engine-side commit latency (`obs.hist.op_commit`).
    pub commit: HistogramSnapshot,
    /// Deadlock-victim aborts (each retried).
    pub aborts: u64,
    /// Reads served by the standby at its watermark (repl mode only).
    pub standby_reads: u64,
    /// High-water replication lag over the run, bytes (repl mode only).
    pub max_lag_bytes: u64,
    /// High-water replication lag as an LSN delta (repl mode only). LSNs
    /// are byte offsets in this engine, so this coincides with
    /// `max_lag_bytes`; both are carried so the bench schema stays honest
    /// if the LSN representation ever changes (see `ariesim_obs::ReplLag`).
    pub max_lag_lsn_delta: u64,
    /// Standby apply-batch latency (`obs.hist.repl_apply`, repl mode only).
    pub repl_apply: HistogramSnapshot,
    /// Per-kind self-time attribution over the primary obs domain. Every
    /// worker wraps each operation attempt (begin through commit or
    /// rollback) in a `UserWork` span, so the engine spans nested inside
    /// (lock wait, latch wait, WAL append/fsync, page I/O) carve that
    /// window up and the kinds sum to the operation wall time.
    pub breakdown: SpanSnapshot,
    /// Wall nanoseconds the workers spent inside operations: the sum of
    /// the four op histograms plus time burnt in aborted-and-retried
    /// attempts. `breakdown.total_ns()` should come within a few percent
    /// of this — the attribution coverage check.
    pub wall_ns: u64,
    /// Wall nanoseconds spent in attempts that ended in a deadlock-victim
    /// abort (included in `wall_ns`, not in any op histogram).
    pub aborted_ns: u64,
    /// Group-flush batches over the run (each one `write` + optional
    /// fsync), from `obs.wal.group_batches`.
    pub wal_group_batches: u64,
    /// Committers satisfied by a batch they did not lead, from
    /// `obs.wal.group_riders`. `riders / (batches + riders)` is the
    /// amortization ratio.
    pub wal_group_riders: u64,
    /// Batch-size distribution **in waiters, not nanoseconds** (see
    /// `Histograms::wal_group_batch`).
    pub wal_batch: HistogramSnapshot,
}

impl RunResult {
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// `breakdown.total_ns() / wall_ns` — fraction of operation wall time
    /// explained by the span attribution (1.0 = fully attributed).
    pub fn attribution_coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.breakdown.total_ns() as f64 / self.wall_ns as f64
    }
}

fn key_bytes(i: u64) -> Vec<u8> {
    format!("key{i:012}").into_bytes()
}

fn payload_bytes(i: u64, len: usize) -> Vec<u8> {
    let mut p = format!("v{i:016}-").into_bytes();
    p.resize(len.max(p.len()), b'x');
    p
}

/// Create the `kv` schema and preload `keyspace` rows in batches. Call
/// once on the (future) primary before [`run`] — and, for replication,
/// before forking the standby so the population ships as base backup.
pub fn load(db: &Arc<Db>, cfg: &WorkloadConfig) -> Result<()> {
    db.create_table("kv", 2)?;
    db.create_index("kv_pk", "kv", 0, true)?;
    let mut i = 0;
    while i < cfg.keyspace {
        let txn = db.begin();
        for _ in 0..256 {
            if i >= cfg.keyspace {
                break;
            }
            db.insert_row(
                &txn,
                "kv",
                &Row::new(vec![key_bytes(i), payload_bytes(i, cfg.payload)]),
            )?;
            i += 1;
        }
        db.commit(&txn)?;
    }
    Ok(())
}

struct SharedState {
    next_id: AtomicU64,
    aborts: AtomicU64,
    aborted_ns: AtomicU64,
    standby_reads: AtomicU64,
}

/// Drive `cfg.threads` workers for `cfg.ops_per_thread` operations each.
/// Resets the target's obs domain at the start so the commit histogram
/// and lag gauge cover exactly this run.
pub fn run(target: &Target<'_>, cfg: &WorkloadConfig) -> Result<RunResult> {
    let primary = target.primary();
    primary.obs().reset();
    if let Target::Repl(pair) = target {
        pair.standby.obs().reset();
    }

    let hist_read = LatencyHistogram::default();
    let hist_insert = LatencyHistogram::default();
    let hist_update = LatencyHistogram::default();
    let hist_delete = LatencyHistogram::default();
    let shared = SharedState {
        next_id: AtomicU64::new(cfg.keyspace),
        aborts: AtomicU64::new(0),
        aborted_ns: AtomicU64::new(0),
        standby_reads: AtomicU64::new(0),
    };
    let zipf = match cfg.dist {
        KeyDist::Zipfian(theta) => Some(Zipf::new(cfg.keyspace.max(2), theta)),
        KeyDist::Uniform => None,
    };
    let stop = AtomicBool::new(false);

    let started = Instant::now();
    let worker_results: Vec<Result<u64>> = std::thread::scope(|s| {
        // Replication pumper: ship + apply continuously, tracking the lag
        // gauge. Backs off briefly when the channel is idle.
        if let Target::Repl(pair) = target {
            s.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    match pair.pump() {
                        Ok(0) => std::thread::sleep(Duration::from_micros(200)),
                        Ok(_) => {}
                        Err(_) => break, // surfaced by the post-run sync
                    }
                }
            });
        }

        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let hists = (&hist_read, &hist_insert, &hist_update, &hist_delete);
                let shared = &shared;
                let zipf = zipf.as_ref();
                s.spawn(move || {
                    worker(
                        target,
                        cfg,
                        t,
                        zipf,
                        shared,
                        hists.0,
                        hists.1,
                        hists.2,
                        hists.3,
                    )
                })
            })
            .collect();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        stop.store(true, Ordering::Release);
        results
    });
    let elapsed = started.elapsed();

    let mut ops = 0;
    for r in worker_results {
        ops += r?;
    }

    let (max_lag, max_lag_delta, repl_apply) = match target {
        Target::Repl(pair) => {
            pair.sync()?; // drain; also surfaces any pumper-thread error
            let sobs = pair.standby.obs();
            (
                sobs.gauge.repl_lag.bytes.max(),
                sobs.gauge.repl_lag.lsn_delta.max(),
                sobs.hist.repl_apply.snapshot(),
            )
        }
        Target::Standalone(_) => (0, 0, HistogramSnapshot::default()),
    };

    let read = hist_read.snapshot();
    let insert = hist_insert.snapshot();
    let update = hist_update.snapshot();
    let delete = hist_delete.snapshot();
    let aborted_ns = shared.aborted_ns.load(Ordering::Relaxed);
    let wall_ns = read.sum_ns + insert.sum_ns + update.sum_ns + delete.sum_ns + aborted_ns;

    Ok(RunResult {
        threads: cfg.threads,
        ops,
        elapsed,
        read,
        insert,
        update,
        delete,
        commit: primary.obs().hist.op_commit.snapshot(),
        aborts: shared.aborts.load(Ordering::Relaxed),
        standby_reads: shared.standby_reads.load(Ordering::Relaxed),
        max_lag_bytes: max_lag,
        max_lag_lsn_delta: max_lag_delta,
        repl_apply,
        breakdown: primary.obs().spans.snapshot(),
        wall_ns,
        aborted_ns,
        wal_group_batches: primary.obs().wal.group_batches.load(Ordering::Relaxed),
        wal_group_riders: primary.obs().wal.group_riders.load(Ordering::Relaxed),
        wal_batch: primary.obs().hist.wal_group_batch.snapshot(),
    })
}

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Read,
    Insert,
    Update,
    Delete,
}

#[allow(clippy::too_many_arguments)]
fn worker(
    target: &Target<'_>,
    cfg: &WorkloadConfig,
    thread_idx: usize,
    zipf: Option<&Zipf>,
    shared: &SharedState,
    hist_read: &LatencyHistogram,
    hist_insert: &LatencyHistogram,
    hist_update: &LatencyHistogram,
    hist_delete: &LatencyHistogram,
) -> Result<u64> {
    let db = target.primary();
    let mut rng = Rng::new(cfg.seed ^ (thread_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Keys this worker inserted and may later delete; preloaded keys are
    // never deleted, so reads/updates of the base population always hit.
    let mut own_keys: Vec<u64> = Vec::new();
    let total = cfg.mix.total();
    let mut committed = 0u64;

    for _ in 0..cfg.ops_per_thread {
        let roll = rng.below(total as u64) as u32;
        let mut op = if roll < cfg.mix.read {
            Op::Read
        } else if roll < cfg.mix.read + cfg.mix.insert {
            Op::Insert
        } else if roll < cfg.mix.read + cfg.mix.insert + cfg.mix.update {
            Op::Update
        } else {
            Op::Delete
        };
        if op == Op::Delete && own_keys.is_empty() {
            op = Op::Insert; // nothing of our own to delete yet
        }

        let rank = match zipf {
            Some(z) => z.sample(&mut rng),
            None => rng.below(cfg.keyspace),
        };

        // Standby reads are transaction-free watermark reads; everything
        // else (and the remaining reads) goes through the primary. The
        // UserWork span lives in the *primary* obs domain so the breakdown
        // covers the whole run; the standby's own engine spans (latch
        // waits, page reads) land in the standby domain and merely shave
        // their share off this span's self time.
        if op == Op::Read {
            if let Target::Repl(pair) = target {
                if rng.next_f64() < cfg.standby_read_fraction {
                    let t = Instant::now();
                    let span = db.obs().span(SpanKind::UserWork, 0, 0);
                    pair.standby.read("kv_pk", &key_bytes(rank))?;
                    drop(span);
                    hist_read.record_ns(t.elapsed().as_nanos() as u64);
                    shared.standby_reads.fetch_add(1, Ordering::Relaxed);
                    committed += 1;
                    continue;
                }
            }
        }

        // One UserWork span per attempt, begin through commit or rollback:
        // the engine spans nested inside carve this window into lock wait /
        // latch wait / WAL / page-I/O shares, and the kinds together sum to
        // the same wall time the histograms (and `aborted_ns`) record.
        let t = Instant::now();
        let span = db.obs().span(SpanKind::UserWork, 0, 0);
        let txn = db.begin();
        let res = match op {
            Op::Read => db
                .fetch_via(&txn, "kv_pk", &key_bytes(rank), FetchCond::Eq)
                .map(|_| ()),
            Op::Insert => {
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                db.insert_row(
                    &txn,
                    "kv",
                    &Row::new(vec![key_bytes(id), payload_bytes(id, cfg.payload)]),
                )
                .map(|_| own_keys.push(id))
            }
            Op::Update => db
                .fetch_via(&txn, "kv_pk", &key_bytes(rank), FetchCond::Eq)
                .and_then(|hit| match hit {
                    Some((rid, _)) => db.update_row(
                        &txn,
                        "kv",
                        rid,
                        &Row::new(vec![
                            key_bytes(rank),
                            payload_bytes(rank ^ committed, cfg.payload),
                        ]),
                    ),
                    None => Ok(()), // concurrently absent key: a no-op update
                }),
            Op::Delete => {
                let id = own_keys.pop().expect("checked non-empty");
                db.fetch_via(&txn, "kv_pk", &key_bytes(id), FetchCond::Eq)
                    .and_then(|hit| match hit {
                        Some((rid, _)) => db.delete_row(&txn, "kv", rid).map(|_| ()),
                        None => Ok(()),
                    })
            }
        };
        match res.and_then(|()| db.commit(&txn)) {
            Ok(()) => {
                drop(span);
                let ns = t.elapsed().as_nanos() as u64;
                match op {
                    Op::Read => hist_read.record_ns(ns),
                    Op::Insert => hist_insert.record_ns(ns),
                    Op::Update => hist_update.record_ns(ns),
                    Op::Delete => hist_delete.record_ns(ns),
                }
                committed += 1;
            }
            Err(e) if e.is_retryable() => {
                // Roll back inside the timed window so the undo work is
                // attributed, then charge the whole attempt to aborted_ns.
                shared.aborts.fetch_add(1, Ordering::Relaxed);
                db.rollback(&txn)?;
                drop(span);
                shared
                    .aborted_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            Err(e) => {
                db.rollback(&txn).ok();
                return Err(e);
            }
        }
    }
    Ok(committed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::tmp::TempDir;
    use ariesim_db::DbOptions;

    fn small_cfg(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            ops_per_thread: 200,
            keyspace: 100,
            payload: 32,
            dist: KeyDist::Zipfian(0.99),
            mix: MixSpec::CRUD,
            seed: 7,
            standby_read_fraction: 0.5,
        }
    }

    #[test]
    fn mix_parses_and_rejects() {
        assert_eq!(
            MixSpec::parse("70:15:10:5").unwrap(),
            MixSpec::CRUD
        );
        assert!(MixSpec::parse("1:2:3").is_err());
        assert!(MixSpec::parse("0:0:0:0").is_err());
        assert!(MixSpec::parse("a:b:c:d").is_err());
        assert_eq!(MixSpec::CRUD.to_string(), "70:15:10:5");
    }

    #[test]
    fn standalone_run_commits_and_verifies() {
        let dir = TempDir::new("workload-standalone");
        let db = Db::open_with_obs(
            dir.path(),
            DbOptions {
                frames: 256,
                ..DbOptions::default()
            },
            ariesim_obs::Obs::enabled(256),
        )
        .unwrap();
        let cfg = small_cfg(2);
        load(&db, &cfg).unwrap();
        let res = run(&Target::Standalone(&db), &cfg).unwrap();
        assert_eq!(res.ops + res.aborts, 2 * cfg.ops_per_thread);
        assert!(res.read.count + res.insert.count + res.update.count + res.delete.count > 0);
        assert!(res.commit.count > 0, "engine commit histogram populated");
        assert!(res.throughput() > 0.0);
        // Every attempt is wrapped in a UserWork span, so the attribution
        // must explain (almost exactly) all of the measured op wall time.
        assert!(
            res.breakdown.count[SpanKind::UserWork as usize] >= res.ops,
            "one UserWork span per attempt"
        );
        let cov = res.attribution_coverage();
        assert!(
            (0.90..=1.05).contains(&cov),
            "breakdown covers wall time: {cov}"
        );
        db.verify_consistency().unwrap();
    }

    #[test]
    fn repl_run_serves_standby_reads_and_stays_consistent() {
        let dir = TempDir::new("workload-repl");
        let db = Db::open_with_obs(
            &dir.path().join("primary"),
            DbOptions {
                frames: 256,
                ..DbOptions::default()
            },
            ariesim_obs::Obs::enabled(256),
        )
        .unwrap();
        let cfg = small_cfg(2);
        load(&db, &cfg).unwrap();
        let pair = ReplPair::create(
            db,
            &dir.path().join("standby"),
            ariesim_obs::Obs::enabled(256),
        )
        .unwrap();
        let res = run(&Target::Repl(&pair), &cfg).unwrap();
        assert!(res.standby_reads > 0, "some reads served by the standby");
        assert_eq!(res.ops + res.aborts, 2 * cfg.ops_per_thread);
        // Drained at end of run: standby agrees with the primary.
        let primary_rows = pair.primary.verify_consistency().unwrap().rows;
        assert_eq!(pair.standby.count("kv_pk").unwrap(), primary_rows);
    }
}
