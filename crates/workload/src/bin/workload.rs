//! `workload` — run the YCSB-style harness and emit `BENCH_<topic>.json`.
//!
//! ```text
//! workload baseline    [flags]   standalone engine -> BENCH_workload_baseline.json
//! workload pool        [flags]   partitioned pool + bg writer -> BENCH_pool_partitioned.json
//! workload wal         [flags]   dedicated WAL flusher + group commit -> BENCH_wal_group_commit.json
//! workload replication [flags]   primary/standby pair -> BENCH_replication.json
//! workload all         [flags]   all of the above
//! workload validate FILE...      check BENCH files against the v1 schema
//!
//! flags:
//!   --quick          small preset (CI smoke: keyspace 500, 500 ops/thread)
//!   --out DIR        where BENCH files go (default .)
//!   --threads LIST   comma-separated thread counts (default 1,8)
//!   --ops N          operations per thread
//!   --keyspace N     preloaded key population
//!   --theta F        zipfian skew (0 < F < 1); --uniform for uniform
//!   --mix R:I:U:D    operation mix weights (default 70:15:10:5)
//!   --seed N         RNG seed
//!   --progress       live replication progress (lag + applied LSN) on stderr
//!   --metrics FILE   dump the metrics registry in Prometheus text format
//!   --trace FILE     dump the primary's event ring as JSONL (for foldtrace)
//! ```

use ariesim_common::tmp::TempDir;
use ariesim_db::{Db, DbOptions};
use ariesim_obs::{Obs, ObsHandle};
use ariesim_repl::ReplPair;
use ariesim_workload::{
    bench_json, load, run, validate, KeyDist, MixSpec, RunResult, Target, WorkloadConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

struct Args {
    command: String,
    quick: bool,
    out: PathBuf,
    threads: Vec<usize>,
    ops: Option<u64>,
    keyspace: Option<u64>,
    theta: Option<f64>,
    uniform: bool,
    mix: Option<MixSpec>,
    seed: Option<u64>,
    progress: bool,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: workload <baseline|pool|wal|replication|all> \
         [--quick] [--out DIR] [--threads N,M] [--ops N] [--keyspace N] \
         [--theta F | --uniform] [--mix R:I:U:D] [--seed N] \
         [--progress] [--metrics FILE] [--trace FILE]\n\
         \x20      workload validate FILE..."
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        quick: false,
        out: PathBuf::from("."),
        threads: vec![1, 8],
        ops: None,
        keyspace: None,
        theta: None,
        uniform: false,
        mix: None,
        seed: None,
        progress: false,
        metrics: None,
        trace: None,
        files: Vec::new(),
    };
    while let Some(a) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--uniform" => args.uniform = true,
            "--progress" => args.progress = true,
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.parse().map_err(|_| format!("bad thread count {t:?}")))
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one count".into());
                }
            }
            "--ops" => args.ops = Some(value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?),
            "--keyspace" => {
                args.keyspace = Some(
                    value("--keyspace")?
                        .parse()
                        .map_err(|e| format!("--keyspace: {e}"))?,
                )
            }
            "--theta" => {
                args.theta = Some(
                    value("--theta")?
                        .parse()
                        .map_err(|e| format!("--theta: {e}"))?,
                )
            }
            "--mix" => {
                args.mix = Some(MixSpec::parse(&value("--mix")?).map_err(|e| e.to_string())?)
            }
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            other if !other.starts_with('-') && args.command == "validate" => {
                args.files.push(PathBuf::from(other))
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn config_for(args: &Args, threads: usize) -> WorkloadConfig {
    let (def_ops, def_keyspace) = if args.quick { (500, 500) } else { (10_000, 10_000) };
    WorkloadConfig {
        threads,
        ops_per_thread: args.ops.unwrap_or(def_ops),
        keyspace: args.keyspace.unwrap_or(def_keyspace),
        payload: 100,
        dist: if args.uniform {
            KeyDist::Uniform
        } else {
            KeyDist::Zipfian(args.theta.unwrap_or(0.99))
        },
        mix: args.mix.unwrap_or(MixSpec::CRUD),
        seed: args.seed.unwrap_or(0x5EED),
        standby_read_fraction: 0.5,
    }
}

fn db_options() -> DbOptions {
    DbOptions {
        frames: 2048,
        ..DbOptions::default()
    }
}

/// `pool` topic: same engine and workload as `baseline`, with the pool's
/// concurrency features explicitly on — partitioned page table (auto: 8
/// partitions at 2048 frames) and the background writer taking dirty-page
/// write-back off the foreground path. Comparing BENCH_pool_partitioned.json
/// against BENCH_workload_baseline.json isolates the pool's contribution to
/// the 8-thread lock_wait/latch_wait share.
fn pool_db_options() -> DbOptions {
    DbOptions {
        bg_writer: Some(Duration::from_millis(2)),
        ..db_options()
    }
}

/// `wal` topic: same engine and workload as `baseline`, with the WAL's
/// dedicated flusher thread on so commits group behind one fsync instead of
/// each taking the flush lock. Comparing BENCH_wal_group_commit.json against
/// BENCH_workload_baseline.json isolates the group-commit pipeline's
/// contribution to 8-thread commit p99 and the wal_fsync count.
fn wal_db_options() -> DbOptions {
    DbOptions {
        wal_flusher: true,
        ..db_options()
    }
}

fn print_run(label: &str, r: &RunResult) {
    println!(
        "  {label}: {} threads, {} ops in {:.2}s = {:.0} ops/s \
         (p50 read {}ns, p99 read {}ns, p99 commit {}ns, aborts {}, \
         standby reads {}, max lag {}B / {} LSNs)",
        r.threads,
        r.ops,
        r.elapsed.as_secs_f64(),
        r.throughput(),
        r.read.p50(),
        r.read.p99(),
        r.commit.p99(),
        r.aborts,
        r.standby_reads,
        r.max_lag_bytes,
        r.max_lag_lsn_delta,
    );
    // Commit-path attribution: where the operation wall time actually went.
    let wall = r.wall_ns.max(1);
    let mut parts: Vec<String> = r
        .breakdown
        .named()
        .iter()
        .filter(|(_, self_ns, _)| *self_ns > 0)
        .map(|(name, self_ns, _)| {
            format!("{name} {:.1}%", 100.0 * *self_ns as f64 / wall as f64)
        })
        .collect();
    if parts.is_empty() {
        parts.push("none recorded".into());
    }
    println!(
        "    breakdown ({:.1}% of {:.1}ms op wall time attributed): {}",
        100.0 * r.attribution_coverage(),
        r.wall_ns as f64 / 1e6,
        parts.join(", ")
    );
}

/// Dump the full metrics registry for an obs domain as Prometheus text.
/// Overwritten per run; the file holds the most recent run's metrics.
fn dump_metrics(path: &PathBuf, obs: &ObsHandle) -> Result<(), String> {
    let reg = ariesim_obs::registry::for_obs(obs);
    write_file(path, &reg.render_prometheus())
}

/// Dump an obs domain's event ring as JSONL (input for `foldtrace`).
/// Overwritten per run; the file holds the most recent run's events.
fn dump_trace(path: &PathBuf, obs: &ObsHandle) -> Result<(), String> {
    write_file(path, &obs.ring.dump_jsonl())
}

fn write_file(path: &PathBuf, text: &str) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
    }
    std::fs::write(path, text).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// One fresh engine per thread count: runs must not see each other's
/// inserted keys or warmed pool.
fn bench_standalone(
    args: &Args,
    topic: &str,
    label: &str,
    opts: DbOptions,
) -> Result<String, String> {
    let mut runs = Vec::new();
    for &threads in &args.threads {
        let cfg = config_for(args, threads);
        let dir = TempDir::new("workload-baseline");
        let db = Db::open_with_obs(dir.path(), opts.clone(), Obs::enabled(4096))
            .map_err(|e| e.to_string())?;
        load(&db, &cfg).map_err(|e| e.to_string())?;
        let r = run(&Target::Standalone(&db), &cfg).map_err(|e| e.to_string())?;
        db.verify_consistency().map_err(|e| e.to_string())?;
        print_run(label, &r);
        if let Some(path) = &args.metrics {
            dump_metrics(path, db.obs())?;
        }
        if let Some(path) = &args.trace {
            dump_trace(path, db.obs())?;
        }
        runs.push(r);
    }
    Ok(bench_json(topic, &config_for(args, 0), &runs))
}

fn bench_baseline(args: &Args) -> Result<String, String> {
    bench_standalone(args, "workload_baseline", "baseline", db_options())
}

fn bench_pool(args: &Args) -> Result<String, String> {
    bench_standalone(args, "pool_partitioned", "pool", pool_db_options())
}

fn bench_wal(args: &Args) -> Result<String, String> {
    bench_standalone(args, "wal_group_commit", "wal", wal_db_options())
}

fn bench_replication(args: &Args) -> Result<String, String> {
    let mut runs = Vec::new();
    for &threads in &args.threads {
        let cfg = config_for(args, threads);
        let dir = TempDir::new("workload-repl");
        let db = Db::open_with_obs(
            &dir.path().join("primary"),
            db_options(),
            Obs::enabled(4096),
        )
        .map_err(|e| e.to_string())?;
        load(&db, &cfg).map_err(|e| e.to_string())?;
        let pair = ReplPair::create(db, &dir.path().join("standby"), Obs::enabled(4096))
            .map_err(|e| e.to_string())?;
        // `--progress`: while run() drives traffic, a sampler thread polls
        // the standby's lag gauges and applied watermark, printing a line
        // whenever they move.
        let r = if args.progress {
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                let standby = &pair.standby;
                let sampler = s.spawn(|| {
                    let mut last = (u64::MAX, u64::MAX);
                    while !stop.load(Ordering::Acquire) {
                        let lag = &standby.obs().gauge.repl_lag;
                        let now = (lag.bytes.last(), standby.applied_lsn().0);
                        if now != last {
                            eprintln!(
                                "    progress: applied lsn {}, lag {}B ({} LSNs)",
                                now.1,
                                now.0,
                                lag.lsn_delta.last()
                            );
                            last = now;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                });
                let r = run(&Target::Repl(&pair), &cfg);
                stop.store(true, Ordering::Release);
                sampler.join().expect("progress sampler panicked");
                r
            })
        } else {
            run(&Target::Repl(&pair), &cfg)
        }
        .map_err(|e| e.to_string())?;
        if let Some(path) = &args.metrics {
            dump_metrics(path, pair.primary.obs())?;
        }
        if let Some(path) = &args.trace {
            dump_trace(path, pair.primary.obs())?;
        }
        let rows = pair
            .primary
            .verify_consistency()
            .map_err(|e| e.to_string())?
            .rows;
        let standby_rows = pair.standby.count("kv_pk").map_err(|e| e.to_string())?;
        if standby_rows != rows {
            return Err(format!(
                "standby diverged after drain: {standby_rows} keys vs primary {rows} rows"
            ));
        }
        print_run("replication", &r);
        runs.push(r);
    }
    Ok(bench_json("replication", &config_for(args, 0), &runs))
}

fn write_bench(out_dir: &PathBuf, topic: &str, text: &str) -> Result<(), String> {
    validate(text).map_err(|e| format!("self-check of emitted JSON failed: {e}"))?;
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let path = out_dir.join(format!("BENCH_{topic}.json"));
    std::fs::write(&path, text).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("workload: {e}");
            return usage();
        }
    };
    let result = match args.command.as_str() {
        "baseline" => bench_baseline(&args)
            .and_then(|text| write_bench(&args.out, "workload_baseline", &text)),
        "pool" => {
            bench_pool(&args).and_then(|text| write_bench(&args.out, "pool_partitioned", &text))
        }
        "wal" => {
            bench_wal(&args).and_then(|text| write_bench(&args.out, "wal_group_commit", &text))
        }
        "replication" => bench_replication(&args)
            .and_then(|text| write_bench(&args.out, "replication", &text)),
        "all" => bench_baseline(&args)
            .and_then(|text| write_bench(&args.out, "workload_baseline", &text))
            .and_then(|()| bench_pool(&args))
            .and_then(|text| write_bench(&args.out, "pool_partitioned", &text))
            .and_then(|()| bench_wal(&args))
            .and_then(|text| write_bench(&args.out, "wal_group_commit", &text))
            .and_then(|()| bench_replication(&args))
            .and_then(|text| write_bench(&args.out, "replication", &text)),
        "validate" => {
            if args.files.is_empty() {
                return usage();
            }
            let mut res = Ok(());
            for f in &args.files {
                match std::fs::read_to_string(f)
                    .map_err(|e| e.to_string())
                    .and_then(|text| validate(&text).map_err(|e| e.to_string()))
                {
                    Ok(topic) => println!("{}: valid ({topic})", f.display()),
                    Err(e) => {
                        eprintln!("{}: INVALID: {e}", f.display());
                        res = Err("validation failed".to_string());
                    }
                }
            }
            res
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("workload: {e}");
            ExitCode::FAILURE
        }
    }
}
