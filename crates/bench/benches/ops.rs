//! Single-operation latencies: Fetch / Insert / Delete under each locking
//! protocol, at two tree sizes. The per-protocol deltas are the lock-count
//! overheads of E8 expressed as time.

use ariesim_bench::{nkey, rig, seed};
use ariesim_btree::fetch::FetchCond;
use ariesim_btree::LockProtocol;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn protocols() -> [(&'static str, LockProtocol); 3] {
    [
        ("im-data-only", LockProtocol::DataOnly),
        ("im-index-specific", LockProtocol::IndexSpecific),
        ("aries-kvl", LockProtocol::KeyValue),
    ]
}

fn bench_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fetch");
    for size in [1_000u32, 100_000] {
        for (name, protocol) in protocols() {
            let r = rig(protocol, false, 8192);
            seed(&r, size);
            let mut i = 0u32;
            g.bench_with_input(
                BenchmarkId::new(name, size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        // One transaction per fetch: includes begin/commit and
                        // lock acquisition/release, like a real point query.
                        let txn = r.tm.begin();
                        let k = nkey((i * 2_654_435_761) % size);
                        let res = r.tree.fetch(&txn, &k.value, FetchCond::Eq).unwrap();
                        r.tm.commit(&txn).unwrap();
                        i = i.wrapping_add(1);
                        res
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_insert_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_then_delete");
    g.sample_size(20);
    for (name, protocol) in protocols() {
        let r = rig(protocol, false, 8192);
        seed(&r, 10_000);
        let mut i = 0u32;
        g.bench_function(name, |b| {
            b.iter(|| {
                let txn = r.tm.begin();
                let k = nkey(20_000_000 + i);
                r.tree.insert(&txn, &k).unwrap();
                r.tree.delete(&txn, &k).unwrap();
                r.tm.commit(&txn).unwrap();
                i += 1;
            })
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan100");
    g.sample_size(20);
    for (name, protocol) in protocols() {
        let r = rig(protocol, false, 8192);
        seed(&r, 50_000);
        let mut start = 0u32;
        g.bench_function(name, |b| {
            b.iter(|| {
                let txn = r.tm.begin();
                let (first, cursor) = r
                    .tree
                    .open_scan(&txn, &nkey(start % 40_000).value, FetchCond::Ge)
                    .unwrap();
                let mut cur = cursor.unwrap();
                let mut n = usize::from(first.is_some());
                while n < 100 {
                    if r.tree.fetch_next(&txn, &mut cur).unwrap().is_none() {
                        break;
                    }
                    n += 1;
                }
                r.tm.commit(&txn).unwrap();
                start = start.wrapping_add(7919);
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fetch, bench_insert_delete, bench_scan);
criterion_main!(benches);
