//! Restart-recovery cost vs log volume (E10 as a Criterion bench): time for
//! the full analysis + redo + undo cycle over crashed states of increasing
//! size. The paper's claims measured here: redo work scales with the log
//! since the dirty-page low-water mark (bounded by checkpoints), and undo
//! with the losers' records.

use ariesim_bench::{nkey, rig, seed};
use ariesim_btree::{BTree, IndexRm, LockProtocol};
use ariesim_common::stats::new_stats;
use ariesim_common::IndexId;
use ariesim_lock::LockManager;
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceRm};
use ariesim_txn::RmRegistry;
use ariesim_wal::{LogManager, LogOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Build a crashed database directory: `committed` committed inserts and
/// `inflight` loser inserts, log flushed, nothing else.
fn crashed_state(committed: u32, inflight: u32) -> (ariesim_common::tmp::TempDir, ariesim_common::PageId) {
    let r = rig(LockProtocol::DataOnly, false, 8192);
    seed(&r, committed);
    let loser = r.tm.begin();
    for i in 0..inflight {
        r.tree.insert(&loser, &nkey(5_000_000 + i)).unwrap();
    }
    r.log.flush_all().unwrap();
    let root = r.tree.root;
    let ariesim_bench::Rig { _dir, .. } = r;
    (_dir, root)
}

fn run_restart(dir: &std::path::Path, root: ariesim_common::PageId) -> Duration {
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.join("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.join("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions { frames: 8192, ..PoolOptions::default() }, stats.clone());
    let locks = Arc::new(LockManager::new(stats.clone()));
    let _ = locks;
    let rms = Arc::new(RmRegistry::new());
    let index_rm = IndexRm::new(pool.clone(), stats.clone());
    rms.register(index_rm.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tree = BTree::new(
        IndexId(1),
        root,
        false,
        LockProtocol::DataOnly,
        pool.clone(),
        Arc::new(LockManager::new(stats.clone())),
        log.clone(),
        stats.clone(),
    );
    index_rm.register_tree(tree);
    let t = Instant::now();
    ariesim_recovery::restart(&log, &pool, &rms, &stats).unwrap();
    t.elapsed()
}

fn bench_restart(c: &mut Criterion) {
    let mut g = c.benchmark_group("restart");
    g.sample_size(10);
    for (label, committed, inflight) in [
        ("1k-committed", 1_000u32, 0u32),
        ("10k-committed", 10_000, 0),
        ("10k+1k-losers", 10_000, 1_000),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(committed, inflight),
            |b, &(committed, inflight)| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        // Fresh crashed state per iteration: recovery mutates
                        // the log (CLRs) and pages.
                        let (dir, root) = crashed_state(committed, inflight);
                        total += run_restart(dir.path(), root);
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_restart);
criterion_main!(benches);
