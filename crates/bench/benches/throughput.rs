//! Multi-threaded committed-operation throughput: ARIES/IM vs the ARIES/KVL
//! baseline, uniform and duplicate-heavy (E9 under the Criterion protocol —
//! the `experiments concurrency` subcommand prints the same comparison as a
//! table).

use ariesim_bench::{rig, run_workload, WorkloadSpec};
use ariesim_btree::LockProtocol;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("mixed_workload");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for duplicates in [false, true] {
        for (name, protocol) in [
            ("im-data-only", LockProtocol::DataOnly),
            ("aries-kvl", LockProtocol::KeyValue),
        ] {
            for threads in [1u32, 4] {
                let id = format!(
                    "{name}/{}/{}t",
                    if duplicates { "dups" } else { "uniform" },
                    threads
                );
                g.throughput(Throughput::Elements(1));
                g.bench_with_input(BenchmarkId::from_parameter(id), &threads, |b, &threads| {
                    b.iter_custom(|iters| {
                        // One workload burst per sample; report time per
                        // committed op scaled to the requested iters.
                        let r = rig(protocol, false, 2048);
                        let res = run_workload(
                            &r,
                            WorkloadSpec {
                                threads,
                                duration: Duration::from_millis(200),
                                read_pct: 60,
                                values: 64,
                                duplicates,
                                coarse_tree_latch: false,
                            },
                        );
                        let per_op = Duration::from_secs_f64(
                            1.0 / res.ops_per_sec.max(1.0),
                        );
                        per_op * iters as u32
                    })
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
