//! E12: the latch-vs-lock pathlength ratio the paper's design leans on
//! ("Acquiring and releasing a latch costs tens of instructions compared to
//! the hundreds of instructions it costs to acquire and release a lock",
//! §3). Measures an uncontended page fix+S-latch+release against an
//! uncontended lock request+release, plus the tree-latch instant
//! acquisition used by POSC establishment.

use ariesim_bench::{nkey, rig, seed};
use ariesim_btree::LockProtocol;
use ariesim_lock::{LockDuration, LockMode, LockName};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_latch_vs_lock(c: &mut Criterion) {
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 10);
    let page = r.tree.leaf_for_value(&nkey(0).value).unwrap();

    c.bench_function("page_latch_s", |b| {
        b.iter(|| {
            let g = r.pool.fix_s(page).unwrap();
            std::hint::black_box(g.page_lsn())
        })
    });

    c.bench_function("page_latch_x", |b| {
        b.iter(|| {
            let g = r.pool.fix_x(page).unwrap();
            std::hint::black_box(g.page_lsn())
        })
    });

    let txn = r.tm.begin();
    let name = LockName::Record(nkey(0).rid);
    c.bench_function("lock_request_release", |b| {
        b.iter(|| {
            r.locks
                .request(txn.id, name.clone(), LockMode::S, LockDuration::Manual, false)
                .unwrap();
            r.locks.release(txn.id, &name);
        })
    });

    c.bench_function("lock_instant", |b| {
        b.iter(|| {
            r.locks
                .request(
                    txn.id,
                    name.clone(),
                    LockMode::X,
                    LockDuration::Instant,
                    false,
                )
                .unwrap();
        })
    });
    drop(txn);
}

criterion_group!(benches, bench_latch_vs_lock);
criterion_main!(benches);
