//! SMO costs: what one page split (nested top action, bottom-up propagation,
//! dummy CLR) and one page deletion cost end to end, and the bulk-load rate
//! they sustain. Complements the E13 concurrency ablation — here the
//! question is raw pathlength, not interference.

use ariesim_bench::{nkey, rig, seed};
use ariesim_btree::LockProtocol;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_bulk_insert_with_splits(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulk");
    g.sample_size(10);
    g.bench_function("insert_10k_sequential", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let r = rig(LockProtocol::DataOnly, false, 8192);
                let t = Instant::now();
                let txn = r.tm.begin();
                for i in 0..10_000u32 {
                    r.tree.insert(&txn, &nkey(i)).unwrap();
                }
                r.tm.commit(&txn).unwrap();
                total += t.elapsed();
            }
            total
        })
    });
    g.bench_function("delete_10k_to_empty", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let r = rig(LockProtocol::DataOnly, false, 8192);
                seed(&r, 10_000);
                let t = Instant::now();
                let txn = r.tm.begin();
                for i in 0..10_000u32 {
                    r.tree.delete(&txn, &nkey(i)).unwrap();
                }
                r.tm.commit(&txn).unwrap();
                total += t.elapsed();
            }
            total
        })
    });
    g.finish();
}

fn bench_single_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("smo");
    g.sample_size(10);
    g.bench_function("one_leaf_split", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                // A leaf one key short of splitting; insert the straw.
                let r = rig(LockProtocol::DataOnly, false, 8192);
                seed(&r, 339);
                let splits0 = r.stats.snapshot().smo_splits;
                let txn = r.tm.begin();
                let mut i = 0u32;
                // Fill to the brink without timing.
                loop {
                    let before = r.stats.snapshot().smo_splits;
                    if before > splits0 {
                        break;
                    }
                    let t = Instant::now();
                    r.tree.insert(&txn, &nkey(1_000 + i)).unwrap();
                    let dt = t.elapsed();
                    if r.stats.snapshot().smo_splits > splits0 {
                        total += dt; // the insert that paid for the split
                        break;
                    }
                    i += 1;
                }
                r.tm.commit(&txn).unwrap();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bulk_insert_with_splits, bench_single_split);
criterion_main!(benches);
