//! The crash-recovery torture harness.
//!
//! Drives a seeded, deterministic mixed workload (inserts causing splits, a
//! rolled-back transaction spanning an SMO, deletes emptying pages, a fuzzy
//! checkpoint, a pool flush, and a loser left in flight), enumerates every
//! [`ariesim_fault`] crash point the workload reaches, then re-runs the
//! workload once per point with that point armed: the run crashes there,
//! restart recovery runs, and the recovered database is checked against a
//! trace-derived oracle:
//!
//! * **(a)** every key of every committed transaction is present;
//! * **(b)** every key touched only by uncommitted transactions is absent;
//! * **(c)** `verify_consistency` passes — B+-tree structural invariants
//!   hold and heap/index agree exactly;
//! * **(d)** the observability monitor reports zero redo traversals (redo
//!   stayed page-oriented) and no latch-protocol violations.
//!
//! A second phase crashes *inside recovery itself*: the harness builds a
//! crash image with dirty pages and a loser, records every point reached by
//! restart, and for each one crashes mid-recovery and recovers again —
//! ARIES restart must be restartable.
//!
//! The oracle needs no guessing about the ambiguous crash-during-commit
//! window: a transaction counts as committed exactly when its Commit record
//! is in the *recovered* log, which is recovery's own criterion.

use crate::XorShift;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Error, Lsn, Result};
use ariesim_db::{Db, DbOptions, FetchCond, Row};
use ariesim_fault as fault;
use ariesim_obs::{recovery_phase, Obs, ObsHandle};
use ariesim_repl::ReplPair;
use ariesim_wal::RecordKind;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Workload trace
// ---------------------------------------------------------------------------

/// One data operation on the torture table.
#[derive(Clone, Debug)]
pub enum Op {
    Insert(u32),
    Delete(u32),
}

/// How a trace transaction ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnKind {
    Commit,
    Rollback,
    /// Left in flight with its records forced to the log: the loser restart
    /// must roll back.
    LeaveOpen,
}

/// One step of the scripted workload.
#[derive(Clone, Debug)]
pub enum Step {
    Txn { kind: TxnKind, ops: Vec<Op> },
    Checkpoint,
    FlushPool,
    /// One synchronous background-writer pass (`BufferPool::bg_tick`), run
    /// on the harness thread so the `pool.bgwriter.*` crash points fire
    /// deterministically under the thread-scoped fault registry.
    BgWriterTick,
}

/// Shuffled `Insert` ops for key numbers `lo..hi`.
fn perm_ops(rng: &mut XorShift, lo: u32, hi: u32) -> Vec<Op> {
    let mut v: Vec<u32> = (lo..hi).collect();
    for i in (1..v.len()).rev() {
        let j = rng.below((i + 1) as u32) as usize;
        v.swap(i, j);
    }
    v.into_iter().map(Op::Insert).collect()
}

/// The standard torture trace. Sized so that (with [`db_options`]'s small
/// pool and the padded keys below) the workload provably crosses every SMO
/// boundary: leaf splits with rechaining, a split inside a transaction that
/// rolls back (dummy-CLR skip during undo), page deletions up the left edge,
/// dirty-page eviction, a fuzzy checkpoint, and an in-flight loser.
pub fn standard_trace(seed: u64) -> Vec<Step> {
    let mut rng = XorShift(seed | 1);
    let mut perm = |lo: u32, hi: u32| -> Vec<Op> { perm_ops(&mut rng, lo, hi) };
    vec![
        Step::Txn {
            kind: TxnKind::Commit,
            ops: perm(0, 140),
        },
        Step::Txn {
            kind: TxnKind::Commit,
            ops: perm(140, 300),
        },
        Step::Checkpoint,
        Step::Txn {
            kind: TxnKind::Rollback,
            ops: perm(300, 340),
        },
        // Background-writer pass while many pages are dirty: reaches the
        // `pool.bgwriter.*` crash points (mid-batch, between force and
        // write-back, after write-back) with real rollback state on disk.
        Step::BgWriterTick,
        Step::FlushPool,
        Step::Txn {
            kind: TxnKind::Commit,
            ops: (0..130).map(Op::Delete).collect(),
        },
        // Refill the emptied low range: these land in the leftmost leaf,
        // whose split — a leaf WITH a right neighbour — exercises the
        // next-pointer rechain window (`smo.split.rechained`), which
        // rightmost-leaf splits never do.
        Step::Txn {
            kind: TxnKind::Commit,
            ops: perm(0, 130),
        },
        Step::Txn {
            kind: TxnKind::LeaveOpen,
            ops: perm(400, 430),
        },
    ]
}

/// The replication torture trace, plus the step index at which the standby
/// is forked. The pre-fork phase commits a base population (shipped as base
/// backup); the post-fork phase commits, rolls back, deletes, and leaves a
/// loser in flight — all of it shipped chunk by chunk and, at the end,
/// survived through promotion.
pub fn repl_trace(seed: u64) -> (Vec<Step>, usize) {
    let mut rng = XorShift(seed | 3);
    let trace = vec![
        // Phase A (pre-fork): the base backup's contents.
        Step::Txn {
            kind: TxnKind::Commit,
            ops: perm_ops(&mut rng, 0, 120),
        },
        // ---- standby forked here ----
        Step::Txn {
            kind: TxnKind::Commit,
            ops: perm_ops(&mut rng, 120, 200),
        },
        // A checkpoint whose master-record pointer must ship out of band.
        Step::Checkpoint,
        Step::Txn {
            kind: TxnKind::Rollback,
            ops: perm_ops(&mut rng, 300, 330),
        },
        Step::Txn {
            kind: TxnKind::Commit,
            ops: (0..40).map(Op::Delete).collect(),
        },
        Step::Txn {
            kind: TxnKind::LeaveOpen,
            ops: perm_ops(&mut rng, 400, 420),
        },
    ];
    (trace, 1)
}

/// Indexed key for trace key number `n`: padded so a leaf holds ~100 keys
/// and the trace's 300 inserts split several times.
pub fn key_of(n: u32) -> Vec<u8> {
    format!("k{n:06}-{:-<40}", "").into_bytes()
}

fn row_of(n: u32) -> Row {
    Row::new(vec![
        key_of(n),
        format!("payload-{n}-{:x<160}", "").into_bytes(),
    ])
}

/// Every key number the trace touches (for presence/absence spot checks).
pub fn touched_keys(trace: &[Step]) -> BTreeSet<u32> {
    let mut s = BTreeSet::new();
    for step in trace {
        if let Step::Txn { ops, .. } = step {
            for op in ops {
                match op {
                    Op::Insert(n) | Op::Delete(n) => {
                        s.insert(*n);
                    }
                }
            }
        }
    }
    s
}

/// Pool sized small enough that the workload's working set forces dirty
/// evictions (the `pool.evict.*` crash points), large enough for the deepest
/// simultaneous pin chain.
pub fn db_options() -> DbOptions {
    DbOptions {
        frames: 12,
        ..DbOptions::default()
    }
}

/// Open the database and run DDL. Runs with hooks cold (DDL catalog
/// persistence is force-written outside the log discipline; crashing there
/// is not a recoverable scenario by design) — the caller activates the
/// fault registry afterwards.
pub fn prologue(dir: &Path) -> Result<Arc<Db>> {
    let db = Db::open(dir, db_options())?;
    db.create_table("t", 2)?;
    db.create_index("t_pk", "t", 0, true)?;
    Ok(db)
}

/// Execute the trace. Appends `(txn_id, step_index)` to `started` at each
/// begin so the oracle can map recovered Commit records back to trace
/// transactions even if the run crashes mid-step. Returns the engine (for
/// the harness to crash or inspect) on completion.
pub fn drive_steps(
    db: Arc<Db>,
    trace: &[Step],
    started: &mut Vec<(u64, usize)>,
) -> Result<Arc<Db>> {
    for (idx, step) in trace.iter().enumerate() {
        match step {
            Step::Checkpoint => {
                db.checkpoint()?;
            }
            Step::FlushPool => {
                db.pool.flush_all()?;
            }
            Step::BgWriterTick => {
                db.pool.bg_tick()?;
            }
            Step::Txn { kind, ops } => {
                let txn = db.begin();
                started.push((txn.id.0, idx));
                for op in ops {
                    match op {
                        Op::Insert(n) => {
                            db.insert_row(&txn, "t", &row_of(*n))?;
                        }
                        Op::Delete(n) => {
                            let (rid, _) = db
                                .fetch_via(&txn, "t_pk", &key_of(*n), FetchCond::Eq)?
                                .ok_or_else(|| {
                                    Error::Internal(format!("trace deletes absent key {n}"))
                                })?;
                            db.delete_row(&txn, "t", rid)?;
                        }
                    }
                }
                match kind {
                    TxnKind::Commit => db.commit(&txn)?,
                    TxnKind::Rollback => db.rollback(&txn)?,
                    TxnKind::LeaveOpen => db.log.flush_all()?,
                }
            }
        }
    }
    Ok(db)
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// Keys that must exist after recovery: replay, in execution order, the ops
/// of every trace transaction whose Commit record made it into the recovered
/// log. (That is recovery's own commit criterion, so the ambiguous
/// crash-during-commit window resolves identically for oracle and engine.)
pub fn expected_keys(db: &Db, trace: &[Step], started: &[(u64, usize)]) -> BTreeSet<u32> {
    let committed: BTreeSet<u64> = db
        .log
        .scan(Lsn::NULL)
        .filter_map(|r| r.ok())
        .filter(|r| r.kind == RecordKind::Commit)
        .map(|r| r.txn.0)
        .collect();
    let mut keys = BTreeSet::new();
    for &(txn_id, idx) in started {
        if !committed.contains(&txn_id) {
            continue;
        }
        if let Step::Txn { ops, .. } = &trace[idx] {
            for op in ops {
                match op {
                    Op::Insert(n) => {
                        keys.insert(*n);
                    }
                    Op::Delete(n) => {
                        keys.remove(n);
                    }
                }
            }
        }
    }
    keys
}

/// Check the four recovery guarantees against the oracle. `Err` carries a
/// human-readable description of the first violation.
pub fn verify_recovered(
    db: &Arc<Db>,
    expected: &BTreeSet<u32>,
    touched: &BTreeSet<u32>,
) -> std::result::Result<(), String> {
    // (c) structure + heap/index agreement.
    let report = db
        .verify_consistency()
        .map_err(|e| format!("consistency check failed: {e}"))?;
    if report.rows != expected.len() {
        return Err(format!(
            "row count mismatch: expected {}, recovered {}",
            expected.len(),
            report.rows
        ));
    }
    // (d) page-oriented redo and clean latch protocol throughout recovery.
    let mon = db.pool.obs().monitor.snapshot();
    if !mon.clean() {
        return Err(format!("monitor violations after recovery: {mon:?}"));
    }
    // (a) + (b): every touched key present iff the oracle says so.
    let txn = db.begin();
    for &n in touched {
        let found = db
            .fetch_via(&txn, "t_pk", &key_of(n), FetchCond::Eq)
            .map_err(|e| format!("fetch of key {n}: {e}"))?
            .is_some();
        let want = expected.contains(&n);
        if found != want {
            return Err(format!(
                "key {n}: {} after recovery but oracle says {}",
                if found { "present" } else { "absent" },
                if want { "present" } else { "absent" }
            ));
        }
    }
    db.commit(&txn).map_err(|e| format!("verify txn commit: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The torture runner
// ---------------------------------------------------------------------------

/// Runner knobs.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    pub seed: u64,
    /// Bounded enumeration for CI: first hit of each point only, forced-tail
    /// variants only for the SMO windows.
    pub quick: bool,
    /// Print one line per run.
    pub verbose: bool,
    /// After the matrix, recover the pristine crash image once more with
    /// live progress gauges sampled to stdout (`--progress`).
    pub progress: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 0x5eed_ca5e,
            quick: false,
            verbose: false,
            progress: false,
        }
    }
}

/// Outcome of one armed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub point: String,
    /// "flushed" | "forced" | "recovery" | "repl".
    pub mode: &'static str,
    /// Which hit of the point was armed.
    pub hit: u64,
    /// Whether the armed point actually fired.
    pub fired: bool,
    pub error: Option<String>,
}

/// Aggregate result of a torture run.
#[derive(Debug, Default)]
pub struct TortureReport {
    /// Distinct crash-point names enumerated (workload + recovery phases).
    pub points: Vec<String>,
    pub runs: Vec<RunResult>,
    pub elapsed: Duration,
}

impl TortureReport {
    pub fn failures(&self) -> Vec<&RunResult> {
        self.runs.iter().filter(|r| r.error.is_some()).collect()
    }

    pub fn crashes(&self) -> usize {
        self.runs.iter().filter(|r| r.fired).count()
    }

    pub fn ok(&self) -> bool {
        self.runs.iter().all(|r| r.error.is_none())
    }
}

/// Copy a database directory file-by-file (crash images are flat).
pub fn copy_dir(src: &Path, dst: &Path) -> Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}

/// One workload-phase run: arm `point` at `hit`, drive the trace to the
/// crash, recover, verify.
fn workload_run(
    point: &str,
    hit: u64,
    forced: bool,
    trace: &[Step],
    touched: &BTreeSet<u32>,
) -> Result<RunResult> {
    let dir = TempDir::new("torture-run");
    let db = prologue(dir.path())?;
    if forced {
        let log = db.log.clone();
        fault::set_pre_crash_hook(move || {
            let _ = log.flush_all();
        });
        fault::arm_forced(point, hit);
    } else {
        fault::arm(point, hit);
    }
    fault::activate();
    let mut started = Vec::new();
    let out = fault::run_to_crash(|| drive_steps(db, trace, &mut started));
    fault::disarm();
    fault::clear_pre_crash_hook();
    let mut error = None;
    let fired = match out {
        fault::Outcome::Crashed(sig) => {
            debug_assert_eq!(sig.point, point);
            true
        }
        fault::Outcome::Completed(r) => {
            match r {
                Ok(db) => drop(db.crash()), // unreached: crash at the end instead
                Err(e) => error = Some(format!("workload error: {e}")),
            }
            false
        }
    };
    if error.is_none() {
        match Db::open(dir.path(), db_options()) {
            Err(e) => error = Some(format!("recovery failed: {e}")),
            Ok(db) => {
                let expected = expected_keys(&db, trace, &started);
                error = verify_recovered(&db, &expected, touched).err();
            }
        }
    }
    Ok(RunResult {
        point: point.to_string(),
        mode: if forced { "forced" } else { "flushed" },
        hit,
        fired,
        error,
    })
}

/// The post-fork half of the replication scenario, run on the harness
/// thread (crash arming is thread-scoped, so the shipper and the standby's
/// ingest/apply are pumped inline, not on a pumper thread): fork a standby
/// of `primary`, drive the post-fork trace steps with a full
/// ship-ingest-apply drain after each, then fail the primary over and
/// promote. Extends `started` with `(txn_id, combined-trace index)` as it
/// goes, so the oracle survives a crash anywhere inside.
fn drive_repl_scenario(
    primary: Arc<Db>,
    standby_dir: &Path,
    trace: &[Step],
    fork_at: usize,
    started: &mut Vec<(u64, usize)>,
) -> Result<Arc<Db>> {
    let pair = ReplPair::create(primary, standby_dir, ariesim_obs::Obs::disabled())?;
    for (i, step) in trace[fork_at..].iter().enumerate() {
        let mut tmp = Vec::new();
        drive_steps(pair.primary.clone(), std::slice::from_ref(step), &mut tmp)?;
        started.extend(tmp.into_iter().map(|(t, _)| (t, fork_at + i)));
        pair.sync()?;
    }
    let (primary, standby, _shipper) = pair.into_parts();
    drop(primary);
    standby.promote()
}

/// One replication-phase run: drive the pre-fork trace cold, arm `point`
/// at `hit`, run the fork/ship/apply/promote scenario to the crash, then
/// recover the standby's directory and verify it against the oracle — the
/// standby's own recovered log decides which transactions count as
/// committed, exactly as an unplanned failover would.
fn repl_run(
    point: &str,
    hit: u64,
    trace: &[Step],
    fork_at: usize,
    touched: &BTreeSet<u32>,
) -> Result<RunResult> {
    let dir = TempDir::new("torture-repl");
    let standby_dir = dir.path().join("standby");
    let db = prologue(&dir.path().join("primary"))?;
    let mut started = Vec::new();
    let db = drive_steps(db, &trace[..fork_at], &mut started)?;
    fault::arm(point, hit);
    fault::activate();
    let out = fault::run_to_crash(|| {
        drive_repl_scenario(db, &standby_dir, trace, fork_at, &mut started)
    });
    fault::disarm();
    let mut error = None;
    let fired = match out {
        fault::Outcome::Crashed(sig) => {
            debug_assert_eq!(sig.point, point);
            true
        }
        fault::Outcome::Completed(r) => {
            match r {
                // Completed without firing: fail the *promoted* engine too
                // and verify its recovery below.
                Ok(promoted) => drop(promoted.crash()),
                Err(e) => error = Some(format!("replication scenario error: {e}")),
            }
            false
        }
    };
    if error.is_none() {
        match Db::open(&standby_dir, db_options()) {
            Err(e) => error = Some(format!("standby recovery failed: {e}")),
            Ok(sdb) => {
                let expected = expected_keys(&sdb, trace, &started);
                error = verify_recovered(&sdb, &expected, touched).err();
            }
        }
    }
    Ok(RunResult {
        point: point.to_string(),
        mode: "repl",
        hit,
        fired,
        error,
    })
}

/// Enumerate the crash points the standard workload (plus the restart of its
/// crash image) reaches, without arming any of them. One record pass, no
/// armed runs: this is the ground truth for `arieslint --crash-points`.
pub fn list_points(cfg: &TortureConfig) -> Result<Vec<(String, u64)>> {
    let _x = fault::exclusive();
    let trace = standard_trace(cfg.seed);
    let dir = TempDir::new("torture-list");
    let db = prologue(dir.path())?;
    fault::record();
    fault::activate();
    let mut started = Vec::new();
    let db = drive_steps(db, &trace, &mut started)?;
    fault::disarm();
    let mut points: Vec<(String, u64)> = fault::recorded()
        .into_iter()
        .map(|(n, h)| (n.to_string(), h))
        .collect();
    let image = db.crash();
    let recdir = dir.path().join("rec");
    copy_dir(&image, &recdir)?;
    fault::record();
    fault::activate();
    let db = Db::open(&recdir, db_options())?;
    fault::disarm();
    drop(db);
    for (name, hits) in fault::recorded() {
        match points.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => *h += hits,
            None => points.push((name.to_string(), hits)),
        }
    }

    // The replication scenario reaches the ship/ingest/apply/promote points
    // none of the above can: fork a standby mid-trace, drain the channel
    // after every step, promote at the end.
    let (rtrace, fork_at) = repl_trace(cfg.seed);
    let rdir = TempDir::new("torture-list-repl");
    let db = prologue(&rdir.path().join("primary"))?;
    let mut rstarted = Vec::new();
    let db = drive_steps(db, &rtrace[..fork_at], &mut rstarted)?;
    fault::record();
    fault::activate();
    let promoted = drive_repl_scenario(
        db,
        &rdir.path().join("standby"),
        &rtrace,
        fork_at,
        &mut rstarted,
    )?;
    fault::disarm();
    drop(promoted);
    for (name, hits) in fault::recorded() {
        match points.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => *h += hits,
            None => points.push((name.to_string(), hits)),
        }
    }
    points.sort();
    Ok(points)
}

/// Print one progress line when the recovery gauges moved. The restart
/// thread's gauge stores are relaxed and a sample may catch adjacent
/// instants, so within one phase a sample that would step the redo LSN or
/// page count *backwards* is discarded as stale — the printed sequence is
/// monotone per phase by construction.
fn print_recovery_sample(obs: &ObsHandle, last: &mut Option<(u64, u64, u64, u64, u64)>) {
    let r = &obs.gauge.recovery;
    let now = (
        r.phase.last(),
        r.current_lsn.last(),
        r.target_lsn.last(),
        r.pages_redone.last(),
        r.losers_remaining.last(),
    );
    if let Some(prev) = *last {
        if now == prev {
            return;
        }
        if now.0 == prev.0 && (now.1 < prev.1 || now.3 < prev.3) {
            return; // stale cross-gauge read within a phase
        }
    }
    println!(
        "    recovery: phase {:<8} lsn {}/{} pages_redone {} losers_remaining {}",
        recovery_phase::name(now.0),
        now.1,
        now.2,
        now.3,
        now.4
    );
    *last = Some(now);
}

/// Recover a crash image once with an enabled obs domain, sampling the
/// live recovery-progress gauges from a second thread (the `--progress`
/// surface). A final synchronous sample guarantees at least one line even
/// when recovery finishes between two sampler wakeups.
pub fn recover_with_progress(image: &Path) -> Result<()> {
    let obs = Obs::enabled(4096);
    let stop = AtomicBool::new(false);
    let db = std::thread::scope(|s| {
        let sampler_obs = obs.clone();
        let stop = &stop;
        let sampler = s.spawn(move || {
            let mut last = None;
            while !stop.load(Ordering::Acquire) {
                print_recovery_sample(&sampler_obs, &mut last);
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let db = Db::open_with_obs(image, db_options(), obs.clone());
        stop.store(true, Ordering::Release);
        sampler.join().expect("progress sampler panicked");
        db
    })?;
    print_recovery_sample(&obs, &mut None);
    let mon = db.pool.obs().monitor.snapshot();
    if !mon.clean() {
        return Err(Error::Internal(format!(
            "monitor violations during progress recovery: {mon:?}"
        )));
    }
    Ok(())
}

/// Full torture run. Must not be called while holding [`fault::exclusive`]
/// (the runner takes it itself).
pub fn run_torture(cfg: &TortureConfig) -> Result<TortureReport> {
    let _x = fault::exclusive();
    let start = Instant::now();
    let trace = standard_trace(cfg.seed);
    let touched = touched_keys(&trace);
    let mut report = TortureReport::default();

    // ---- Phase 0: record every point the workload reaches ----------------
    let dir0 = TempDir::new("torture-record");
    let db = prologue(dir0.path())?;
    fault::record();
    fault::activate();
    let mut started0 = Vec::new();
    let db = drive_steps(db, &trace, &mut started0)?;
    fault::disarm();
    let workload_points = fault::recorded();
    let snap = db.stats.snapshot();
    if snap.smo_splits == 0 || snap.smo_page_deletes == 0 {
        return Err(Error::Internal(format!(
            "torture workload failed to exercise SMOs (splits {}, page deletes {})",
            snap.smo_splits, snap.smo_page_deletes
        )));
    }
    let image = db.crash();

    // Preserve the pristine crash image (losers in flight, dirty pages
    // lost) for the recovery-phase enumeration: every later open of a copy
    // mutates it.
    let scratch = TempDir::new("torture-scratch");
    let pristine = scratch.path().join("pristine");
    copy_dir(&image, &pristine)?;

    // ---- Phase 1: crash at every workload point --------------------------
    for (name, hits) in &workload_points {
        report.points.push(name.to_string());
        let mut variants: Vec<(u64, bool)> = vec![(1, false)];
        if !cfg.quick && *hits > 1 {
            variants.push((*hits, false));
        }
        // Forced-tail (whole log tail durable at the crash instant) is the
        // adversarial case for the SMO windows: the partial SMO's records
        // ARE in the log. Never valid for wal.* points (the pre-crash hook
        // re-enters the log manager).
        if !name.starts_with("wal.") && (!cfg.quick || name.starts_with("smo.")) {
            variants.push((1, true));
        }
        for (hit, forced) in variants {
            let run = workload_run(name, hit, forced, &trace, &touched)?;
            if cfg.verbose {
                println!(
                    "  {:-<44} {:>7} hit {:>3}  {}",
                    format!("{} ", run.point),
                    run.mode,
                    run.hit,
                    match (&run.error, run.fired) {
                        (Some(e), _) => format!("FAIL: {e}"),
                        (None, true) => "crashed, recovered ok".to_string(),
                        (None, false) => "unfired, recovered ok".to_string(),
                    }
                );
            }
            report.runs.push(run);
        }
    }

    // ---- Phase 2: crash inside recovery itself ---------------------------
    // Record the points restart reaches on the pristine image.
    let recdir = scratch.path().join("rec-record");
    copy_dir(&pristine, &recdir)?;
    fault::record();
    fault::activate();
    let db = Db::open(&recdir, db_options())?;
    fault::disarm();
    let recovery_points = fault::recorded();
    let expected0 = expected_keys(&db, &trace, &started0);
    if let Some(e) = verify_recovered(&db, &expected0, &touched).err() {
        return Err(Error::Internal(format!("baseline recovery failed: {e}")));
    }
    drop(db);

    for (i, (name, _)) in recovery_points.iter().enumerate() {
        if !report.points.iter().any(|p| p == name) {
            report.points.push(name.to_string());
        }
        let d = scratch.path().join(format!("rec-{i}"));
        copy_dir(&pristine, &d)?;
        fault::arm(name, 1);
        fault::activate();
        let out = fault::run_to_crash(|| Db::open(&d, db_options()));
        fault::disarm();
        let mut error = None;
        let fired = match out {
            fault::Outcome::Crashed(_) => true,
            fault::Outcome::Completed(r) => {
                match r {
                    Ok(db) => drop(db),
                    Err(e) => error = Some(format!("first recovery error: {e}")),
                }
                false
            }
        };
        if error.is_none() {
            // Recover again from the mid-recovery crash; restart must be
            // restartable (repeating history is idempotent, CLR chains
            // bound the undo).
            match Db::open(&d, db_options()) {
                Err(e) => error = Some(format!("re-recovery failed: {e}")),
                Ok(db) => {
                    error = verify_recovered(&db, &expected0, &touched).err();
                }
            }
        }
        let run = RunResult {
            point: name.to_string(),
            mode: "recovery",
            hit: 1,
            fired,
            error,
        };
        if cfg.verbose {
            println!(
                "  {:-<44} {:>7} hit {:>3}  {}",
                format!("{} ", run.point),
                run.mode,
                run.hit,
                match (&run.error, run.fired) {
                    (Some(e), _) => format!("FAIL: {e}"),
                    (None, true) => "crashed mid-recovery, re-recovered ok".to_string(),
                    (None, false) => "unfired, recovered ok".to_string(),
                }
            );
        }
        report.runs.push(run);
    }

    // ---- Phase 3: crash inside the replication machinery -----------------
    // Record the points the fork/ship/apply/promote scenario reaches, check
    // that the completed scenario satisfies the failover oracle, then crash
    // at each replication-specific point and re-verify. Phase 1 already
    // covers the engine-internal points the scenario re-hits.
    let (rtrace, fork_at) = repl_trace(cfg.seed);
    let rtouched = touched_keys(&rtrace);
    let rdir = TempDir::new("torture-repl-record");
    let standby0 = rdir.path().join("standby");
    let db = prologue(&rdir.path().join("primary"))?;
    let mut rstarted = Vec::new();
    let db = drive_steps(db, &rtrace[..fork_at], &mut rstarted)?;
    fault::record();
    fault::activate();
    let promoted = drive_repl_scenario(db, &standby0, &rtrace, fork_at, &mut rstarted)?;
    fault::disarm();
    let repl_points = fault::recorded();
    drop(promoted.crash());
    {
        let sdb = Db::open(&standby0, db_options())?;
        let expected = expected_keys(&sdb, &rtrace, &rstarted);
        if let Err(e) = verify_recovered(&sdb, &expected, &rtouched) {
            return Err(Error::Internal(format!(
                "baseline replication failover failed: {e}"
            )));
        }
    }
    for (name, hits) in &repl_points {
        if !name.starts_with("repl.") && !name.starts_with("wal.ingest") {
            continue;
        }
        if !report.points.iter().any(|p| p == name) {
            report.points.push(name.to_string());
        }
        let mut variants: Vec<u64> = vec![1];
        if !cfg.quick && *hits > 1 {
            variants.push(*hits);
        }
        for hit in variants {
            let run = repl_run(name, hit, &rtrace, fork_at, &rtouched)?;
            if cfg.verbose {
                println!(
                    "  {:-<44} {:>7} hit {:>3}  {}",
                    format!("{} ", run.point),
                    run.mode,
                    run.hit,
                    match (&run.error, run.fired) {
                        (Some(e), _) => format!("FAIL: {e}"),
                        (None, true) => "crashed, failed over ok".to_string(),
                        (None, false) => "unfired, failed over ok".to_string(),
                    }
                );
            }
            report.runs.push(run);
        }
    }

    // ---- Optional: one more recovery with live progress gauges -----------
    if cfg.progress {
        println!("  recovery progress over the pristine crash image:");
        let d = scratch.path().join("rec-progress");
        copy_dir(&pristine, &d)?;
        recover_with_progress(&d)?;
    }

    report.elapsed = start.elapsed();
    Ok(report)
}
