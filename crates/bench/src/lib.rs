//! Shared rigs and workload drivers for the benchmark harness.
//!
//! The `experiments` binary (`cargo run --release -p ariesim-bench --bin
//! experiments`) regenerates every figure/table reproduction listed in
//! EXPERIMENTS.md; the Criterion benches under `benches/` measure the same
//! quantities under the Criterion protocol.

pub mod torture;

use ariesim_btree::{BTree, IndexRm, LockProtocol};
use ariesim_common::stats::{new_stats, StatsHandle};
use ariesim_common::tmp::TempDir;
use ariesim_common::{Error, IndexId, IndexKey, PageId, Rid};
use ariesim_lock::LockManager;
use ariesim_obs::{Obs, ObsHandle};
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim_txn::{RmRegistry, TransactionManager};
use ariesim_wal::{LogManager, LogOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A bare-index engine stack: everything but the heap record manager (lock
/// names are synthesized from key RIDs, as data-only locking prescribes).
pub struct Rig {
    pub _dir: TempDir,
    pub stats: StatsHandle,
    pub log: Arc<LogManager>,
    pub pool: Arc<BufferPool>,
    pub locks: Arc<LockManager>,
    pub tm: Arc<TransactionManager>,
    pub tree: Arc<BTree>,
    pub rms: Arc<RmRegistry>,
    pub obs: ObsHandle,
}

/// Build a rig with observability disabled (the default for benchmarks —
/// invariant monitoring stays live either way).
pub fn rig(protocol: LockProtocol, unique: bool, frames: usize) -> Rig {
    rig_with_obs(protocol, unique, frames, Obs::disabled())
}

/// Build a rig whose lock manager, buffer pool, and WAL all share `obs`.
pub fn rig_with_obs(
    protocol: LockProtocol,
    unique: bool,
    frames: usize,
    obs: ObsHandle,
) -> Rig {
    let dir = TempDir::new("bench");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open_with_obs(
            &dir.file("wal"),
            LogOptions::default(),
            stats.clone(),
            obs.clone(),
        )
        .unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new_with_obs(
        disk,
        log.clone(),
        PoolOptions { frames, ..PoolOptions::default() },
        stats.clone(),
        obs.clone(),
    );
    SpaceMap::initialize(&pool).unwrap();
    let locks = Arc::new(LockManager::new_with_obs(stats.clone(), obs.clone()));
    let rms = Arc::new(RmRegistry::new());
    let index_rm = IndexRm::new(pool.clone(), stats.clone());
    rms.register(index_rm.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks.clone(),
        pool.clone(),
        rms.clone(),
        stats.clone(),
    ));
    let txn = tm.begin();
    let root = BTree::create(&txn, IndexId(1), &pool, &log).unwrap();
    tm.commit(&txn).unwrap();
    let tree = BTree::new(
        IndexId(1),
        root,
        unique,
        protocol,
        pool.clone(),
        locks.clone(),
        log.clone(),
        stats.clone(),
    );
    index_rm.register_tree(tree.clone());
    Rig {
        _dir: dir,
        stats,
        log,
        pool,
        locks,
        tm,
        tree,
        rms,
        obs,
    }
}

/// Deterministic key: `n` controls both value ordering and the fake RID.
pub fn nkey(n: u32) -> IndexKey {
    IndexKey::new(
        format!("key-{n:08}").into_bytes(),
        Rid::new(PageId(2_000_000 + n / 60), (n % 60) as u16),
    )
}

/// Key for duplicate-heavy workloads: `value` id + unique rid id.
pub fn dup_key(value: u32, rid: u32) -> IndexKey {
    IndexKey::new(
        format!("val-{value:05}").into_bytes(),
        Rid::new(PageId(3_000_000 + rid / 60), (rid % 60) as u16),
    )
}

/// Seed `n` sequential keys in one committed transaction.
pub fn seed(rig: &Rig, n: u32) {
    let txn = rig.tm.begin();
    for i in 0..n {
        rig.tree.insert(&txn, &nkey(i)).unwrap();
    }
    rig.tm.commit(&txn).unwrap();
}

/// Tiny xorshift for workload generation (no external RNG needed in the
/// harness hot loop).
pub struct XorShift(pub u64);

impl XorShift {
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    pub fn below(&mut self, n: u32) -> u32 {
        (self.next() % n as u64) as u32
    }
}

/// Knobs for the concurrency workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    pub threads: u32,
    pub duration: Duration,
    /// Percentage of operations that are fetches (rest split between insert
    /// and delete).
    pub read_pct: u32,
    /// Number of distinct key *values* the workload touches.
    pub values: u32,
    /// If true, writers insert/delete duplicates of shared values (each
    /// thread with its own RIDs) — the nonunique-index scenario where KVL's
    /// value locks serialize what ARIES/IM's key locks do not.
    pub duplicates: bool,
    /// Serialize every operation behind one global mutex (the coarse-grained
    /// "one big tree latch" strawman for the SMO-concurrency ablation; an
    /// external mutex is used so the real tree latch — which operations take
    /// internally for SMOs — is not re-entered).
    pub coarse_tree_latch: bool,
}

/// Result of a workload run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadResult {
    pub committed_ops: u64,
    pub committed_txns: u64,
    pub deadlocks: u64,
    pub ops_per_sec: f64,
}

/// Drive the mixed workload and report throughput. Each thread owns a
/// disjoint RID space; reads roam the shared committed value range.
pub fn run_workload(r: &Rig, spec: WorkloadSpec) -> WorkloadResult {
    use ariesim_btree::fetch::FetchCond;
    // Seed: one committed instance of every value (rid namespace 9xx_xxx).
    let txn = r.tm.begin();
    for v in 0..spec.values {
        let k = if spec.duplicates {
            dup_key(v, 900_000 + v)
        } else {
            nkey(v * 1000)
        };
        r.tree.insert(&txn, &k).unwrap();
    }
    r.tm.commit(&txn).unwrap();

    let committed_ops = AtomicU64::new(0);
    let committed_txns = AtomicU64::new(0);
    let deadlocks = AtomicU64::new(0);
    let coarse = parking_lot::Mutex::new(());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let r = &r;
            let committed_ops = &committed_ops;
            let committed_txns = &committed_txns;
            let deadlocks = &deadlocks;
            let coarse = &coarse;
            s.spawn(move || {
                let mut rng = XorShift(0x9E37_79B9_7F4A_7C15 ^ (t as u64 + 1));
                let mut live: Vec<IndexKey> = Vec::new(); // my committed keys
                let mut seq = 0u32;
                while start.elapsed() < spec.duration {
                    let txn = r.tm.begin();
                    let mut ok = 0u64;
                    let mut aborted = false;
                    let mut added: Vec<IndexKey> = Vec::new();
                    let mut removed: Vec<usize> = Vec::new();
                    let _coarse = spec.coarse_tree_latch.then(|| coarse.lock());
                    for _ in 0..8 {
                        let roll = rng.below(100);
                        let res = if roll < spec.read_pct {
                            let v = rng.below(spec.values);
                            let value = if spec.duplicates {
                                dup_key(v, 0).value
                            } else {
                                nkey(v * 1000).value
                            };
                            r.tree.fetch(&txn, &value, FetchCond::Ge).map(|_| ())
                        } else if roll.is_multiple_of(2) || live.is_empty() {
                            // Insert a fresh key of mine.
                            seq += 1;
                            let k = if spec.duplicates {
                                dup_key(rng.below(spec.values), t * 1_000_000 + seq)
                            } else {
                                nkey(spec.values * 1000 + t * 10_000_000 + seq)
                            };
                            match r.tree.insert(&txn, &k) {
                                Ok(()) => {
                                    added.push(k);
                                    Ok(())
                                }
                                Err(e) => Err(e),
                            }
                        } else {
                            // Delete one of my committed keys.
                            let i = rng.below(live.len() as u32) as usize;
                            if removed.contains(&i) {
                                continue;
                            }
                            match r.tree.delete(&txn, &live[i]) {
                                Ok(()) => {
                                    removed.push(i);
                                    Ok(())
                                }
                                Err(e) => Err(e),
                            }
                        };
                        match res {
                            Ok(()) => ok += 1,
                            Err(Error::Deadlock { .. }) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                r.tm.rollback(&txn).unwrap();
                                aborted = true;
                                break;
                            }
                            Err(Error::NotFound) => {}
                            Err(e) => panic!("workload: {e}"),
                        }
                    }
                    if !aborted {
                        r.tm.commit(&txn).unwrap();
                        committed_ops.fetch_add(ok, Ordering::Relaxed);
                        committed_txns.fetch_add(1, Ordering::Relaxed);
                        removed.sort_unstable_by(|a, b| b.cmp(a));
                        for i in removed {
                            live.swap_remove(i);
                        }
                        live.extend(added);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let ops = committed_ops.load(Ordering::Relaxed);
    WorkloadResult {
        committed_ops: ops,
        committed_txns: committed_txns.load(Ordering::Relaxed),
        deadlocks: deadlocks.load(Ordering::Relaxed),
        ops_per_sec: ops as f64 / elapsed,
    }
}

/// Pretty-print a named table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<26}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}
