//! Crash-point torture runner.
//!
//! Enumerates every registered crash point a seeded workload reaches,
//! crashes at each one (and inside recovery itself), runs restart recovery,
//! and checks the recovered database against a trace-derived oracle. See
//! `ariesim_bench::torture` for the harness and EXPERIMENTS.md for
//! reference output.
//!
//! Usage: `cargo run --release -p ariesim-bench --bin torture -- [--quick]
//! [--verbose] [--progress] [--seed=N]`

use ariesim_bench::torture::{list_points, run_torture, TortureConfig};

fn main() {
    let mut cfg = TortureConfig::default();
    let mut list_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--verbose" | "-v" => cfg.verbose = true,
            "--progress" => cfg.progress = true,
            "--list-points" => list_only = true,
            s if s.starts_with("--seed=") => match s["--seed=".len()..].parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => {
                    eprintln!("torture: bad seed in {s:?}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "torture [--quick] [--verbose] [--progress] [--seed=N] [--list-points]\n\
                     \n\
                     --quick        bounded enumeration for CI (first hit per point,\n\
                     \u{20}              forced-tail variants only for SMO windows)\n\
                     --verbose      one line per armed run\n\
                     --progress     after the matrix, recover the crash image once\n\
                     \u{20}              more with live phase/LSN/pages gauges printed\n\
                     --seed=N       workload seed (default 0x5eedca5e)\n\
                     --list-points  print `name hits` for every crash point the\n\
                     \u{20}              workload+recovery reaches, without arming any\n\
                     \u{20}              (input for `arieslint --crash-points`)"
                );
                return;
            }
            other => {
                eprintln!("torture: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    if list_only {
        match list_points(&cfg) {
            Ok(points) => {
                for (name, hits) in points {
                    println!("{name} {hits}");
                }
                return;
            }
            Err(e) => {
                eprintln!("torture: harness error: {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "torture: enumerating crash points (seed {:#x}, {} mode)",
        cfg.seed,
        if cfg.quick { "quick" } else { "full" }
    );
    let report = match run_torture(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("torture: harness error: {e}");
            std::process::exit(1);
        }
    };

    let failures = report.failures();
    println!(
        "torture: {} distinct crash points, {} armed runs ({} crashed), \
         {} failures, {:.2}s",
        report.points.len(),
        report.runs.len(),
        report.crashes(),
        failures.len(),
        report.elapsed.as_secs_f64()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!(
                "torture: FAIL {} ({} hit {}): {}",
                f.point,
                f.mode,
                f.hit,
                f.error.as_deref().unwrap_or("?")
            );
        }
        std::process::exit(1);
    }
    if report.points.len() < 25 {
        eprintln!(
            "torture: only {} distinct points enumerated (expected >= 25) — \
             workload no longer reaches the instrumented boundaries",
            report.points.len()
        );
        std::process::exit(1);
    }
}
