//! `foldtrace` — fold a JSONL event-ring dump into a time-attribution
//! report, optionally exporting Chrome `trace_event` JSON.
//!
//! ```sh
//! cargo run -p ariesim-workload --bin workload -- baseline --quick --trace events.jsonl
//! cargo run -p ariesim-bench --bin foldtrace -- events.jsonl
//! cargo run -p ariesim-bench --bin foldtrace -- events.jsonl --chrome trace.json
//! ```
//!
//! The report shows per-kind self time (where commit latency actually
//! went: lock wait, latch wait, WAL append, fsync, page I/O) and the
//! slowest transactions; the Chrome export loads into `chrome://tracing`
//! or Perfetto for flamegraph-style inspection. The dump's header line
//! carries the ring's dropped/torn counts, so the report says explicitly
//! when the attribution is incomplete.

use ariesim_obs::{Attribution, Event};

fn main() {
    let mut path = None;
    let mut chrome = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => match args.next() {
                Some(p) => chrome = Some(p),
                None => {
                    eprintln!("foldtrace: --chrome needs an output path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("foldtrace <events.jsonl> [--chrome OUT.json]");
                return;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string())
            }
            other => {
                eprintln!("foldtrace: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: foldtrace <events.jsonl> [--chrome OUT.json]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("foldtrace: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let attrib = Attribution::from_jsonl(&text);
    if attrib.total_ns() == 0 {
        eprintln!(
            "foldtrace: no span events in {path} — was the dump taken from \
             an enabled obs domain doing real work?"
        );
        std::process::exit(1);
    }
    print!("{}", attrib.render());
    if let Some(out) = chrome {
        let events: Vec<Event> = text.lines().filter_map(Event::parse_json_line).collect();
        if let Err(e) = std::fs::write(&out, ariesim_obs::attrib::chrome_trace(&events)) {
            eprintln!("foldtrace: cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out} (load in chrome://tracing or Perfetto)");
    }
}
