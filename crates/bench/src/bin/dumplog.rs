//! `dumplog` — pretty-print an ariesim write-ahead log.
//!
//! ```sh
//! cargo run -p ariesim-bench --bin dumplog -- /path/to/dbdir/wal [--from LSN]
//! ```
//!
//! Decodes every record's envelope and, for index and heap records, the
//! resource-manager body, showing the backward chains (`prev`), CLR
//! redirections (`undo_next`) and nested-top-action boundaries at a glance —
//! the tool you want when studying Figures 9/10 shapes in a real log.

use ariesim_btree::body::IndexBody;
use ariesim_common::stats::new_stats;
use ariesim_common::Lsn;
use ariesim_record::body::HeapBody;
use ariesim_wal::{CheckpointData, LogManager, LogOptions, LogRecord, RecordKind, RmId};

fn describe_body(rec: &LogRecord) -> String {
    match rec.rm {
        RmId::Index => match IndexBody::decode(&rec.body) {
            Ok(b) => match b {
                IndexBody::InsertKey { key, .. } => format!("InsertKey {key:?}"),
                IndexBody::DeleteKey { key, .. } => format!("DeleteKey {key:?}"),
                IndexBody::PageFormat { level, cells, .. } => {
                    format!("PageFormat level={level} cells={}", cells.len())
                }
                IndexBody::SplitShrink { removed, new_next, .. } => {
                    format!("SplitShrink moved={} new_next={new_next}", removed.len())
                }
                IndexBody::ChainNext { old, new } => format!("ChainNext {old}→{new}"),
                IndexBody::ChainPrev { old, new } => format!("ChainPrev {old}→{new}"),
                IndexBody::AddSeparator { slot, sep, new_child, .. } => {
                    format!("AddSeparator slot={slot} sep={sep:?} child={new_child}")
                }
                IndexBody::RemoveSeparator { slot, child, .. } => {
                    format!("RemoveSeparator slot={slot} child={child}")
                }
                IndexBody::FreePage { level, .. } => format!("FreePage level={level}"),
                IndexBody::RootReplace { new_level, child, .. } => {
                    format!("RootReplace new_level={new_level} child={child}")
                }
                IndexBody::RootCollapse { .. } => "RootCollapse".to_string(),
                IndexBody::PageRestore { free, cells, .. } => {
                    format!("PageRestore free={free} cells={}", cells.len())
                }
            },
            Err(_) => "<index body undecodable>".into(),
        },
        RmId::Heap => match HeapBody::decode(&rec.body) {
            Ok(b) => match b {
                HeapBody::Insert { slot, data, .. } => {
                    format!("HeapInsert slot={} len={}", slot.0, data.len())
                }
                HeapBody::Delete { slot, data, .. } => {
                    format!("HeapDelete slot={} len={}", slot.0, data.len())
                }
                HeapBody::Update { slot, new, .. } => {
                    format!("HeapUpdate slot={} new_len={}", slot.0, new.len())
                }
                HeapBody::Format { table } => format!("HeapFormat {table}"),
                HeapBody::ChainNext { old, new } => format!("HeapChainNext {old}→{new}"),
                HeapBody::Noop => "Noop".into(),
            },
            Err(_) => "<heap body undecodable>".into(),
        },
        RmId::Space => "SpaceMap bit".into(),
        RmId::Txn => match rec.kind {
            RecordKind::CkptEnd => match CheckpointData::decode(rec.lsn, &rec.body) {
                Ok(d) => format!(
                    "CheckpointData dpt={} txns={} max_txn={}",
                    d.dpt.len(),
                    d.txns.len(),
                    d.max_txn_id
                ),
                Err(_) => "<ckpt body undecodable>".into(),
            },
            _ => String::new(),
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: dumplog <wal-file> [--from LSN]");
        std::process::exit(2);
    };
    let mut from = Lsn::NULL;
    if args.next().as_deref() == Some("--from") {
        if let Some(v) = args.next().and_then(|s| s.parse::<u64>().ok()) {
            from = Lsn(v);
        }
    }
    let log = match LogManager::open(
        std::path::Path::new(&path),
        LogOptions::default(),
        new_stats(),
    ) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>10}  {:>6}  {:<9} {:<6} {:>8}  {:>10}  BODY",
        "LSN", "TXN", "KIND", "RM", "PAGE", "PREV/UNXT"
    );
    let mut count = 0u64;
    for rec in log.scan(from) {
        let rec = match rec {
            Ok(r) => r,
            Err(e) => {
                eprintln!("-- log ends with undecodable record: {e}");
                break;
            }
        };
        let link = match rec.kind {
            RecordKind::Clr | RecordKind::DummyClr => format!("↷{}", rec.undo_next_lsn.0),
            _ => format!("↑{}", rec.prev_lsn.0),
        };
        println!(
            "{:>10}  {:>6}  {:<9} {:<6} {:>8}  {:>10}  {}",
            rec.lsn.0,
            rec.txn.0,
            format!("{:?}", rec.kind),
            format!("{:?}", rec.rm),
            format!("{}", rec.page),
            link,
            describe_body(&rec),
        );
        count += 1;
    }
    eprintln!("-- {count} records");
}
