//! `dumplog` — pretty-print or summarize an ariesim write-ahead log.
//!
//! ```sh
//! cargo run -p ariesim-bench --bin dumplog -- /path/to/dbdir/wal [--from LSN]
//! cargo run -p ariesim-bench --bin dumplog -- /path/to/dbdir/wal --summary
//! cargo run -p ariesim-bench --bin dumplog -- /path/to/dbdir/wal --summary --json
//! ```
//!
//! Decodes every record's envelope and, for index and heap records, the
//! resource-manager body, showing the backward chains (`prev`), CLR
//! redirections (`undo_next`) and nested-top-action boundaries at a glance —
//! the tool you want when studying Figures 9/10 shapes in a real log.
//!
//! `--summary` prints aggregate shape instead of individual records: counts
//! by record kind and resource manager, total body bytes, how many
//! transactions have CLR (UndoNxtLSN) chains, and the nested-top-action
//! count (dummy CLRs). `--json` renders the same summary as one JSON object.

use ariesim_btree::body::IndexBody;
use ariesim_common::stats::new_stats;
use ariesim_common::Lsn;
use ariesim_record::body::HeapBody;
use ariesim_wal::{CheckpointData, LogManager, LogOptions, LogRecord, RecordKind, RmId};

fn describe_body(rec: &LogRecord) -> String {
    match rec.rm {
        RmId::Index => match IndexBody::decode(&rec.body) {
            Ok(b) => match b {
                IndexBody::InsertKey { key, .. } => format!("InsertKey {key:?}"),
                IndexBody::DeleteKey { key, .. } => format!("DeleteKey {key:?}"),
                IndexBody::PageFormat { level, cells, .. } => {
                    format!("PageFormat level={level} cells={}", cells.len())
                }
                IndexBody::SplitShrink { removed, new_next, .. } => {
                    format!("SplitShrink moved={} new_next={new_next}", removed.len())
                }
                IndexBody::ChainNext { old, new } => format!("ChainNext {old}→{new}"),
                IndexBody::ChainPrev { old, new } => format!("ChainPrev {old}→{new}"),
                IndexBody::AddSeparator { slot, sep, new_child, .. } => {
                    format!("AddSeparator slot={slot} sep={sep:?} child={new_child}")
                }
                IndexBody::RemoveSeparator { slot, child, .. } => {
                    format!("RemoveSeparator slot={slot} child={child}")
                }
                IndexBody::FreePage { level, .. } => format!("FreePage level={level}"),
                IndexBody::RootReplace { new_level, child, .. } => {
                    format!("RootReplace new_level={new_level} child={child}")
                }
                IndexBody::RootCollapse { .. } => "RootCollapse".to_string(),
                IndexBody::PageRestore { free, cells, .. } => {
                    format!("PageRestore free={free} cells={}", cells.len())
                }
            },
            Err(_) => "<index body undecodable>".into(),
        },
        RmId::Heap => match HeapBody::decode(&rec.body) {
            Ok(b) => match b {
                HeapBody::Insert { slot, data, .. } => {
                    format!("HeapInsert slot={} len={}", slot.0, data.len())
                }
                HeapBody::Delete { slot, data, .. } => {
                    format!("HeapDelete slot={} len={}", slot.0, data.len())
                }
                HeapBody::Update { slot, new, .. } => {
                    format!("HeapUpdate slot={} new_len={}", slot.0, new.len())
                }
                HeapBody::Format { table } => format!("HeapFormat {table}"),
                HeapBody::ChainNext { old, new } => format!("HeapChainNext {old}→{new}"),
                HeapBody::Noop => "Noop".into(),
            },
            Err(_) => "<heap body undecodable>".into(),
        },
        RmId::Space => "SpaceMap bit".into(),
        RmId::Txn => match rec.kind {
            RecordKind::CkptEnd => match CheckpointData::decode(rec.lsn, &rec.body) {
                Ok(d) => format!(
                    "CheckpointData dpt={} txns={} max_txn={}",
                    d.dpt.len(),
                    d.txns.len(),
                    d.max_txn_id
                ),
                Err(_) => "<ckpt body undecodable>".into(),
            },
            _ => String::new(),
        },
    }
}

/// Aggregate shape of a log, as printed by `--summary`.
#[derive(Default)]
struct Summary {
    records: u64,
    body_bytes: u64,
    by_kind: std::collections::BTreeMap<String, u64>,
    by_rm: std::collections::BTreeMap<String, u64>,
    clrs: u64,
    dummy_clrs: u64,
    txns_with_clr_chain: std::collections::BTreeSet<u64>,
    first_lsn: Option<u64>,
    last_lsn: u64,
}

impl Summary {
    fn note(&mut self, rec: &LogRecord) {
        self.records += 1;
        self.body_bytes += rec.body.len() as u64;
        *self.by_kind.entry(format!("{:?}", rec.kind)).or_default() += 1;
        *self.by_rm.entry(format!("{:?}", rec.rm)).or_default() += 1;
        match rec.kind {
            RecordKind::Clr => {
                self.clrs += 1;
                self.txns_with_clr_chain.insert(rec.txn.0);
            }
            RecordKind::DummyClr => {
                self.dummy_clrs += 1;
                self.txns_with_clr_chain.insert(rec.txn.0);
            }
            _ => {}
        }
        self.first_lsn.get_or_insert(rec.lsn.0);
        self.last_lsn = rec.lsn.0;
    }

    fn print_text(&self) {
        println!("records:            {}", self.records);
        println!("body bytes:         {}", self.body_bytes);
        println!(
            "lsn range:          {}..={}",
            self.first_lsn.unwrap_or(0),
            self.last_lsn
        );
        println!("by kind:");
        for (k, n) in &self.by_kind {
            println!("  {k:<12} {n:>8}");
        }
        println!("by resource manager:");
        for (k, n) in &self.by_rm {
            println!("  {k:<12} {n:>8}");
        }
        println!("clrs:               {}", self.clrs);
        println!(
            "nested top actions: {} (dummy CLRs)",
            self.dummy_clrs
        );
        println!(
            "undo chains:        {} transaction(s) with UndoNxtLSN chains",
            self.txns_with_clr_chain.len()
        );
    }

    fn print_json(&self) {
        use ariesim_obs::json::Object;
        let map_json = |m: &std::collections::BTreeMap<String, u64>| {
            let mut o = Object::new();
            for (k, n) in m {
                o.field_u64(k, *n);
            }
            o.finish()
        };
        let mut root = Object::new();
        root.field_u64("records", self.records);
        root.field_u64("body_bytes", self.body_bytes);
        root.field_u64("first_lsn", self.first_lsn.unwrap_or(0));
        root.field_u64("last_lsn", self.last_lsn);
        root.field_raw("by_kind", &map_json(&self.by_kind));
        root.field_raw("by_rm", &map_json(&self.by_rm));
        root.field_u64("clrs", self.clrs);
        root.field_u64("nested_top_actions", self.dummy_clrs);
        root.field_u64("undo_chains", self.txns_with_clr_chain.len() as u64);
        println!("{}", root.finish());
    }
}

fn main() {
    let mut path = None;
    let mut from = Lsn::NULL;
    let mut summary = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--from" => {
                if let Some(v) = args.next().and_then(|s| s.parse::<u64>().ok()) {
                    from = Lsn(v);
                }
            }
            "--summary" => summary = true,
            "--json" => json = true,
            _ if path.is_none() => path = Some(a),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: dumplog <wal-file> [--from LSN] [--summary [--json]]");
        std::process::exit(2);
    };
    // LogManager::open creates missing files; a dump tool must not.
    if !std::path::Path::new(&path).is_file() {
        eprintln!("cannot open {path}: no such file");
        std::process::exit(1);
    }
    let log = match LogManager::open(
        std::path::Path::new(&path),
        LogOptions::default(),
        new_stats(),
    ) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        }
    };
    if summary || json {
        let mut s = Summary::default();
        for rec in log.scan(from) {
            match rec {
                Ok(r) => s.note(&r),
                Err(e) => {
                    eprintln!("-- log ends with undecodable record: {e}");
                    break;
                }
            }
        }
        if json {
            s.print_json();
        } else {
            s.print_text();
        }
        return;
    }
    println!(
        "{:>10}  {:>6}  {:<9} {:<6} {:>8}  {:>10}  BODY",
        "LSN", "TXN", "KIND", "RM", "PAGE", "PREV/UNXT"
    );
    let mut count = 0u64;
    for rec in log.scan(from) {
        let rec = match rec {
            Ok(r) => r,
            Err(e) => {
                eprintln!("-- log ends with undecodable record: {e}");
                break;
            }
        };
        let link = match rec.kind {
            RecordKind::Clr | RecordKind::DummyClr => format!("↷{}", rec.undo_next_lsn.0),
            _ => format!("↑{}", rec.prev_lsn.0),
        };
        println!(
            "{:>10}  {:>6}  {:<9} {:<6} {:>8}  {:>10}  {}",
            rec.lsn.0,
            rec.txn.0,
            format!("{:?}", rec.kind),
            format!("{:?}", rec.rm),
            format!("{}", rec.page),
            link,
            describe_body(&rec),
        );
        count += 1;
    }
    eprintln!("-- {count} records");
}
