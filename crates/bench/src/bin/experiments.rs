//! The experiment harness: regenerates every figure/table reproduction of
//! the ARIES/IM paper. Each subcommand prints the paper's claim and the
//! measured result; EXPERIMENTS.md records a reference run.
//!
//! ```sh
//! cargo run --release -p ariesim-bench --bin experiments -- all
//! cargo run --release -p ariesim-bench --bin experiments -- fig2
//! ```

use ariesim_bench::{nkey, rig_with_obs, row, run_workload, seed, Rig, WorkloadSpec};
use ariesim_btree::fetch::FetchCond;
use ariesim_btree::LockProtocol;
use ariesim_common::stats::StatsSnapshot;
use ariesim_common::Lsn;
use ariesim_lock::{LockDuration, LockMode, LockName};
use ariesim_obs::{Obs, ObsHandle, DEFAULT_RING_CAPACITY};
use ariesim_wal::RecordKind;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Shared observability domain for the whole run when `--obs` is given;
/// `None` means every rig gets a disabled handle (monitors stay live).
static OBS: OnceLock<Option<ObsHandle>> = OnceLock::new();

fn obs_handle() -> ObsHandle {
    match OBS.get().and_then(|o| o.as_ref()) {
        Some(h) => h.clone(),
        None => Obs::disabled(),
    }
}

/// Build a rig wired to the run's observability domain (if any).
fn rig(protocol: LockProtocol, unique: bool, frames: usize) -> Rig {
    rig_with_obs(protocol, unique, frames, obs_handle())
}

/// Print the observability report after an experiment, then clear the
/// histograms/ring so the next experiment gets a fresh window. Monitor
/// counters persist across the run by design.
fn obs_report() {
    if let Some(obs) = OBS.get().and_then(|o| o.as_ref()) {
        println!("--- observability report");
        print!("{}", obs.render_report());
        obs.reset();
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let with_obs = args.iter().any(|a| a == "--obs");
    args.retain(|a| a != "--obs");
    OBS.set(with_obs.then(|| Obs::enabled(DEFAULT_RING_CAPACITY)))
        .ok();
    let cmd = args.first().cloned().unwrap_or_else(|| "all".into());
    let t0 = Instant::now();
    match cmd.as_str() {
        "fig2" => fig2(),
        "fig1" => fig1(),
        "fig3" => fig3(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "locks" => locks(),
        "concurrency" => concurrency(),
        "recovery" => recovery(),
        "deadlocks" => deadlocks(),
        "latchcost" => latchcost(),
        "smo" => smo_ablation(),
        "all" => {
            for f in [
                fig2 as fn(),
                fig1,
                fig3,
                fig9,
                fig10,
                fig11,
                locks,
                concurrency,
                recovery,
                deadlocks,
                latchcost,
                smo_ablation,
            ] {
                f();
                obs_report();
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment {other}");
            eprintln!("try: fig2 fig1 fig3 fig9 fig10 fig11 locks concurrency recovery deadlocks latchcost smo all");
            eprintln!("add --obs for latency histograms, event tracing and latch-invariant reports");
            std::process::exit(2);
        }
    }
    if cmd != "all" {
        obs_report();
    }
    eprintln!("[{} done in {:.2?}]", cmd, t0.elapsed());
}

fn header(title: &str, claim: &str) {
    println!("==== {title}");
    println!("paper: {claim}");
}

// --- E1: Figure 2 -----------------------------------------------------------

fn fig2() {
    header(
        "E1 / Figure 2 — locking table",
        "fetch: S commit on current key; insert: X instant on next key \
         (+X commit current iff index-specific); delete: X commit on next key \
         (+X instant current iff index-specific)",
    );
    for protocol in [LockProtocol::DataOnly, LockProtocol::IndexSpecific] {
        let r = rig(protocol, false, 256);
        seed(&r, 50);
        println!("--- protocol {protocol:?}");
        // fetch
        let txn = r.tm.begin();
        r.tree.fetch(&txn, &nkey(10).value, FetchCond::Eq).unwrap();
        let cur = r.tree.lock_name_of(&nkey(10));
        println!(
            "  fetch   current: mode={:?} duration={:?}",
            r.locks.holds(txn.id, &cur).unwrap(),
            r.locks.holds_duration(txn.id, &cur).unwrap()
        );
        r.tm.commit(&txn).unwrap();
        // insert
        r.stats.reset();
        let txn = r.tm.begin();
        r.tree.insert(&txn, &nkey(1_000_001)).unwrap();
        let s = r.stats.snapshot();
        println!(
            "  insert  next-key locks={} instant={} | current held: {:?}",
            s.locks_next_key,
            s.locks_instant,
            r.locks
                .holds(txn.id, &r.tree.lock_name_of(&nkey(1_000_001)))
                .map(|m| format!("{m:?} commit"))
                .unwrap_or_else(|| "none (record manager's job)".into()),
        );
        r.tm.commit(&txn).unwrap();
        // delete
        r.stats.reset();
        let txn = r.tm.begin();
        r.tree.delete(&txn, &nkey(10)).unwrap();
        let next = r.tree.lock_name_of(&nkey(11));
        println!(
            "  delete  next key: mode={:?} duration={:?}",
            r.locks.holds(txn.id, &next).unwrap(),
            r.locks.holds_duration(txn.id, &next).unwrap()
        );
        r.tm.commit(&txn).unwrap();
    }
}

// --- E2: Figure 1 ---------------------------------------------------------------

fn fig1() {
    header(
        "E2 / Figure 1 — logical undo after an intervening split",
        "undo of T1's insert must re-traverse (K8 moved to another page); \
         the CLR is logged against the new page",
    );
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 330);
    let t1 = r.tm.begin();
    let k8 = nkey(90_000_000);
    r.tree.insert(&t1, &k8).unwrap();
    let p1 = r.tree.leaf_for_value(&k8.value).unwrap();
    let t2 = r.tm.begin();
    let mut i = 0;
    while r.stats.snapshot().smo_splits == 0 {
        r.tree.insert(&t2, &nkey(500 + i)).unwrap();
        i += 1;
    }
    r.tm.commit(&t2).unwrap();
    let p2 = r.tree.leaf_for_value(&k8.value).unwrap();
    let before = r.stats.snapshot();
    r.tm.rollback(&t1).unwrap();
    let d = r.stats.snapshot().since(&before);
    println!("  K8 inserted on {p1}, split moved it to {p2}");
    println!(
        "  rollback: logical undos={} page-oriented undos={}",
        d.undo_logical, d.undo_page_oriented
    );
    println!("  K8 present after rollback: {}", r
        .tree
        .scan_all_unlocked()
        .unwrap()
        .contains(&k8));
}

// --- E3: Figure 3 --------------------------------------------------------------

fn fig3() {
    header(
        "E3 / Figure 3 — modification waits for an unfinished SMO",
        "an insert on a leaf with SM_Bit=1 delays until the SMO completes; \
         retrievals proceed",
    );
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 20);
    let leaf = r.tree.leaf_for_value(&nkey(5).value).unwrap();
    r.tree.set_page_bits_for_test(leaf, Some(true), None).unwrap();
    let latch = r.tree.hold_tree_latch_x();
    let t_insert = Instant::now();
    let h = {
        let tm = r.tm.clone();
        let tree = r.tree.clone();
        std::thread::spawn(move || {
            let txn = tm.begin();
            tree.insert(&txn, &nkey(1_000_000)).unwrap();
            tm.commit(&txn).unwrap();
            t_insert.elapsed()
        })
    };
    // Fetch proceeds concurrently.
    let t_fetch = Instant::now();
    let txn = r.tm.begin();
    r.tree.fetch(&txn, &nkey(5).value, FetchCond::Eq).unwrap();
    r.tm.commit(&txn).unwrap();
    let fetch_time = t_fetch.elapsed();
    std::thread::sleep(Duration::from_millis(100));
    drop(latch);
    let insert_wait = h.join().unwrap();
    println!("  fetch during SMO: {fetch_time:?} (not blocked)");
    println!("  insert during SMO: {insert_wait:?} (blocked ≈100ms until SMO end)");
}

// --- E5/E6: Figures 9, 10 -----------------------------------------------------

fn fig9() {
    header(
        "E5 / Figure 9 — page split log sequence",
        "[SMO records][dummy CLR → pre-SMO LSN][key insert]; rollback undoes \
         the insert, never the split",
    );
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 330);
    let t1 = r.tm.begin();
    let mut i = 0;
    while r.stats.snapshot().smo_splits == 0 {
        r.tree.insert(&t1, &nkey(1_000 + 2 * i)).unwrap();
        i += 1;
    }
    print_txn_log(&r, t1.id);
    let leaves = r.tree.check_structure().unwrap().leaves;
    r.tm.rollback(&t1).unwrap();
    let after = r.tree.check_structure().unwrap();
    println!(
        "  after rollback: keys={} (inserts undone) leaves={} (split kept: {})",
        after.keys,
        after.leaves,
        after.leaves == leaves
    );
}

fn fig10() {
    header(
        "E6 / Figure 10 — page deletion log sequence",
        "[key delete][SMO records][dummy CLR → key-delete LSN]; rollback \
         skips the SMO but undoes the delete",
    );
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 700);
    let t1 = r.tm.begin();
    let mut i = 0;
    while r.stats.snapshot().smo_page_deletes == 0 {
        r.tree.delete(&t1, &nkey(i)).unwrap();
        i += 1;
    }
    print_txn_log(&r, t1.id);
    r.tm.rollback(&t1).unwrap();
    let after = r.tree.check_structure().unwrap();
    println!("  after rollback: keys={} (all deletes undone)", after.keys);
}

fn print_txn_log(r: &Rig, txn: ariesim_common::TxnId) {
    use ariesim_btree::body::IndexBody;
    use ariesim_wal::RmId;
    println!("  transaction log tail:");
    let recs: Vec<_> = r
        .log
        .scan(Lsn::NULL)
        .map(|x| x.unwrap())
        .filter(|x| x.txn == txn)
        .collect();
    for rec in recs.iter().rev().take(12).collect::<Vec<_>>().iter().rev() {
        let what = match (rec.kind, rec.rm) {
            (RecordKind::DummyClr, _) => {
                format!("DummyCLR   undo_next={:?}", rec.undo_next_lsn)
            }
            (RecordKind::Update, RmId::Index) => {
                let b = IndexBody::decode(&rec.body).unwrap();
                let name = match b {
                    IndexBody::InsertKey { .. } => "InsertKey",
                    IndexBody::DeleteKey { .. } => "DeleteKey",
                    IndexBody::PageFormat { .. } => "PageFormat",
                    IndexBody::SplitShrink { .. } => "SplitShrink",
                    IndexBody::ChainNext { .. } => "ChainNext",
                    IndexBody::ChainPrev { .. } => "ChainPrev",
                    IndexBody::AddSeparator { .. } => "AddSeparator",
                    IndexBody::RemoveSeparator { .. } => "RemoveSeparator",
                    IndexBody::FreePage { .. } => "FreePage",
                    IndexBody::RootReplace { .. } => "RootReplace",
                    IndexBody::RootCollapse { .. } => "RootCollapse",
                    IndexBody::PageRestore { .. } => "PageRestore",
                };
                format!("{name:<11}page={:?}", rec.page)
            }
            (RecordKind::Update, RmId::Space) => format!("SpaceMap   page={:?}", rec.page),
            (k, _) => format!("{k:?}"),
        };
        println!("    {:?}  {what}", rec.lsn);
    }
}

// --- E7: Figure 11 -------------------------------------------------------------

fn fig11() {
    header(
        "E7 / Figure 11 — Delete_Bit / POSC protection",
        "an insert consuming space freed by an uncommitted delete first \
         establishes a POSC (instant S tree latch); restart undo of the \
         delete can then safely go logical (split) on a consistent tree",
    );
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 8);
    let t1 = r.tm.begin();
    r.tree.delete(&t1, &nkey(3)).unwrap();
    let leaf = r.tree.leaf_for_value(&nkey(4).value).unwrap();
    let bit = {
        let g = r.pool.fix_s(leaf).unwrap();
        g.delete_bit()
    };
    println!("  Delete_Bit after T1's delete: {bit}");
    r.tm.commit(&t1).unwrap();
    let before = r.stats.snapshot();
    let t2 = r.tm.begin();
    r.tree.insert(&t2, &nkey(3)).unwrap();
    r.tm.commit(&t2).unwrap();
    let d = r.stats.snapshot().since(&before);
    println!(
        "  T2's insert established POSC: instant tree latches={} (bit now {})",
        d.latches_tree_instant,
        {
            let g = r.pool.fix_s(leaf).unwrap();
            g.delete_bit()
        }
    );
    println!("  (see tests/fig11_delete_bit.rs for the full crash scenario)");
}

// --- E8: lock counts --------------------------------------------------------------

fn locks() {
    header(
        "E8 — index-manager locks per operation (§1, §5)",
        "ARIES/IM data-only acquires the minimal number of locks: the record \
         lock doubles as the key lock; KVL/index-specific add current-key locks",
    );
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "protocol", "fetch", "insert", "delete", "scan100"
    );
    for (name, protocol) in [
        ("IM data-only", LockProtocol::DataOnly),
        ("IM index-specific", LockProtocol::IndexSpecific),
        ("ARIES/KVL", LockProtocol::KeyValue),
    ] {
        let r = rig(protocol, false, 512);
        seed(&r, 2000);
        let per_op = |f: &dyn Fn(&Rig)| -> f64 {
            r.stats.reset();
            f(&r);
            r.stats.snapshot().locks_acquired as f64 / 100.0
        };
        let fetch = per_op(&|r| {
            let txn = r.tm.begin();
            for i in 0..100 {
                r.tree.fetch(&txn, &nkey(i * 17 % 2000).value, FetchCond::Eq).unwrap();
            }
            r.tm.commit(&txn).unwrap();
        });
        let insert = per_op(&|r| {
            let txn = r.tm.begin();
            for i in 0..100 {
                r.tree.insert(&txn, &nkey(3000 + i)).unwrap();
            }
            r.tm.commit(&txn).unwrap();
        });
        let delete = per_op(&|r| {
            let txn = r.tm.begin();
            for i in 0..100 {
                r.tree.delete(&txn, &nkey(3000 + i)).unwrap();
            }
            r.tm.commit(&txn).unwrap();
        });
        let scan = {
            r.stats.reset();
            let txn = r.tm.begin();
            let (first, cursor) = r.tree.open_scan(&txn, &nkey(100).value, FetchCond::Ge).unwrap();
            let mut cur = cursor.unwrap();
            let mut n = usize::from(first.is_some());
            while n < 100 {
                if r.tree.fetch_next(&txn, &mut cur).unwrap().is_none() {
                    break;
                }
                n += 1;
            }
            r.tm.commit(&txn).unwrap();
            r.stats.snapshot().locks_acquired as f64
        };
        row(
            name,
            &[
                format!("{fetch:.2}"),
                format!("{insert:.2}"),
                format!("{delete:.2}"),
                format!("{scan:.0}"),
            ],
        );
    }
}

// --- E9: concurrency --------------------------------------------------------------

fn concurrency() {
    header(
        "E9 — throughput vs threads (§1, §5)",
        "IM individual-key locks beat KVL value locks, decisively so on \
         duplicate-heavy workloads; both beat a coarse tree latch",
    );
    let dur = Duration::from_millis(400);
    for (wl, duplicates) in [("uniform keys", false), ("duplicate-heavy", true)] {
        println!("--- workload: {wl} (committed ops/sec)");
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>12}",
            "protocol", "1 thread", "2", "4", "8"
        );
        for (name, protocol, coarse) in [
            ("IM data-only", LockProtocol::DataOnly, false),
            ("IM index-specific", LockProtocol::IndexSpecific, false),
            ("ARIES/KVL", LockProtocol::KeyValue, false),
            ("coarse tree latch", LockProtocol::DataOnly, true),
        ] {
            let mut cells = Vec::new();
            for threads in [1u32, 2, 4, 8] {
                let r = rig(protocol, false, 2048);
                let res = run_workload(
                    &r,
                    WorkloadSpec {
                        threads,
                        duration: dur,
                        read_pct: 60,
                        values: 64,
                        duplicates,
                        coarse_tree_latch: coarse,
                    },
                );
                cells.push(format!("{:.0}", res.ops_per_sec));
            }
            row(name, &cells);
        }
    }
}

// --- E10: recovery ---------------------------------------------------------------

fn recovery() {
    header(
        "E10 — restart recovery (§3)",
        "redo always page-oriented (0 traversals); undo page-oriented \
         whenever possible; work bounded by the checkpoint",
    );
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "scenario", "redo recs", "pages read", "redo trav", "undo p-o", "undo logical"
    );
    for (name, committed, inflight, ckpt) in [
        ("1k committed", 1000u32, 0u32, false),
        ("1k + 200 in-flight", 1000, 200, false),
        ("same, with checkpoint", 1000, 200, true),
    ] {
        let r = rig(LockProtocol::DataOnly, false, 4096);
        seed(&r, committed);
        if ckpt {
            r.pool.flush_all().unwrap();
            r.tm.checkpoint().unwrap();
        }
        let loser = r.tm.begin();
        for i in 0..inflight {
            r.tree.insert(&loser, &nkey(1_000_000 + i)).unwrap();
        }
        r.log.flush_all().unwrap();
        // Crash: reopen with a fresh stack over the same files (keep the
        // temp dir alive — it deletes its files on drop).
        let root = r.tree.root;
        drop(loser);
        let ariesim_bench::Rig { _dir: keep, .. } = r;
        let dir = keep.path().to_path_buf();
        let stats = ariesim_common::stats::new_stats();
        let obs = obs_handle();
        let log = std::sync::Arc::new(
            ariesim_wal::LogManager::open_with_obs(
                &dir.join("wal"),
                ariesim_wal::LogOptions::default(),
                stats.clone(),
                obs.clone(),
            )
            .unwrap(),
        );
        let disk = ariesim_storage::DiskManager::open(&dir.join("db"), stats.clone()).unwrap();
        let pool = ariesim_storage::BufferPool::new_with_obs(
            disk,
            log.clone(),
            ariesim_storage::PoolOptions { frames: 4096, ..Default::default() },
            stats.clone(),
            obs.clone(),
        );
        let locks = std::sync::Arc::new(ariesim_lock::LockManager::new_with_obs(
            stats.clone(),
            obs,
        ));
        let rms = std::sync::Arc::new(ariesim_txn::RmRegistry::new());
        let index_rm = ariesim_btree::IndexRm::new(pool.clone(), stats.clone());
        rms.register(index_rm.clone());
        rms.register(std::sync::Arc::new(ariesim_storage::SpaceRm::new(pool.clone())));
        let tree = ariesim_btree::BTree::new(
            ariesim_common::IndexId(1),
            root,
            false,
            LockProtocol::DataOnly,
            pool.clone(),
            locks,
            log.clone(),
            stats.clone(),
        );
        index_rm.register_tree(tree.clone());
        ariesim_recovery::restart(&log, &pool, &rms, &stats).unwrap();
        let s: StatsSnapshot = stats.snapshot();
        row(
            name,
            &[
                format!("{}", s.redo_records_seen),
                format!("{}", s.restart_page_reads),
                format!("{}", s.redo_traversals),
                format!("{}", s.undo_page_oriented),
                format!("{}", s.undo_logical),
            ],
        );
        tree.check_structure().unwrap();
    }
}

// --- E11: deadlocks ------------------------------------------------------------

fn deadlocks() {
    header(
        "E11 — deadlock behaviour (§4)",
        "no deadlocks involve latches (workload always completes); victims \
         are lock-level requesters; rollbacks never deadlock",
    );
    let r = rig(LockProtocol::DataOnly, false, 2048);
    let res = run_workload(
        &r,
        WorkloadSpec {
            threads: 8,
            duration: Duration::from_millis(500),
            read_pct: 20,
            values: 16, // tiny keyspace: heavy next-key contention
            duplicates: false,
            coarse_tree_latch: false,
        },
    );
    println!(
        "  8 threads, hot keyspace: {} ops committed, {} lock deadlocks, 0 hangs",
        res.committed_ops, res.deadlocks
    );
    println!(
        "  latch waits observed: page={} tree={} — all transient",
        r.stats.snapshot().latch_page_waits,
        r.stats.snapshot().latch_tree_waits
    );
    r.tree.check_structure().unwrap();
}

// --- E12: latch vs lock cost ---------------------------------------------------

fn latchcost() {
    header(
        "E12 — latch vs lock pathlength (§3, §5)",
        "acquiring a latch costs tens of instructions vs hundreds for a lock",
    );
    let r = rig(LockProtocol::DataOnly, false, 256);
    seed(&r, 1);
    let page = r.tree.leaf_for_value(&nkey(0).value).unwrap();
    const N: u32 = 200_000;
    let t = Instant::now();
    for _ in 0..N {
        let g = r.pool.fix_s(page).unwrap();
        std::hint::black_box(&*g);
    }
    let latch_ns = t.elapsed().as_nanos() as f64 / N as f64;
    let txn = r.tm.begin();
    let name = LockName::Record(nkey(0).rid);
    let t = Instant::now();
    for _ in 0..N {
        r.locks
            .request(txn.id, name.clone(), LockMode::S, LockDuration::Manual, false)
            .unwrap();
        r.locks.release(txn.id, &name);
    }
    let lock_ns = t.elapsed().as_nanos() as f64 / N as f64;
    r.tm.commit(&txn).unwrap();
    println!("  page latch (fix+S-latch+unfix): {latch_ns:>8.0} ns");
    println!("  lock (request+release):         {lock_ns:>8.0} ns");
    println!("  ratio: {:.1}× — latches are the cheaper primitive, as claimed", lock_ns / latch_ns);
}

// --- E13: SMO ablation -----------------------------------------------------------

fn smo_ablation() {
    header(
        "E13 — SMO concurrency ablation",
        "retrievals, inserts and deletes go on concurrently with SMOs (§2.1 \
         claim 3); serializing every operation behind one big latch starves \
         readers whenever a split is in progress",
    );
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    println!(
        "{:<26} {:>14} {:>14}",
        "variant", "reader ops/s", "writer ops/s"
    );
    for (name, coarse) in [("ARIES/IM", false), ("one big latch", true)] {
        let r = rig(LockProtocol::DataOnly, false, 4096);
        seed(&r, 50_000);
        let big = parking_lot::Mutex::new(());
        let stop = AtomicBool::new(false);
        let reads = AtomicU64::new(0);
        let writes = AtomicU64::new(0);
        let dur = Duration::from_millis(400);
        std::thread::scope(|s| {
            // One writer driving a constant stream of splits.
            {
                let r = &r;
                let big = &big;
                let stop = &stop;
                let writes = &writes;
                s.spawn(move || {
                    let mut i = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let txn = r.tm.begin();
                        for _ in 0..16 {
                            let _g = coarse.then(|| big.lock());
                            r.tree.insert(&txn, &nkey(10_000_000 + i)).unwrap();
                            i += 1;
                        }
                        r.tm.commit(&txn).unwrap();
                        writes.fetch_add(16, Ordering::Relaxed);
                    }
                });
            }
            // Six readers fetching committed keys.
            for t in 0..6u32 {
                let r = &r;
                let big = &big;
                let stop = &stop;
                let reads = &reads;
                s.spawn(move || {
                    let mut rng = ariesim_bench::XorShift(77 + t as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let txn = r.tm.begin();
                        for _ in 0..16 {
                            let _g = coarse.then(|| big.lock());
                            let k = nkey(rng.below(50_000));
                            r.tree.fetch(&txn, &k.value, FetchCond::Eq).unwrap();
                        }
                        r.tm.commit(&txn).unwrap();
                        reads.fetch_add(16, Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(dur);
            stop.store(true, Ordering::Relaxed);
        });
        let secs = dur.as_secs_f64();
        row(
            name,
            &[
                format!("{:.0}", reads.load(Ordering::Relaxed) as f64 / secs),
                format!("{:.0}", writes.load(Ordering::Relaxed) as f64 / secs),
            ],
        );
    }
}
