//! Unit-level tests of the three restart passes over hand-built logs: the
//! analysis pass's transaction and dirty-page bookkeeping, the redo pass's
//! LSN-comparison discipline, and the undo pass's reverse-chronological
//! multi-transaction sweep.

use ariesim_common::page::PageType;
use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Lsn, PageBuf, PageId, Result, TxnId};
use ariesim_lock::LockManager;
use ariesim_recovery::restart;
use ariesim_storage::{BufferPool, DiskManager, PoolOptions};
use ariesim_txn::{RmRegistry, TransactionManager};
use ariesim_wal::{
    ChainLogger, LogManager, LogOptions, LogRecord, RecordKind, ResourceManager, RmId,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Byte-blob RM: the page body's first byte stores a counter; Update bodies
/// carry (slot byte, value). Redo sets body[slot]=value; undo sets it back
/// (body carries old value too).
struct BlobRm {
    pool: Arc<BufferPool>,
    undo_order: Mutex<Vec<(TxnId, u8)>>,
}

impl BlobRm {
    fn body(slot: u8, old: u8, new: u8) -> Vec<u8> {
        vec![slot, old, new]
    }
}

const BODY_BASE: usize = 64; // write inside the page body, clear of the header

impl ResourceManager for BlobRm {
    fn rm_id(&self) -> RmId {
        RmId::Heap
    }

    fn redo(&self, page: &mut PageBuf, rec: &LogRecord) -> Result<()> {
        let (slot, new) = (rec.body[0] as usize, rec.body[2]);
        page.as_bytes_mut()[BODY_BASE + slot] = new;
        Ok(())
    }

    fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()> {
        let (slot, old, new) = (rec.body[0], rec.body[1], rec.body[2]);
        let mut g = self.pool.fix_x(rec.page)?;
        g.as_bytes_mut()[BODY_BASE + slot as usize] = old;
        self.undo_order.lock().push((logger.txn, new));
        let lsn = logger.clr(
            RmId::Heap,
            rec.page,
            rec.prev_lsn,
            BlobRm::body(slot, new, old),
        );
        g.record_update(lsn);
        Ok(())
    }
}

struct Fix {
    _dir: TempDir,
    stats: ariesim_common::stats::StatsHandle,
    log: Arc<LogManager>,
    pool: Arc<BufferPool>,
    rms: Arc<RmRegistry>,
    rm: Arc<BlobRm>,
    tm: Arc<TransactionManager>,
}

fn fix() -> Fix {
    let dir = TempDir::new("restart");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions::default(), stats.clone());
    // One formatted page everything writes to.
    {
        let mut g = pool.fix_x(PageId(3)).unwrap();
        g.format(PageId(3), PageType::Heap, 0, 0);
        g.record_update(Lsn(1));
    }
    pool.flush_all().unwrap();
    let locks = Arc::new(LockManager::new(stats.clone()));
    let rms = Arc::new(RmRegistry::new());
    let rm = Arc::new(BlobRm {
        pool: pool.clone(),
        undo_order: Mutex::new(Vec::new()),
    });
    rms.register(rm.clone());
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks,
        pool.clone(),
        rms.clone(),
        stats.clone(),
    ));
    Fix {
        _dir: dir,
        stats,
        log,
        pool,
        rms,
        rm,
        tm,
    }
}

/// Apply + log an update through a transaction (mimicking an RM operation).
fn update(f: &Fix, txn: &ariesim_txn::TxnHandle, slot: u8, old: u8, new: u8) {
    let mut g = f.pool.fix_x(PageId(3)).unwrap();
    g.as_bytes_mut()[BODY_BASE + slot as usize] = new;
    let lsn = txn.with_logger(&f.log, |l| {
        l.update(RmId::Heap, PageId(3), BlobRm::body(slot, old, new))
    });
    g.record_update(lsn);
}

fn byte_at(f: &Fix, slot: u8) -> u8 {
    let g = f.pool.fix_s(PageId(3)).unwrap();
    g.as_bytes()[BODY_BASE + slot as usize]
}

#[test]
fn redo_skips_updates_already_on_disk() {
    let f = fix();
    let t = f.tm.begin();
    update(&f, &t, 0, 0, 7);
    f.tm.commit(&t).unwrap();
    // Flush the page: its state is durable, page_lsn ≥ the record.
    f.pool.flush_all().unwrap();
    let outcome = restart(&f.log, &f.pool, &f.rms, &f.stats).unwrap();
    assert_eq!(outcome.redo_applied, 0, "already-durable update not redone");
    assert_eq!(byte_at(&f, 0), 7);
}

#[test]
fn redo_reapplies_missing_committed_updates() {
    let f = fix();
    let t = f.tm.begin();
    update(&f, &t, 0, 0, 9);
    f.tm.commit(&t).unwrap(); // forces the log, NOT the page
    // Wipe the cached page by reloading from disk state: simulate by
    // re-reading through a fresh pool over the same files.
    let stats2 = new_stats();
    let log2 = Arc::new(
        LogManager::open(&f._dir.file("wal"), LogOptions::default(), stats2.clone()).unwrap(),
    );
    let disk2 = DiskManager::open(&f._dir.file("db"), stats2.clone()).unwrap();
    let pool2 = BufferPool::new(disk2, log2.clone(), PoolOptions::default(), stats2.clone());
    let rms2 = Arc::new(RmRegistry::new());
    let rm2 = Arc::new(BlobRm {
        pool: pool2.clone(),
        undo_order: Mutex::new(Vec::new()),
    });
    rms2.register(rm2);
    let outcome = restart(&log2, &pool2, &rms2, &stats2).unwrap();
    assert_eq!(outcome.redo_applied, 1, "lost update must be redone");
    let g = pool2.fix_s(PageId(3)).unwrap();
    assert_eq!(g.as_bytes()[BODY_BASE], 9);
}

#[test]
fn undo_sweep_is_reverse_chronological_across_transactions() {
    // Two losers with interleaved updates: the single backward sweep must
    // undo strictly by descending LSN, regardless of owner.
    let f = fix();
    let t1 = f.tm.begin();
    let t2 = f.tm.begin();
    update(&f, &t1, 0, 0, 1); // LSN order: 1
    update(&f, &t2, 1, 0, 2); // 2
    update(&f, &t1, 2, 0, 3); // 3
    update(&f, &t2, 3, 0, 4); // 4
    f.log.flush_all().unwrap();
    let outcome = restart(&f.log, &f.pool, &f.rms, &f.stats).unwrap();
    assert_eq!(outcome.losers.len(), 2);
    let order: Vec<u8> = f.rm.undo_order.lock().iter().map(|&(_, v)| v).collect();
    assert_eq!(order, vec![4, 3, 2, 1], "reverse chronological, interleaved");
    for slot in 0..4u8 {
        assert_eq!(byte_at(&f, slot), 0, "slot {slot} restored");
    }
    // End records written for both losers.
    let ends = f
        .log
        .scan(Lsn::NULL)
        .map(|r| r.unwrap())
        .filter(|r| r.kind == RecordKind::End)
        .count();
    assert_eq!(ends, 2);
}

#[test]
fn committed_but_unended_transaction_is_not_undone() {
    // Crash between the (forced) Commit record and the End record: analysis
    // must treat the transaction as committed.
    let f = fix();
    let t = f.tm.begin();
    update(&f, &t, 0, 0, 5);
    // Hand-write the commit record without the End.
    t.with_logger(&f.log, |l| l.control(RecordKind::Commit));
    f.log.flush_all().unwrap();
    let outcome = restart(&f.log, &f.pool, &f.rms, &f.stats).unwrap();
    assert!(outcome.losers.is_empty(), "committed txn is not a loser");
    assert_eq!(byte_at(&f, 0), 5);
}

#[test]
fn aborting_transaction_resumes_rollback_at_restart() {
    // Crash mid-rollback: some CLRs already written. Restart must continue
    // from where the rollback stopped, not re-undo compensated work.
    let f = fix();
    let t = f.tm.begin();
    update(&f, &t, 0, 0, 1);
    let sp = t.savepoint();
    update(&f, &t, 1, 0, 2);
    // Partial rollback undoes slot 1 and writes its CLR.
    f.tm.rollback_to(&t, sp).unwrap();
    assert_eq!(f.rm.undo_order.lock().len(), 1);
    f.log.flush_all().unwrap();
    let outcome = restart(&f.log, &f.pool, &f.rms, &f.stats).unwrap();
    assert_eq!(outcome.losers.len(), 1);
    // Only slot 0 was left to undo — slot 1's undo must NOT repeat.
    let order: Vec<u8> = f.rm.undo_order.lock().iter().map(|&(_, v)| v).collect();
    assert_eq!(order, vec![2, 1], "one undo before crash, one after");
    assert_eq!(byte_at(&f, 0), 0);
    assert_eq!(byte_at(&f, 1), 0);
}

#[test]
fn restart_on_empty_log_is_a_noop() {
    let f = fix();
    let outcome = restart(&f.log, &f.pool, &f.rms, &f.stats).unwrap();
    assert_eq!(outcome.redo_applied, 0);
    assert!(outcome.losers.is_empty());
}

#[test]
fn max_txn_id_reported_for_id_resumption() {
    let f = fix();
    let a = f.tm.begin();
    let b = f.tm.begin();
    update(&f, &b, 0, 0, 1);
    f.tm.commit(&a).unwrap();
    f.log.flush_all().unwrap();
    let outcome = restart(&f.log, &f.pool, &f.rms, &f.stats).unwrap();
    assert!(outcome.max_txn_id >= b.id.0);
}
