//! ARIES restart recovery (paper §1.2) and media recovery (§5).
//!
//! Restart is the classic three passes:
//!
//! 1. **Analysis**: scan from the last complete checkpoint,
//!    rebuilding the transaction table (who was in flight) and the dirty
//!    page table (which pages might be missing updates, each with its
//!    recovery LSN). Determines where redo must begin.
//! 2. **Redo**: *repeat history* — reapply every logged update
//!    (including those of loser transactions and CLRs) whose effect is not
//!    yet in the page, decided purely by the `page_lsn` comparison. Redo is
//!    strictly **page-oriented**: the only page ever touched is the one in
//!    the record's envelope; the `redo_traversals` counter stays zero by
//!    construction, which experiment E10 asserts.
//! 3. **Undo**: roll back every loser in one backward sweep of
//!    the log, following each transaction's chain (and jumping over
//!    already-compensated work via CLR `undo_next_lsn`s — including whole
//!    nested top actions via their dummy CLRs, which is precisely how
//!    completed page splits survive the rollback of the transaction that
//!    performed them while *incomplete* splits are backed out).
//!
//! Media recovery ([`media`]): fuzzy image copy + per-page roll-forward, the
//! paper's §5 claim that index pages are recoverable page-oriented from a
//! dump without any tree traversal.

//!
//! Continuous redo ([`continuous`]): the redo pass in resumable form, for a
//! log-shipping standby that repeats history forever and only runs the full
//! three passes when promoted.

pub mod continuous;
pub mod media;
pub mod restart;

pub use continuous::{apply_redo, RedoCursor};
pub use media::ImageCopy;
pub use restart::{restart, RestartOutcome};
