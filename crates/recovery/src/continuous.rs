//! Continuous redo — restart's redo pass as a resumable, steady-state
//! operation.
//!
//! A log-shipping standby is the observation that ARIES/IM redo *is* the
//! standby's whole job: repeat history, page-oriented, forever. This module
//! exposes the redo loop of [`crate::restart`] in incremental form: a
//! [`RedoCursor`] remembers where the stream stands, and [`apply_redo`]
//! advances it by a bounded number of records. There is no dirty page table
//! here — with nothing known about which pages are stale, the `page_lsn`
//! comparison alone decides idempotently, exactly as the paper's redo rule
//! allows (the DPT is a restart-time *optimization*, not a correctness
//! requirement).
//!
//! The caller owns scheduling and read/apply exclusion; this code only
//! guarantees that applying `[cursor.at, upto)` in order, any number of
//! records at a time, produces the same pages as one uninterrupted redo
//! sweep.

use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Lsn, Result};
use ariesim_storage::BufferPool;
use ariesim_txn::RmRegistry;
use ariesim_wal::LogManager;
use std::sync::Arc;

/// Position of a continuous-redo stream, plus running totals.
#[derive(Debug, Clone, Copy)]
pub struct RedoCursor {
    /// Next LSN to examine. Everything below is applied (or was already
    /// reflected in the pages, per their `page_lsn`).
    pub at: Lsn,
    /// Redoable records examined so far.
    pub seen: u64,
    /// Records actually reapplied (page was behind).
    pub applied: u64,
}

impl RedoCursor {
    /// A cursor at `at` with zeroed counters.
    pub fn starting_at(at: Lsn) -> RedoCursor {
        RedoCursor {
            at,
            seen: 0,
            applied: 0,
        }
    }
}

/// Advance `cursor` through `[cursor.at, upto)`, applying at most
/// `max_records` log records (of any kind; non-redoable ones just move the
/// cursor). Returns the number of records examined — `0` means the cursor
/// is caught up to `upto`. Never reads at or past `upto`, so a standby can
/// pass its shipped-log boundary and be certain redo only consumes frames
/// that are locally durable.
pub fn apply_redo(
    log: &LogManager,
    pool: &Arc<BufferPool>,
    rms: &RmRegistry,
    stats: &StatsHandle,
    cursor: &mut RedoCursor,
    upto: Lsn,
    max_records: u64,
) -> Result<u64> {
    let mut examined = 0u64;
    let mut iter = log.scan(cursor.at);
    // One-entry pin cache: runs of records against the same page re-latch
    // through the pin (one atomic) instead of probing the page table.
    let mut pinned: Option<ariesim_storage::PinGuard> = None;
    loop {
        if examined >= max_records || iter.position() >= upto {
            break;
        }
        let Some(rec) = iter.next() else { break };
        let rec = rec?;
        examined += 1;
        cursor.at = iter.position();
        if !rec.kind.is_redoable() || rec.page.is_null() {
            continue;
        }
        cursor.seen += 1;
        stats.redo_records_seen.bump();
        let pin = match pinned.take() {
            Some(p) if p.page() == rec.page => p,
            _ => pool.pin(rec.page)?,
        };
        let mut g = pin.latch_x()?; // latch-rank: 2
        pinned = Some(pin);
        if g.page_lsn() < rec.lsn {
            let rm = rms.get(rec.rm)?;
            rm.redo(&mut g, &rec)?;
            g.record_update(rec.lsn);
            cursor.applied += 1;
            stats.redo_applied.bump();
        }
    }
    // scan() clamps a NULL start to the first LSN; mirror that so a fresh
    // cursor reports a real position even when the log is empty.
    cursor.at = cursor.at.max(iter.position().min(upto));
    Ok(examined)
}
