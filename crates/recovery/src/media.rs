//! Media recovery: fuzzy image copies and page-oriented roll-forward.
//!
//! The paper's §5: "ARIES/IM supports page-oriented media recovery for
//! indexes — dumps of indexes can be taken and when there is a problem in
//! reading a page ... the page can be loaded from the last dump and then, by
//! rolling forward using the log, the page can be brought up-to-date."
//!
//! The copy is *fuzzy*: pages are copied one at a time through the buffer
//! pool (each under its S latch, so no torn images) without quiescing
//! updates. Because a copied image may already contain updates logged after
//! the copy began, roll-forward relies on the same `page_lsn` comparison as
//! restart redo — updates already present are skipped idempotently.

use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Error, Lsn, PageBuf, PageId, Result};
use ariesim_storage::BufferPool;
use ariesim_txn::RmRegistry;
use ariesim_wal::LogManager;
use std::collections::HashMap;
use std::sync::Arc;

/// A fuzzy dump of a set of pages plus the LSN roll-forward must start from.
pub struct ImageCopy {
    /// Every log record with LSN ≥ this may be missing from the images.
    pub start_lsn: Lsn,
    pages: HashMap<PageId, PageBuf>,
}

impl ImageCopy {
    /// Take a fuzzy copy of `pages` (typically: every page of one index, as
    /// reported by the checker, plus the space map).
    pub fn take(pool: &Arc<BufferPool>, log: &LogManager, pages: &[PageId]) -> Result<ImageCopy> {
        // Anything logged before this point will be in the images we copy
        // (we read through the pool, which holds the newest versions).
        let start_lsn = log.next_lsn();
        let mut map = HashMap::with_capacity(pages.len());
        for &p in pages {
            let g = pool.fix_s(p)?; // latch-rank: 2
            map.insert(p, PageBuf::from_bytes(g.as_bytes().as_slice())?);
        }
        Ok(ImageCopy {
            start_lsn,
            pages: map,
        })
    }

    /// Pages contained in the dump.
    pub fn page_ids(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.pages.keys().copied().collect();
        v.sort();
        v
    }

    /// Recover one page: start from the dumped image and roll forward every
    /// later record for that page. One pass of the log per call (the paper's
    /// media-recovery efficiency measure counts these). The recovered image
    /// is returned; the caller decides where to put it.
    pub fn recover_page(
        &self,
        log: &LogManager,
        rms: &RmRegistry,
        page: PageId,
        stats: &StatsHandle,
    ) -> Result<PageBuf> {
        let mut img = self
            .pages
            .get(&page)
            .ok_or_else(|| Error::Internal(format!("page {page} not in image copy")))?
            .clone();
        stats.media_recovery_passes.bump();
        for rec in log.scan(self.start_lsn) {
            let rec = rec?;
            if rec.page != page || !rec.kind.is_redoable() {
                continue;
            }
            if img.page_lsn() < rec.lsn {
                let rm = rms.get(rec.rm)?;
                rm.redo(&mut img, &rec)?;
                img.set_page_lsn(rec.lsn);
            }
        }
        Ok(img)
    }

    /// Convenience: recover a page and install it into the database through
    /// the buffer pool (used after simulating the loss of a disk page).
    pub fn restore_into(
        &self,
        pool: &Arc<BufferPool>,
        log: &LogManager,
        rms: &RmRegistry,
        page: PageId,
        stats: &StatsHandle,
    ) -> Result<()> {
        let img = self.recover_page(log, rms, page, stats)?;
        let mut g = pool.fix_x(page)?; // latch-rank: 2
        let lsn = img.page_lsn();
        *g.as_bytes_mut() = *img.as_bytes();
        g.record_update(lsn);
        Ok(())
    }
}
