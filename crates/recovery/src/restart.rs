//! The three restart passes.

use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Lsn, PageId, Result, TxnId};
use ariesim_obs::{recovery_phase, SpanKind};
use ariesim_storage::BufferPool;
use ariesim_txn::RmRegistry;
use ariesim_wal::{ChainLogger, CheckpointData, LogManager, LogRecord, RecordKind, TxnState};
use std::collections::HashMap;
use std::sync::Arc;

/// What restart found and did.
#[derive(Debug, Default)]
pub struct RestartOutcome {
    /// LSN of the checkpoint the analysis pass started from (NULL if none).
    pub ckpt_lsn: Lsn,
    /// Where the redo pass began.
    pub redo_start: Lsn,
    /// Records examined by analysis.
    pub analyzed: u64,
    /// Redoable records examined / actually reapplied.
    pub redo_seen: u64,
    pub redo_applied: u64,
    /// Loser transactions rolled back by the undo pass.
    pub losers: Vec<TxnId>,
    /// Undo actions dispatched to resource managers.
    pub undone: u64,
    /// Highest transaction id seen (feed to
    /// `TransactionManager::resume_txn_ids_after`).
    pub max_txn_id: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    InFlight,
    Aborting,
}

struct TEntry {
    state: TState,
    last_lsn: Lsn,
}

/// Run full restart recovery. Call before any new transaction starts; the
/// pool must be freshly opened over the crashed database file.
pub fn restart(
    log: &LogManager,
    pool: &Arc<BufferPool>,
    rms: &RmRegistry,
    stats: &StatsHandle,
) -> Result<RestartOutcome> {
    let mut out = RestartOutcome::default();
    // ARIES/IM redo is page-oriented: this restart must add nothing to
    // `redo_traversals` (checked against the monitor at the end).
    let redo_traversals_before = stats.snapshot().redo_traversals;

    // ---------------- Analysis ------------------------------------------------
    let ckpt_lsn = log.read_master()?;
    out.ckpt_lsn = ckpt_lsn;
    let scan_from = if ckpt_lsn.is_null() {
        log.first_lsn()
    } else {
        ckpt_lsn
    };
    let mut txns: HashMap<TxnId, TEntry> = HashMap::new();
    let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
    let mut ckpt_seen = ckpt_lsn.is_null();

    // Live progress for `--progress` samplers: phase, current-vs-target
    // LSN, pages redone, losers remaining. Relaxed gauge stores — cheap
    // enough to update per record.
    let obs = pool.obs();
    let prog = &obs.gauge.recovery;
    prog.phase.set(recovery_phase::ANALYSIS);
    prog.target_lsn.set(log.next_lsn().0);
    prog.current_lsn.set(scan_from.0);

    for rec in log.scan(scan_from) {
        let rec = rec?;
        out.analyzed += 1;
        prog.current_lsn.set(rec.lsn.0);
        out.max_txn_id = out.max_txn_id.max(rec.txn.0);
        match rec.kind {
            RecordKind::CkptBegin => {}
            RecordKind::CkptEnd => {
                if !ckpt_seen {
                    // Merge the checkpoint's fuzzy tables. For the DPT the
                    // OLDER rec_lsn must win: rec_lsn is the oldest possibly-
                    // unapplied update, and records scanned between CkptBegin
                    // and CkptEnd may have inserted a newer one for a page
                    // the checkpoint knew was dirty much earlier. (Taking the
                    // newer value made redo start too late and skip, e.g., a
                    // page-format record — caught by the fuzzy-checkpoint
                    // crash test.)
                    let data = CheckpointData::decode(rec.lsn, &rec.body)?;
                    out.max_txn_id = out.max_txn_id.max(data.max_txn_id);
                    for e in data.dpt {
                        dpt.entry(e.page)
                            .and_modify(|l| *l = (*l).min(e.rec_lsn))
                            .or_insert(e.rec_lsn);
                    }
                    for t in data.txns {
                        txns.entry(t.txn).or_insert(TEntry {
                            state: match t.state {
                                TxnState::Aborting => TState::Aborting,
                                TxnState::InFlight => TState::InFlight,
                            },
                            last_lsn: t.last_lsn,
                        });
                    }
                    ckpt_seen = true;
                }
            }
            RecordKind::Begin => {
                txns.insert(
                    rec.txn,
                    TEntry {
                        state: TState::InFlight,
                        last_lsn: rec.lsn,
                    },
                );
            }
            RecordKind::Commit | RecordKind::End => {
                // Commit is forced, so a committed transaction needs no undo
                // even if its End record is missing.
                txns.remove(&rec.txn);
            }
            RecordKind::Abort => {
                if let Some(t) = txns.get_mut(&rec.txn) {
                    t.state = TState::Aborting;
                    t.last_lsn = rec.lsn;
                }
            }
            RecordKind::Update | RecordKind::Clr | RecordKind::DummyClr => {
                let t = txns.entry(rec.txn).or_insert(TEntry {
                    state: TState::InFlight,
                    last_lsn: rec.lsn,
                });
                t.last_lsn = rec.lsn;
                if rec.kind.is_redoable() && !rec.page.is_null() {
                    dpt.entry(rec.page).or_insert(rec.lsn);
                }
            }
        }
    }

    ariesim_fault::crash_point!("recovery.analysis.done");

    // ---------------- Redo: repeat history ------------------------------------
    let redo_start = dpt.values().copied().min().unwrap_or(log.next_lsn());
    out.redo_start = redo_start;
    prog.phase.set(recovery_phase::REDO);
    prog.current_lsn.set(redo_start.0);
    let redo_span = obs.span(SpanKind::Apply, 0, 0);
    // Redo hits the same page in runs (updates cluster); a one-entry pin
    // cache re-latches those through the pin (one atomic) instead of a
    // page-table probe per record, and keeps the frame resident between
    // consecutive records against it.
    let mut pinned: Option<ariesim_storage::PinGuard> = None;
    for rec in log.scan(redo_start) {
        let rec = rec?;
        prog.current_lsn.set(rec.lsn.0);
        if !rec.kind.is_redoable() || rec.page.is_null() {
            continue;
        }
        out.redo_seen += 1;
        stats.redo_records_seen.bump();
        let Some(&rec_lsn) = dpt.get(&rec.page) else {
            continue; // page was never (possibly) stale
        };
        if rec.lsn < rec_lsn {
            continue; // older than the page's first possibly-missing update
        }
        let pin = match pinned.take() {
            Some(p) if p.page() == rec.page => p,
            _ => pool.pin(rec.page)?,
        };
        let mut g = pin.latch_x()?; // latch-rank: 2
        pinned = Some(pin);
        stats.restart_page_reads.bump();
        if g.page_lsn() < rec.lsn {
            let rm = rms.get(rec.rm)?;
            rm.redo(&mut g, &rec)?;
            g.record_update(rec.lsn);
            out.redo_applied += 1;
            stats.redo_applied.bump();
            prog.pages_redone.set(out.redo_applied);
            drop(g);
            ariesim_fault::crash_point!("recovery.redo.applied");
        }
    }
    drop(redo_span);

    // ---------------- Undo: roll back losers in one backward sweep -----------
    // next-undo pointer per loser; process the globally largest LSN first.
    let mut next_undo: HashMap<TxnId, Lsn> = HashMap::new();
    let mut chain_end: HashMap<TxnId, Lsn> = HashMap::new();
    for (txn, t) in &txns {
        next_undo.insert(*txn, t.last_lsn);
        chain_end.insert(*txn, t.last_lsn);
        out.losers.push(*txn);
    }
    out.losers.sort();
    prog.phase.set(recovery_phase::UNDO);
    prog.losers_remaining.set(next_undo.len() as u64);

    while let Some((&txn, &lsn)) = next_undo.iter().max_by_key(|(_, &l)| l) {
        if lsn.is_null() {
            // This loser is fully undone: write its End record.
            let mut logger = ChainLogger::for_restart(log, txn, chain_end[&txn]);
            logger.control(RecordKind::End);
            next_undo.remove(&txn);
            chain_end.remove(&txn);
            prog.losers_remaining.set(next_undo.len() as u64);
            continue;
        }
        let rec: LogRecord = log.read(lsn)?;
        debug_assert_eq!(rec.txn, txn);
        match rec.kind {
            RecordKind::Update => {
                let mut logger = ChainLogger::for_restart(log, txn, chain_end[&txn]);
                let rm = rms.get(rec.rm)?;
                rm.undo(&mut logger, &rec)?;
                out.undone += 1;
                chain_end.insert(txn, logger.last_lsn);
                next_undo.insert(txn, rec.prev_lsn);
                ariesim_fault::crash_point!("recovery.undo.step");
            }
            RecordKind::Clr | RecordKind::DummyClr => {
                next_undo.insert(txn, rec.undo_next_lsn);
            }
            RecordKind::Begin => {
                next_undo.insert(txn, Lsn::NULL);
            }
            _ => {
                next_undo.insert(txn, rec.prev_lsn);
            }
        }
    }

    log.flush_all()?;
    prog.phase.set(recovery_phase::COMPLETE);
    // Undo appended CLRs and End records, so the end of log moved; republish
    // the target so current == target reads as "done".
    prog.target_lsn.set(log.next_lsn().0);
    prog.current_lsn.set(log.next_lsn().0);
    ariesim_fault::crash_point!("recovery.done");
    pool.obs()
        .monitor
        .on_restart_complete(stats.snapshot().redo_traversals - redo_traversals_before);
    Ok(out)
}
