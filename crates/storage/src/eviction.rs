//! Pluggable per-partition eviction policies for the buffer pool.
//!
//! Each pool partition owns one policy instance driving replacement over
//! that partition's frames only (all indices below are partition-local).
//! The pool calls the policy under the partition's shard mutex, so
//! implementations need no internal synchronization — only `Send`, because
//! partitions migrate across worker threads.
//!
//! The contract that keeps eviction safe lives in the `evictable` callback
//! passed to [`EvictionPolicy::victim`]: it returns `true` only for frames
//! with a zero pin count whose page latch was *conditionally* acquired (the
//! caller keeps that latch for the eviction). A policy therefore cannot —
//! even buggily — evict a pinned or latched frame; the worst a bad policy
//! can do is pick a cold victim. The WAL rule (`flush_to` before
//! write-back) is likewise enforced by the pool after the victim is chosen,
//! never by the policy.

/// Which policy a pool partition should run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicyKind {
    /// Clock (second chance): one reference bit per frame, a sweeping hand.
    /// O(1) state per frame, the scan-resistant baseline.
    Clock,
    /// LRU-K (K = the parameter): evict the frame with the largest backward
    /// K-distance; frames with fewer than K recorded accesses are infinitely
    /// distant and evicted first (oldest last-access first among them).
    LruK(usize),
}

impl EvictionPolicyKind {
    /// Instantiate the policy for a partition of `frames` frames.
    pub fn build(self, frames: usize) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionPolicyKind::Clock => Box::new(Clock::new(frames)),
            EvictionPolicyKind::LruK(k) => Box::new(LruK::new(frames, k)),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicyKind::Clock => "clock",
            EvictionPolicyKind::LruK(_) => "lru-k",
        }
    }
}

/// Replacement policy over one partition's frames. Indices are
/// partition-local (`0..frames`).
pub trait EvictionPolicy: Send {
    fn name(&self) -> &'static str;

    /// `frame` was found resident (page-table hit).
    fn on_hit(&mut self, frame: usize);

    /// A page was just installed into `frame` (miss path).
    fn on_load(&mut self, frame: usize);

    /// Choose an eviction victim. `evictable(frame)` is `true` iff the
    /// frame is unpinned and its latch could be claimed; the policy must
    /// only return a frame for which `evictable` returned `true`, and may
    /// call it at most once per frame per invocation (the callback has the
    /// side effect of claiming the latch). Returns `None` when no frame is
    /// evictable.
    fn victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize>;
}

/// Clock / second-chance replacement.
pub struct Clock {
    refbit: Vec<bool>,
    hand: usize,
}

impl Clock {
    pub fn new(frames: usize) -> Clock {
        Clock {
            refbit: vec![false; frames],
            hand: 0,
        }
    }
}

impl EvictionPolicy for Clock {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_hit(&mut self, frame: usize) {
        self.refbit[frame] = true;
    }

    fn on_load(&mut self, frame: usize) {
        self.refbit[frame] = true;
    }

    fn victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        let n = self.refbit.len();
        if n == 0 {
            return None;
        }
        // Pass 1 clears reference bits, pass 2 takes the first frame whose
        // bit was already clear; a third pass catches frames whose bit was
        // set between our clearing and our return sweep. Pinned/latched
        // frames are skipped without consuming their reference bit.
        let mut asked = vec![false; n];
        for _ in 0..3 * n {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if self.refbit[f] {
                self.refbit[f] = false;
                continue;
            }
            if asked[f] {
                // Already probed unevictable this invocation; every frame
                // asked once means nothing can be evicted.
                if asked.iter().all(|&a| a) {
                    return None;
                }
                continue;
            }
            asked[f] = true;
            if evictable(f) {
                return Some(f);
            }
        }
        None
    }
}

/// LRU-K replacement (O'Neil et al.): per frame, the ticks of its last K
/// accesses. The victim is the frame with the largest backward K-distance
/// `now - t_K`; frames with fewer than K accesses are infinitely distant
/// and chosen first, oldest last-access first.
pub struct LruK {
    k: usize,
    tick: u64,
    /// Most-recent-first access ticks, at most `k` per frame.
    history: Vec<Vec<u64>>,
    /// Scratch for [`EvictionPolicy::victim`]: frames already probed this
    /// invocation. Reused across calls so the miss path never allocates.
    probed: Vec<bool>,
}

impl LruK {
    pub fn new(frames: usize, k: usize) -> LruK {
        let k = k.max(1);
        LruK {
            k,
            tick: 0,
            history: vec![Vec::new(); frames],
            probed: vec![false; frames],
        }
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        let h = &mut self.history[frame];
        h.insert(0, self.tick);
        h.truncate(self.k);
    }

    /// Eviction priority (higher = evict first): infinitely-distant frames
    /// (fewer than K accesses) sort above all K-full frames, oldest
    /// last-access first; K-full frames sort by backward K-distance.
    fn priority(&self, frame: usize) -> (u8, u64) {
        let h = &self.history[frame];
        if h.len() < self.k {
            // Never-touched frames (last access "0") rank highest of all.
            (1, u64::MAX - h.first().copied().unwrap_or(0))
        } else {
            (0, self.tick - h[self.k - 1])
        }
    }
}

impl EvictionPolicy for LruK {
    fn name(&self) -> &'static str {
        "lru-k"
    }

    fn on_hit(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn on_load(&mut self, frame: usize) {
        // A fresh load replaces the previous tenant's history wholesale.
        self.history[frame].clear();
        self.touch(frame);
    }

    fn victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        // Partial selection instead of a full sort: this runs under the
        // shard mutex, so the common miss pays one O(n) scan and (almost
        // always) a single probe, not an allocation plus O(n log n).
        self.probed.iter_mut().for_each(|p| *p = false);
        loop {
            let mut best: Option<(usize, (u8, u64))> = None;
            for f in 0..self.history.len() {
                if self.probed[f] {
                    continue;
                }
                let pri = self.priority(f);
                // Strict `>` keeps the lowest index among equal priorities,
                // preserving the sorted implementation's deterministic order.
                if best.is_none_or(|(_, b)| pri > b) {
                    best = Some((f, pri));
                }
            }
            let (f, _) = best?;
            self.probed[f] = true;
            if evictable(f) {
                return Some(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(_f: usize) -> bool {
        true
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut c = Clock::new(4);
        for f in 0..4 {
            c.on_load(f);
        }
        c.on_hit(2);
        // First sweep clears all bits; frame 0 is the first whose bit is
        // found clear on the return sweep.
        assert_eq!(c.victim(&mut all), Some(0));
        // Hand advanced past 0; next victim continues the sweep.
        assert_eq!(c.victim(&mut all), Some(1));
    }

    #[test]
    fn clock_skips_unevictable_and_reports_exhaustion() {
        let mut c = Clock::new(3);
        for f in 0..3 {
            c.on_load(f);
        }
        assert_eq!(c.victim(&mut |_| false), None);
        assert_eq!(c.victim(&mut |f| f == 1), Some(1));
    }

    #[test]
    fn lruk_prefers_infinite_distance_then_max_k_distance() {
        let mut l = LruK::new(3, 2);
        // Frame 0: two accesses (ticks 1, 2). Frame 1: one access (tick 3).
        // Frame 2: two accesses (ticks 4, 5).
        l.on_load(0);
        l.on_hit(0);
        l.on_load(1);
        l.on_load(2);
        l.on_hit(2);
        // Frame 1 has < K accesses: infinitely distant, evicted first.
        assert_eq!(l.victim(&mut all), Some(1));
        // Among K-full frames, frame 0's 2nd-most-recent access (tick 1) is
        // older than frame 2's (tick 4): frame 0 has the larger K-distance.
        assert_eq!(l.victim(&mut |f| f != 1), Some(0));
    }

    #[test]
    fn lruk_never_returns_unevictable(){
        let mut l = LruK::new(4, 2);
        for f in 0..4 {
            l.on_load(f);
        }
        assert_eq!(l.victim(&mut |_| false), None);
        assert_eq!(l.victim(&mut |f| f == 3), Some(3));
    }
}
