//! Logged page-allocation space map.
//!
//! Page splits allocate pages and page deletions free them, *inside nested
//! top actions* (paper §3). For those SMOs to be atomic and recoverable, the
//! allocation state itself must be logged: this module keeps a bitmap page
//! (page 1) whose updates are redo-undo log records owned by
//! [`ariesim_wal::RmId::Space`].
//!
//! The map is deliberately latch-only (no locks): concurrent transactions
//! may set and clear different bits under the page's X latch, and because a
//! bit update is independent of every other bit, page-oriented undo of one
//! transaction's allocation never disturbs another's — the same argument the
//! paper makes for key inserts/deletes on index pages.

use crate::pool::BufferPool;
use ariesim_common::codec::{Reader, Writer};
use ariesim_common::page::{PageType, PAGE_HEADER_LEN, PAGE_SIZE};
use ariesim_common::{Error, Lsn, PageBuf, PageId, Result};
use ariesim_wal::{ChainLogger, LogRecord, ResourceManager, RmId};
use std::sync::Arc;

/// The space map lives at this fixed page.
pub const SPACE_MAP_PAGE: PageId = PageId(1);

/// First page id handed out by the allocator (0 = the NULL sentinel, never
/// used; 1 = space map; 2 = catalog).
pub const FIRST_USER_PAGE: u32 = 3;

/// Number of pages the single-page bitmap can govern.
pub const MAX_PAGES: u32 = ((PAGE_SIZE - PAGE_HEADER_LEN) * 8) as u32;

/// Page allocator over the bitmap page.
pub struct SpaceMap {
    pool: Arc<BufferPool>,
}

fn bit_pos(page: PageId) -> (usize, u8) {
    let n = page.0 - FIRST_USER_PAGE;
    (PAGE_HEADER_LEN + (n / 8) as usize, 1u8 << (n % 8))
}

fn get_bit(buf: &PageBuf, page: PageId) -> bool {
    let (byte, mask) = bit_pos(page);
    buf.as_bytes()[byte] & mask != 0
}

fn set_bit(buf: &mut PageBuf, page: PageId, v: bool) {
    let (byte, mask) = bit_pos(page);
    if v {
        buf.as_bytes_mut()[byte] |= mask;
    } else {
        buf.as_bytes_mut()[byte] &= !mask;
    }
}

fn encode_body(page: PageId, alloc: bool) -> Vec<u8> {
    let mut w = Writer::with_capacity(5);
    w.page_id(page).u8(alloc as u8);
    w.into_vec()
}

fn decode_body(rec: &LogRecord) -> Result<(PageId, bool)> {
    let mut r = Reader::new(&rec.body);
    let page = r.page_id()?;
    let alloc = r.u8()? != 0;
    Ok((page, alloc))
}

impl SpaceMap {
    pub fn new(pool: Arc<BufferPool>) -> SpaceMap {
        SpaceMap { pool }
    }

    /// Format the bitmap page. Called once at database creation; the caller
    /// force-writes it (DDL is not replayed by recovery — see DESIGN.md §4).
    pub fn initialize(pool: &Arc<BufferPool>) -> Result<()> {
        let mut g = pool.fix_x(SPACE_MAP_PAGE)?;
        g.format(SPACE_MAP_PAGE, PageType::SpaceMap, 0, 0);
        g.mark_dirty_raw(Lsn::FIRST);
        Ok(())
    }

    /// Allocate the lowest free page, logging the bitmap update through the
    /// caller's transaction chain. Returns the page id; the caller formats
    /// the page itself (and logs that separately).
    pub fn allocate(&self, logger: &mut ChainLogger<'_>) -> Result<PageId> {
        let mut g = self.pool.fix_x(SPACE_MAP_PAGE)?;
        for n in 0..MAX_PAGES {
            let page = PageId(FIRST_USER_PAGE + n);
            if !get_bit(&g, page) {
                set_bit(&mut g, page, true);
                let lsn = logger.update(RmId::Space, SPACE_MAP_PAGE, encode_body(page, true));
                g.record_update(lsn);
                return Ok(page);
            }
        }
        Err(Error::Internal("space map exhausted".into()))
    }

    /// Free a page (logged).
    pub fn free(&self, logger: &mut ChainLogger<'_>, page: PageId) -> Result<()> {
        let mut g = self.pool.fix_x(SPACE_MAP_PAGE)?;
        if !get_bit(&g, page) {
            return Err(Error::Internal(format!("double free of {page}")));
        }
        set_bit(&mut g, page, false);
        let lsn = logger.update(RmId::Space, SPACE_MAP_PAGE, encode_body(page, false));
        g.record_update(lsn);
        Ok(())
    }

    /// Allocation state of `page` (for invariant checks).
    pub fn is_allocated(&self, page: PageId) -> Result<bool> {
        let g = self.pool.fix_s(SPACE_MAP_PAGE)?;
        Ok(get_bit(&g, page))
    }

    /// All allocated pages (for the structural invariant checker).
    pub fn allocated_pages(&self) -> Result<Vec<PageId>> {
        let g = self.pool.fix_s(SPACE_MAP_PAGE)?;
        Ok((0..MAX_PAGES)
            .map(|n| PageId(FIRST_USER_PAGE + n))
            .filter(|&p| get_bit(&g, p))
            .collect())
    }
}

/// Resource manager for space-map records.
pub struct SpaceRm {
    pool: Arc<BufferPool>,
}

impl SpaceRm {
    pub fn new(pool: Arc<BufferPool>) -> SpaceRm {
        SpaceRm { pool }
    }
}

impl ResourceManager for SpaceRm {
    fn rm_id(&self) -> RmId {
        RmId::Space
    }

    fn redo(&self, page: &mut PageBuf, rec: &LogRecord) -> Result<()> {
        let (target, alloc) = decode_body(rec)?;
        set_bit(page, target, alloc);
        Ok(())
    }

    fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()> {
        let (target, alloc) = decode_body(rec)?;
        let mut g = self.pool.fix_x(SPACE_MAP_PAGE)?;
        set_bit(&mut g, target, !alloc);
        let lsn = logger.clr(
            RmId::Space,
            SPACE_MAP_PAGE,
            rec.prev_lsn,
            encode_body(target, !alloc),
        );
        g.record_update(lsn);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::pool::PoolOptions;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::TxnId;
    use ariesim_wal::{LogManager, LogOptions};

    fn setup() -> (TempDir, Arc<BufferPool>, Arc<LogManager>) {
        let dir = TempDir::new("space");
        let stats = new_stats();
        let log = Arc::new(
            LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
        );
        let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
        let pool = BufferPool::new(disk, log.clone(), PoolOptions::default(), stats);
        SpaceMap::initialize(&pool).unwrap();
        (dir, pool, log)
    }

    #[test]
    fn allocate_is_dense_from_first_user_page() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool);
        let mut cl = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        let b = sm.allocate(&mut cl).unwrap();
        assert_eq!(a, PageId(FIRST_USER_PAGE));
        assert_eq!(b, PageId(FIRST_USER_PAGE + 1));
        assert!(sm.is_allocated(a).unwrap());
    }

    #[test]
    fn free_then_reallocate_lowest() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool);
        let mut cl = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        let _b = sm.allocate(&mut cl).unwrap();
        sm.free(&mut cl, a).unwrap();
        assert!(!sm.is_allocated(a).unwrap());
        let c = sm.allocate(&mut cl).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn double_free_is_error() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool);
        let mut cl = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        sm.free(&mut cl, a).unwrap();
        assert!(sm.free(&mut cl, a).is_err());
    }

    #[test]
    fn updates_are_logged_with_chain() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool);
        let mut cl = ChainLogger::new(&log, TxnId(9), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        sm.free(&mut cl, a).unwrap();
        let recs: Vec<LogRecord> = log.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.rm == RmId::Space));
        assert_eq!(recs[1].prev_lsn, recs[0].lsn);
        assert_eq!(decode_body(&recs[0]).unwrap(), (a, true));
        assert_eq!(decode_body(&recs[1]).unwrap(), (a, false));
    }

    #[test]
    fn rm_redo_applies_bit() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool.clone());
        let mut cl = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        let rec = log.scan(Lsn::NULL).next().unwrap().unwrap();
        // Redo into a freshly formatted page reproduces the bit.
        let mut img = PageBuf::zeroed();
        img.format(SPACE_MAP_PAGE, PageType::SpaceMap, 0, 0);
        let rm = SpaceRm::new(pool);
        rm.redo(&mut img, &rec).unwrap();
        assert!(get_bit(&img, a));
    }

    #[test]
    fn rm_undo_inverts_and_writes_clr() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool.clone());
        let mut cl = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        let alloc_rec = log.scan(Lsn::NULL).next().unwrap().unwrap();
        let rm = SpaceRm::new(pool);
        rm.undo(&mut cl, &alloc_rec).unwrap();
        assert!(!sm.is_allocated(a).unwrap());
        let recs: Vec<LogRecord> = log.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].kind, ariesim_wal::RecordKind::Clr);
        assert_eq!(recs[1].undo_next_lsn, alloc_rec.prev_lsn);
    }

    #[test]
    fn allocated_pages_lists_exactly_the_set_bits() {
        let (_d, pool, log) = setup();
        let sm = SpaceMap::new(pool);
        let mut cl = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let a = sm.allocate(&mut cl).unwrap();
        let b = sm.allocate(&mut cl).unwrap();
        let c = sm.allocate(&mut cl).unwrap();
        sm.free(&mut cl, b).unwrap();
        assert_eq!(sm.allocated_pages().unwrap(), vec![a, c]);
    }
}
