//! Disk manager: a file of [`PAGE_SIZE`]-byte pages.
//!
//! The database file is the *stable* page store. Reads of pages beyond the
//! current end of file return zeroed images (the file is grown lazily by the
//! first write), which a formatted page always overwrites before use.

use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{PageBuf, PageId, Result, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Read-fault hook: consulted with the page id before every
/// [`DiskManager::read_page`]; an `Err` becomes the read's result.
pub type ReadFaultHook = Arc<dyn Fn(PageId) -> Result<()> + Send + Sync>;

/// Write-fault hook: consulted with the page id before every
/// [`DiskManager::write_page`]; an `Err` becomes the write's result.
pub type WriteFaultHook = Arc<dyn Fn(PageId) -> Result<()> + Send + Sync>;

/// Thread-safe page file.
pub struct DiskManager {
    file: Mutex<File>,
    stats: StatsHandle,
    read_hook: Mutex<Option<ReadFaultHook>>,
    write_hook: Mutex<Option<WriteFaultHook>>,
}

impl DiskManager {
    pub fn open(path: &Path, stats: StatsHandle) -> Result<DiskManager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(DiskManager {
            file: Mutex::new(file),
            stats,
            read_hook: Mutex::new(None),
            write_hook: Mutex::new(None),
        })
    }

    /// Install (or, with `None`, remove) a [`ReadFaultHook`]. Test-only
    /// instrumentation: the hook can delay or fail reads to drive the
    /// I/O-error paths above the disk (e.g. the buffer pool's load unwind)
    /// deterministically.
    pub fn set_read_hook(&self, hook: Option<ReadFaultHook>) {
        *self.read_hook.lock() = hook;
    }

    /// Install (or, with `None`, remove) a [`WriteFaultHook`]. Test-only
    /// instrumentation, like [`Self::set_read_hook`] but for writes — e.g.
    /// holding a thread open inside an eviction write-back to force the
    /// racy interleavings of the buffer pool's install path.
    pub fn set_write_hook(&self, hook: Option<WriteFaultHook>) {
        *self.write_hook.lock() = hook;
    }

    /// Number of pages the file currently holds (rounded up).
    pub fn page_count(&self) -> Result<u32> {
        let g = self.file.lock();
        let len = g.metadata()?.len();
        Ok(len.div_ceil(PAGE_SIZE as u64) as u32)
    }

    /// Read a page image; pages beyond EOF read as zeroes.
    pub fn read_page(&self, id: PageId) -> Result<PageBuf> {
        let hook = self.read_hook.lock().clone();
        if let Some(hook) = hook {
            hook(id)?;
        }
        let mut buf = PageBuf::zeroed();
        let mut g = self.file.lock();
        let len = g.metadata()?.len();
        let off = id.file_offset();
        if off < len {
            g.seek(SeekFrom::Start(off))?;
            let avail = ((len - off) as usize).min(PAGE_SIZE);
            g.read_exact(&mut buf.as_bytes_mut()[..avail])?;
        }
        self.stats.page_reads.bump();
        Ok(buf)
    }

    /// Write a page image at its id's offset, growing the file if needed.
    pub fn write_page(&self, page: &PageBuf) -> Result<()> {
        let hook = self.write_hook.lock().clone();
        if let Some(hook) = hook {
            hook(page.page_id())?;
        }
        let mut g = self.file.lock();
        g.seek(SeekFrom::Start(page.page_id().file_offset()))?;
        g.write_all(page.as_bytes().as_slice())?;
        self.stats.page_writes.bump();
        Ok(())
    }

    /// Force file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::page::PageType;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::Lsn;

    #[test]
    fn write_then_read_roundtrip() {
        let dir = TempDir::new("disk");
        let d = DiskManager::open(&dir.file("db"), new_stats()).unwrap();
        let mut p = PageBuf::zeroed();
        p.format(PageId(3), PageType::Heap, 7, 0);
        p.set_page_lsn(Lsn(42));
        d.write_page(&p).unwrap();
        let q = d.read_page(PageId(3)).unwrap();
        assert_eq!(q.page_id(), PageId(3));
        assert_eq!(q.page_lsn(), Lsn(42));
        assert_eq!(q.owner(), 7);
    }

    #[test]
    fn read_beyond_eof_is_zeroed() {
        let dir = TempDir::new("disk");
        let d = DiskManager::open(&dir.file("db"), new_stats()).unwrap();
        let p = d.read_page(PageId(100)).unwrap();
        assert!(p.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn page_count_tracks_highest_write() {
        let dir = TempDir::new("disk");
        let d = DiskManager::open(&dir.file("db"), new_stats()).unwrap();
        assert_eq!(d.page_count().unwrap(), 0);
        let mut p = PageBuf::zeroed();
        p.format(PageId(4), PageType::Heap, 0, 0);
        d.write_page(&p).unwrap();
        assert_eq!(d.page_count().unwrap(), 5);
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        {
            let d = DiskManager::open(&path, new_stats()).unwrap();
            let mut p = PageBuf::zeroed();
            p.format(PageId(1), PageType::IndexLeaf, 9, 0);
            d.write_page(&p).unwrap();
        }
        let d = DiskManager::open(&path, new_stats()).unwrap();
        let p = d.read_page(PageId(1)).unwrap();
        assert_eq!(p.owner(), 9);
        assert_eq!(p.page_type().unwrap(), PageType::IndexLeaf);
    }

    #[test]
    fn stats_count_io() {
        let dir = TempDir::new("disk");
        let stats = new_stats();
        let d = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
        let mut p = PageBuf::zeroed();
        p.format(PageId(1), PageType::Heap, 0, 0);
        d.write_page(&p).unwrap();
        d.read_page(PageId(1)).unwrap();
        let s = stats.snapshot();
        assert_eq!((s.page_writes, s.page_reads), (1, 1));
    }
}
