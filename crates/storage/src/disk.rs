//! Disk manager: a file of [`PAGE_SIZE`]-byte pages.
//!
//! The database file is the *stable* page store. Reads of pages beyond the
//! current end of file return zeroed images (the file is grown lazily by the
//! first write), which a formatted page always overwrites before use.

use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{PageBuf, PageId, Result, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Thread-safe page file.
pub struct DiskManager {
    file: Mutex<File>,
    stats: StatsHandle,
}

impl DiskManager {
    pub fn open(path: &Path, stats: StatsHandle) -> Result<DiskManager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(DiskManager {
            file: Mutex::new(file),
            stats,
        })
    }

    /// Number of pages the file currently holds (rounded up).
    pub fn page_count(&self) -> Result<u32> {
        let g = self.file.lock();
        let len = g.metadata()?.len();
        Ok(len.div_ceil(PAGE_SIZE as u64) as u32)
    }

    /// Read a page image; pages beyond EOF read as zeroes.
    pub fn read_page(&self, id: PageId) -> Result<PageBuf> {
        let mut buf = PageBuf::zeroed();
        let mut g = self.file.lock();
        let len = g.metadata()?.len();
        let off = id.file_offset();
        if off < len {
            g.seek(SeekFrom::Start(off))?;
            let avail = ((len - off) as usize).min(PAGE_SIZE);
            g.read_exact(&mut buf.as_bytes_mut()[..avail])?;
        }
        self.stats.page_reads.bump();
        Ok(buf)
    }

    /// Write a page image at its id's offset, growing the file if needed.
    pub fn write_page(&self, page: &PageBuf) -> Result<()> {
        let mut g = self.file.lock();
        g.seek(SeekFrom::Start(page.page_id().file_offset()))?;
        g.write_all(page.as_bytes().as_slice())?;
        self.stats.page_writes.bump();
        Ok(())
    }

    /// Force file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::page::PageType;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::Lsn;

    #[test]
    fn write_then_read_roundtrip() {
        let dir = TempDir::new("disk");
        let d = DiskManager::open(&dir.file("db"), new_stats()).unwrap();
        let mut p = PageBuf::zeroed();
        p.format(PageId(3), PageType::Heap, 7, 0);
        p.set_page_lsn(Lsn(42));
        d.write_page(&p).unwrap();
        let q = d.read_page(PageId(3)).unwrap();
        assert_eq!(q.page_id(), PageId(3));
        assert_eq!(q.page_lsn(), Lsn(42));
        assert_eq!(q.owner(), 7);
    }

    #[test]
    fn read_beyond_eof_is_zeroed() {
        let dir = TempDir::new("disk");
        let d = DiskManager::open(&dir.file("db"), new_stats()).unwrap();
        let p = d.read_page(PageId(100)).unwrap();
        assert!(p.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn page_count_tracks_highest_write() {
        let dir = TempDir::new("disk");
        let d = DiskManager::open(&dir.file("db"), new_stats()).unwrap();
        assert_eq!(d.page_count().unwrap(), 0);
        let mut p = PageBuf::zeroed();
        p.format(PageId(4), PageType::Heap, 0, 0);
        d.write_page(&p).unwrap();
        assert_eq!(d.page_count().unwrap(), 5);
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        {
            let d = DiskManager::open(&path, new_stats()).unwrap();
            let mut p = PageBuf::zeroed();
            p.format(PageId(1), PageType::IndexLeaf, 9, 0);
            d.write_page(&p).unwrap();
        }
        let d = DiskManager::open(&path, new_stats()).unwrap();
        let p = d.read_page(PageId(1)).unwrap();
        assert_eq!(p.owner(), 9);
        assert_eq!(p.page_type().unwrap(), PageType::IndexLeaf);
    }

    #[test]
    fn stats_count_io() {
        let dir = TempDir::new("disk");
        let stats = new_stats();
        let d = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
        let mut p = PageBuf::zeroed();
        p.format(PageId(1), PageType::Heap, 0, 0);
        d.write_page(&p).unwrap();
        d.read_page(PageId(1)).unwrap();
        let s = stats.snapshot();
        assert_eq!((s.page_writes, s.page_reads), (1, 1));
    }
}
