//! Storage layer: disk manager, buffer pool, page latches, space map.
//!
//! Provides the buffer-management substrate ARIES assumes (paper §1.2):
//!
//! * **steal** — a dirty page may be written to disk before its transaction
//!   commits (eviction does this), which is why undo is needed at restart;
//! * **no-force** — commit does not write pages, only the log, which is why
//!   redo is needed at restart;
//! * the **WAL rule** — before a dirty page is written, the log is flushed
//!   up to that page's `page_lsn` ([`pool`]);
//! * **page latches** — each buffer frame is guarded by an RwLock that *is*
//!   the page latch; S/X and conditional acquisition are exactly the
//!   operations the paper's Figure 4 traversal needs ([`pool`]);
//! * a **logged space map** for page allocation, so that page splits and
//!   page deletions (which allocate/free pages inside nested top actions)
//!   recover correctly ([`space`]).
//!
//! Crash simulation: dropping the [`pool::BufferPool`] without flushing and
//! reopening the [`disk::DiskManager`] over the same file reproduces the
//! stable state a crash would leave — only flushed log and previously
//! written pages survive.

pub mod disk;
pub mod eviction;
pub mod pool;
pub mod space;

pub use disk::{DiskManager, ReadFaultHook, WriteFaultHook};
pub use eviction::{EvictionPolicy, EvictionPolicyKind};
pub use pool::{
    take_latch_high_water, BufferPool, PageReadGuard, PageWriteGuard, PinGuard, PoolOptions,
    ShardCounters,
};
pub use space::{SpaceMap, SpaceRm, FIRST_USER_PAGE, SPACE_MAP_PAGE};
