//! Partitioned buffer pool with integrated page latches.
//!
//! Each buffer frame is an `RwLock<PageBuf>`; holding the lock *is* holding
//! the page latch, in the mode the lock was taken in. Frames additionally
//! carry an explicit atomic pin count: guards hold a [`PinGuard`] (an RAII
//! pin), so a latched (or merely fixed) page can never be evicted, and
//! unpinning is one atomic decrement — no pool-wide lock anywhere on the
//! release path.
//!
//! **Partitioning.** The page table is split into N partitions ("shards"):
//! `hash(PageId) → shard`, each shard owning a contiguous slice of the frame
//! array plus its own mutex, page table, dirty-page bookkeeping and
//! [`EvictionPolicy`] instance. A hit takes one shard mutex briefly; a
//! re-pin through an existing [`PinGuard`] (or a guard's
//! [`PageReadGuard::repin`]) touches only the frame's atomics. The old
//! whole-pool `PoolMutex` lockdep class is retired; shard mutexes register
//! as `PoolShard` (same rank 3 — a thread never holds two shards at once).
//!
//! The pool implements the ARIES buffer policies (paper §1.2):
//!
//! * **steal**: eviction writes dirty pages regardless of transaction state,
//!   after enforcing the **WAL rule** (log forced up to the victim's
//!   `page_lsn` first);
//! * **no-force**: nothing here flushes at commit; only checkpoints,
//!   eviction, and the background writer write pages;
//! * a **dirty page table** records, for every dirty cached page, its
//!   `rec_lsn` — the LSN of the first record that dirtied it — which fuzzy
//!   checkpoints persist and restart's analysis pass rebuilds. It is kept
//!   per-shard (a page's DPT entry lives in the shard that owns its frame)
//!   and merged on snapshot.
//!
//! **Failed loads.** A miss installs its page-table mapping *before* the
//! read I/O, so concurrent fixes of the same page hit the loading frame and
//! wait on the loader's latch instead of double-loading. If the read fails
//! the install is unwound; any pin taken on the frame in that window turns
//! into [`Error::StalePin`] at its next latch attempt (the frame's atomic
//! owner word is validated after every latch acquisition). `fix_*` retries
//! the fix transparently; explicit [`PinGuard`] holders see the error.
//!
//! **Background writer.** [`BufferPool::bg_tick`] writes back a bounded
//! batch of dirty, unpinned pages (WAL rule per page) so foreground misses
//! find clean victims and skip the force+write on the eviction path. An
//! optional thread ([`PoolOptions::bg_writer`]) calls it on an interval;
//! the torture harness calls it synchronously so the `pool.bgwriter.*`
//! crash points are exercised deterministically.
//!
//! Latch acquisition supports conditional (`try_`) variants, used by the
//! B+-tree to obey the paper's rule that nothing waits for a latch while
//! holding an incompatible one out of order.

use crate::disk::DiskManager;
use crate::eviction::{EvictionPolicy, EvictionPolicyKind};
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Error, Lsn, PageBuf, PageId, Result};
use ariesim_fault::crash_point;
use ariesim_obs::lockdep;
use ariesim_obs::{EventKind, MetricsRegistry, ModeTag, Obs, ObsHandle, SpanKind};
use ariesim_wal::{DptEntry, LogManager};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
// The per-frame protocol words (`pins`, `owner`) are model-checkable facade
// atomics — their interleavings are what `crates/model`'s pool harnesses
// explore; the per-shard traffic counters are plain std atomics (pure
// statistics, no protocol).
use ariesim_common::msync::AtomicU32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

type ReadLatch = ArcRwLockReadGuard<RawRwLock, PageBuf>;
type WriteLatch = ArcRwLockWriteGuard<RawRwLock, PageBuf>;

thread_local! {
    /// (currently held, high-water mark) page latches on this thread — the
    /// gauge behind the paper's "not more than 2 index pages are held
    /// latched simultaneously" claim (validated in the latch-budget test).
    static LATCH_DEPTH: std::cell::Cell<(u32, u32)> = const { std::cell::Cell::new((0, 0)) };
}

fn latch_depth_inc() {
    LATCH_DEPTH.with(|d| {
        let (cur, max) = d.get();
        d.set((cur + 1, max.max(cur + 1)));
    });
}

fn latch_depth_dec() {
    LATCH_DEPTH.with(|d| {
        let (cur, max) = d.get();
        d.set((cur.saturating_sub(1), max));
    });
}

/// Reset this thread's latch high-water mark and return the previous value.
pub fn take_latch_high_water() -> u32 {
    LATCH_DEPTH.with(|d| {
        let (cur, max) = d.get();
        d.set((cur, 0));
        max
    })
}

/// Default partition count requested when [`PoolOptions::partitions`] is 0.
pub const DEFAULT_PARTITIONS: usize = 8;

/// Pool tuning.
#[derive(Clone, Debug)]
pub struct PoolOptions {
    /// Number of buffer frames.
    pub frames: usize,
    /// Page-table partitions; 0 = auto ([`DEFAULT_PARTITIONS`], bounded so
    /// every partition owns at least 16 frames). Explicit values are
    /// likewise clamped — a tiny pool collapses to one partition rather
    /// than starving a partition of frames for its pin chains.
    pub partitions: usize,
    /// Replacement policy run by each partition.
    pub policy: EvictionPolicyKind,
    /// Spawn a background writer thread ticking at this interval. `None`
    /// (the default) leaves write-back on the foreground paths; callers can
    /// still drive [`BufferPool::bg_tick`] by hand.
    pub bg_writer: Option<Duration>,
    /// Max dirty pages written back per background-writer tick.
    pub bg_batch: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            frames: 256,
            partitions: 0,
            policy: EvictionPolicyKind::Clock,
            bg_writer: None,
            bg_batch: 8,
        }
    }
}

impl PoolOptions {
    /// Partition count actually used: every partition must own enough
    /// frames for the deepest simultaneous pin chain with slack, so the
    /// request is clamped to `frames / 16` (min 1, max 64 partitions).
    pub fn effective_partitions(&self) -> usize {
        let requested = if self.partitions == 0 {
            DEFAULT_PARTITIONS
        } else {
            self.partitions
        };
        requested.clamp(1, (self.frames / 16).max(1)).min(64)
    }
}

/// Re-injectable historical races, compiled only under the `model-bugs`
/// feature and armed at runtime: the model checker's own regression oracle
/// (its tests assert it rediscovers each within the quick schedule budget).
/// Both are real bugs this pool shipped with before its concurrency review:
///
/// * **double install** — the install path re-checked only the victim's
///   pin count, not the shard page table, so two racing misses on the same
///   page could each install it into a different frame;
/// * **stale pin** — latch acquisition did not validate the frame's owner
///   word, so a pin taken through a mapping that a failed load later
///   unwound would silently read whatever image the frame held next.
#[cfg(feature = "model-bugs")]
pub mod bugs {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DOUBLE_INSTALL: AtomicBool = AtomicBool::new(false);
    static STALE_PIN: AtomicBool = AtomicBool::new(false);

    /// Arm/disarm the double-install race (process-global).
    pub fn arm_double_install(on: bool) {
        // ordering: arming happens before threads spawn and is read through
        // a schedule point anyway; relaxed is sufficient.
        DOUBLE_INSTALL.store(on, Ordering::Relaxed);
    }

    /// Arm/disarm the stale-pin race (process-global).
    pub fn arm_stale_pin(on: bool) {
        // ordering: see `arm_double_install`.
        STALE_PIN.store(on, Ordering::Relaxed);
    }

    pub(crate) fn double_install_armed() -> bool {
        // ordering: flag only; no data is published through it.
        DOUBLE_INSTALL.load(Ordering::Relaxed)
    }

    pub(crate) fn stale_pin_armed() -> bool {
        // ordering: flag only; no data is published through it.
        STALE_PIN.load(Ordering::Relaxed)
    }
}

/// True while the historical double-install race is re-injected.
#[cfg(feature = "model-bugs")]
fn bug_double_install() -> bool {
    bugs::double_install_armed()
}

#[cfg(not(feature = "model-bugs"))]
fn bug_double_install() -> bool {
    false
}

/// True while the historical stale-pin race is re-injected.
#[cfg(feature = "model-bugs")]
fn bug_stale_pin() -> bool {
    bugs::stale_pin_armed()
}

#[cfg(not(feature = "model-bugs"))]
fn bug_stale_pin() -> bool {
    false
}

#[derive(Clone, Copy)]
struct FrameMeta {
    page: PageId,
    dirty: bool,
}

impl FrameMeta {
    const FREE: FrameMeta = FrameMeta {
        page: PageId::NULL,
        dirty: false,
    };
}

/// One buffer frame: the latched page image plus its pin count. The pin
/// count is outside every mutex — pinning from a hit happens under the
/// owning shard's mutex (so eviction, which also holds it, cannot race),
/// re-pinning from an existing pin and *all* unpinning are plain atomics.
struct Frame {
    buf: Arc<RwLock<PageBuf>>,
    pins: AtomicU32,
    /// PageId this frame currently holds (NULL while free), written only
    /// under the owning shard's mutex at install/unwind. Latchers validate
    /// it against their pin after acquiring the latch: a failed load
    /// unwinds a frame while foreign pins may exist, and those pins must
    /// fail loudly ([`Error::StalePin`]) rather than read whatever image
    /// the frame holds now.
    owner: AtomicU32,
}

/// Per-partition traffic counters (relaxed atomics; exposed per shard by
/// [`BufferPool::register_metrics`] and summed into `obs.pool`).
#[derive(Default)]
pub struct ShardCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    /// Shard-mutex acquisitions that found the mutex already held.
    pub contended: AtomicU64,
}

/// Mutable state of one partition, guarded by the shard mutex.
struct ShardInner {
    /// Page → partition-local frame index.
    table: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    /// Dirty page table slice: page → rec_lsn, for pages framed here.
    dpt: HashMap<PageId, Lsn>,
    policy: Box<dyn EvictionPolicy>,
}

struct Shard {
    /// Global index of this partition's frame 0.
    base: usize,
    inner: Mutex<ShardInner>,
    counters: ShardCounters,
}

/// Shard-mutex guard that reports its acquisition/release to the lockdep
/// graph, so a shard-held-across-a-latch-wait bug shows up as an
/// order-violating edge rather than a silent hang.
struct ShardGuard<'a>(parking_lot::MutexGuard<'a, ShardInner>);

impl std::ops::Deref for ShardGuard<'_> {
    type Target = ShardInner;

    fn deref(&self) -> &ShardInner {
        &self.0
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut ShardInner {
        &mut self.0
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        lockdep::released(lockdep::Class::PoolShard);
    }
}

/// Handle on the spawned background-writer thread.
struct BgWriter {
    /// Dropping the sender wakes and stops the thread.
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The buffer pool. Use through `Arc` — page guards keep the pool alive.
pub struct BufferPool {
    frames: Vec<Frame>,
    shards: Vec<Shard>,
    policy_name: &'static str,
    bg_batch: usize,
    bg: Mutex<Option<BgWriter>>,
    disk: DiskManager,
    log: Arc<LogManager>,
    stats: StatsHandle,
    obs: ObsHandle,
}

impl BufferPool {
    pub fn new(
        disk: DiskManager,
        log: Arc<LogManager>,
        opts: PoolOptions,
        stats: StatsHandle,
    ) -> Arc<BufferPool> {
        BufferPool::new_with_obs(disk, log, opts, stats, Obs::disabled())
    }

    pub fn new_with_obs(
        disk: DiskManager,
        log: Arc<LogManager>,
        opts: PoolOptions,
        stats: StatsHandle,
        obs: ObsHandle,
    ) -> Arc<BufferPool> {
        assert!(opts.frames >= 8, "pool too small to be useful");
        let n = opts.effective_partitions();
        // Distribute frames: the first `frames % n` shards get one extra.
        let mut shards = Vec::with_capacity(n);
        let mut base = 0;
        for sid in 0..n {
            let len = opts.frames / n + usize::from(sid < opts.frames % n);
            shards.push(Shard {
                base,
                inner: Mutex::new(ShardInner {
                    table: HashMap::new(),
                    meta: vec![FrameMeta::FREE; len],
                    dpt: HashMap::new(),
                    policy: opts.policy.build(len),
                }),
                counters: ShardCounters::default(),
            });
            base += len;
        }
        let pool = Arc::new(BufferPool {
            frames: (0..opts.frames)
                .map(|_| Frame {
                    buf: Arc::new(RwLock::new(PageBuf::zeroed())),
                    pins: AtomicU32::new(0),
                    owner: AtomicU32::new(PageId::NULL.0),
                })
                .collect(),
            shards,
            policy_name: opts.policy.name(),
            bg_batch: opts.bg_batch.max(1),
            bg: Mutex::new(None),
            disk,
            log,
            stats,
            obs,
        });
        if let Some(interval) = opts.bg_writer {
            *pool.bg.lock() = spawn_bg_writer(&pool, interval);
        }
        pool
    }

    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    /// Number of page-table partitions in use.
    pub fn partitions(&self) -> usize {
        self.shards.len()
    }

    /// Name of the eviction policy the partitions run.
    pub fn eviction_policy(&self) -> &'static str {
        self.policy_name
    }

    /// Per-partition counter snapshot: `(hits, misses, evictions,
    /// contended)` per shard.
    pub fn shard_stats(&self) -> Vec<(u64, u64, u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                (
                    // ordering: advisory per-shard counters; nothing synchronizes-with them
                    s.counters.hits.load(Ordering::Relaxed),
                    s.counters.misses.load(Ordering::Relaxed), // ordering: as above
                    s.counters.evictions.load(Ordering::Relaxed), // ordering: as above
                    s.counters.contended.load(Ordering::Relaxed), // ordering: as above
                )
            })
            .collect()
    }

    /// Sum of all frame pin counts (test oracle for pin balance).
    pub fn total_pins(&self) -> u64 {
        self.frames
            .iter()
            // ordering: pin words synchronize via AcqRel RMWs; Acquire here keeps this sum coherent with them (still advisory across frames)
            .map(|f| f.pins.load(Ordering::Acquire) as u64)
            .sum()
    }

    /// Register per-partition counters into `reg` as
    /// `pool_shard_<i>_{hits,misses,evictions,contended}`.
    pub fn register_metrics(self: &Arc<Self>, reg: &MetricsRegistry) {
        for sid in 0..self.shards.len() {
            let p = self.clone();
            reg.register_counter(
                &format!("pool_shard_{sid}_hits"),
                "per-partition buffer-pool page-table hits",
                move || p.shards[sid].counters.hits.load(Ordering::Relaxed), // ordering: advisory counter gauge
            );
            let p = self.clone();
            reg.register_counter(
                &format!("pool_shard_{sid}_misses"),
                "per-partition buffer-pool misses",
                move || p.shards[sid].counters.misses.load(Ordering::Relaxed), // ordering: advisory counter gauge
            );
            let p = self.clone();
            reg.register_counter(
                &format!("pool_shard_{sid}_evictions"),
                "per-partition buffer-pool evictions",
                move || p.shards[sid].counters.evictions.load(Ordering::Relaxed), // ordering: advisory counter gauge
            );
            let p = self.clone();
            reg.register_counter(
                &format!("pool_shard_{sid}_contended"),
                "per-partition shard-mutex acquisitions that found it held",
                move || p.shards[sid].counters.contended.load(Ordering::Relaxed), // ordering: advisory counter gauge
            );
        }
    }

    fn shard_of(&self, page: PageId) -> usize {
        // Fibonacci hashing spreads the mostly-sequential PageIds evenly.
        let h = (page.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    fn lock_shard(&self, sid: usize, site: &'static str) -> ShardGuard<'_> {
        let shard = &self.shards[sid];
        lockdep::acquired(lockdep::Class::PoolShard, site, true);
        let inner = match shard.inner.try_lock() {
            Some(g) => g,
            None => {
                // ordering: contention counters are advisory; no payload rides on them
                shard.counters.contended.fetch_add(1, Ordering::Relaxed);
                self.obs.pool.shard_contended.fetch_add(1, Ordering::Relaxed); // ordering: as above
                shard.inner.lock()
            }
        };
        ShardGuard(inner)
    }

    // --- fixing ---------------------------------------------------------

    /// Fix `page` and latch it shared. Blocks until the latch is available.
    pub fn fix_s(self: &Arc<Self>, page: PageId) -> Result<PageReadGuard> {
        self.fix_shared(page, false)
    }

    /// Fix `page` and latch it shared, failing with [`Error::WouldBlock`]
    /// instead of waiting for the latch.
    pub fn try_fix_s(self: &Arc<Self>, page: PageId) -> Result<PageReadGuard> {
        self.fix_shared(page, true)
    }

    /// Fix `page` and latch it exclusive. Blocks until available.
    pub fn fix_x(self: &Arc<Self>, page: PageId) -> Result<PageWriteGuard> {
        self.fix_exclusive(page, false)
    }

    /// Fix `page` and latch it exclusive, failing with [`Error::WouldBlock`]
    /// instead of waiting.
    pub fn try_fix_x(self: &Arc<Self>, page: PageId) -> Result<PageWriteGuard> {
        self.fix_exclusive(page, true)
    }

    /// Fix `page` without latching it: the returned pin keeps the frame
    /// resident, and its [`PinGuard::latch_s`]/[`PinGuard::latch_x`] latch
    /// the page again without any shard lookup. This is the fast re-access
    /// path for callers that revisit the same page repeatedly (redo loops,
    /// standby apply).
    pub fn pin(self: &Arc<Self>, page: PageId) -> Result<PinGuard> {
        self.stats.page_fixes.bump();
        match self.claim(page)? {
            Claimed::Hit(pin) => Ok(pin),
            Claimed::Loaded(latch, pin) => {
                drop(latch);
                lockdep::released(lockdep::Class::PageLatch);
                Ok(pin)
            }
        }
    }

    fn fix_shared(self: &Arc<Self>, page: PageId, conditional: bool) -> Result<PageReadGuard> {
        self.stats.page_fixes.bump();
        loop {
            match self.claim(page)? {
                Claimed::Hit(pin) => {
                    match self.latch_frame_s(pin, conditional, "storage::pool::fix_s") {
                        // A concurrent failed load unwound the frame between
                        // our pin and our latch; re-fix from the page table.
                        Err(Error::StalePin { .. }) => continue,
                        other => return other,
                    }
                }
                Claimed::Loaded(wlatch, pin) => {
                    // The latch was already acquired (and lockdep-recorded)
                    // inside `claim`, under the load I/O.
                    self.stats.latches_page.bump();
                    latch_depth_inc();
                    self.note_latch_acquired(page, ModeTag::S);
                    return Ok(PageReadGuard {
                        latch: Some(ArcRwLockWriteGuard::downgrade(wlatch)),
                        pin,
                    });
                }
            }
        }
    }

    fn fix_exclusive(self: &Arc<Self>, page: PageId, conditional: bool) -> Result<PageWriteGuard> {
        self.stats.page_fixes.bump();
        loop {
            match self.claim(page)? {
                Claimed::Hit(pin) => {
                    match self.latch_frame_x(pin, conditional, "storage::pool::fix_x") {
                        // Unwound under us (see `fix_shared`); retry the fix.
                        Err(Error::StalePin { .. }) => continue,
                        other => return other,
                    }
                }
                Claimed::Loaded(wlatch, pin) => {
                    // Latch acquired (and lockdep-recorded) inside `claim`.
                    self.stats.latches_page.bump();
                    latch_depth_inc();
                    self.note_latch_acquired(page, ModeTag::X);
                    return Ok(PageWriteGuard {
                        latch: Some(wlatch),
                        pin,
                    });
                }
            }
        }
    }

    /// Latch an already-pinned frame shared. On a conditional miss the pin
    /// is dropped (one atomic) and [`Error::WouldBlock`] returned; if the
    /// frame stopped holding the pinned page (a concurrent failed load
    /// unwound it), [`Error::StalePin`].
    fn latch_frame_s(
        &self,
        pin: PinGuard,
        conditional: bool,
        site: &'static str,
    ) -> Result<PageReadGuard> {
        let slot = self.frames[pin.frame].buf.clone();
        let latch = match slot.try_read_arc() {
            Some(g) => g,
            None if conditional => return Err(Error::WouldBlock),
            None => {
                self.stats.latch_page_waits.bump();
                let wait = self.obs.timer();
                let span = self.obs.span(SpanKind::LatchWait, 0, pin.page.0);
                let g = slot.read_arc();
                drop(span);
                self.obs.hist.latch_wait_page.record_since(wait);
                g
            }
        };
        // ordering: acquire pairs with the Release owner store at
        // install/unwind — seeing the new owner implies seeing the table
        // state that produced it.
        if !bug_stale_pin()
            && self.frames[pin.frame].owner.load(Ordering::Acquire) != pin.page.0 // ordering: pairs with the Release owner stores
        {
            return Err(Error::StalePin { page: pin.page });
        }
        self.stats.latches_page.bump();
        latch_depth_inc();
        lockdep::acquired(lockdep::Class::PageLatch, site, !conditional);
        self.note_latch_acquired(pin.page, ModeTag::S);
        Ok(PageReadGuard {
            latch: Some(latch),
            pin,
        })
    }

    /// Latch an already-pinned frame exclusive; see [`Self::latch_frame_s`].
    fn latch_frame_x(
        &self,
        pin: PinGuard,
        conditional: bool,
        site: &'static str,
    ) -> Result<PageWriteGuard> {
        let slot = self.frames[pin.frame].buf.clone();
        let latch = match slot.try_write_arc() {
            Some(g) => g,
            None if conditional => return Err(Error::WouldBlock),
            None => {
                self.stats.latch_page_waits.bump();
                let wait = self.obs.timer();
                let span = self.obs.span(SpanKind::LatchWait, 0, pin.page.0);
                let g = slot.write_arc();
                drop(span);
                self.obs.hist.latch_wait_page.record_since(wait);
                g
            }
        };
        // ordering: see `latch_frame_s` — acquire pairs with the Release
        // owner store at install/unwind.
        if !bug_stale_pin()
            && self.frames[pin.frame].owner.load(Ordering::Acquire) != pin.page.0 // ordering: pairs with the Release owner stores
        {
            return Err(Error::StalePin { page: pin.page });
        }
        self.stats.latches_page.bump();
        latch_depth_inc();
        lockdep::acquired(lockdep::Class::PageLatch, site, !conditional);
        self.note_latch_acquired(pin.page, ModeTag::X);
        Ok(PageWriteGuard {
            latch: Some(latch),
            pin,
        })
    }

    fn note_latch_acquired(&self, page: PageId, mode: ModeTag) {
        self.obs.monitor.on_page_latch_acquired(page.0);
        self.obs.event(EventKind::LatchAcquire, mode, 0, page.0, 0);
    }

    fn note_latch_released(&self, page: u32, mode: ModeTag) {
        lockdep::released(lockdep::Class::PageLatch);
        self.obs.monitor.on_page_latch_released(page);
        self.obs.event(EventKind::LatchRelease, mode, 0, page, 0);
    }

    /// Ring evidence of the WAL rule: a dirty page hit disk at `page_lsn`
    /// while the log was durable to `durable` (`durable >= page_lsn` must
    /// hold on every such event; tests check the dump).
    fn note_write_back(&self, page: PageId, page_lsn: Lsn) {
        let durable = self.log.flushed_lsn();
        self.obs.event(
            EventKind::PageWriteBack,
            ModeTag::None,
            durable.0,
            page.0,
            page_lsn.0,
        );
    }

    /// Pin `page`'s frame, loading it from disk if absent. On a miss, the
    /// returned write latch is already held (the load I/O happened under it).
    fn claim(self: &Arc<Self>, page: PageId) -> Result<Claimed> {
        debug_assert!(!page.is_null(), "fix of NULL page");
        let sid = self.shard_of(page);
        loop {
            let mut g = self.lock_shard(sid, "storage::pool::claim");
            if let Some(&local) = g.table.get(&page) {
                let gidx = self.shards[sid].base + local;
                // ordering: AcqRel pin increment pairs with the install/eviction pin checks — a nonzero count must imply a visible frame
                self.frames[gidx].pins.fetch_add(1, Ordering::AcqRel);
                g.policy.on_hit(local);
                drop(g);
                // ordering: advisory counters; nothing synchronizes-with them
                self.shards[sid].counters.hits.fetch_add(1, Ordering::Relaxed);
                self.obs.pool.hits.fetch_add(1, Ordering::Relaxed); // ordering: as above
                return Ok(Claimed::Hit(PinGuard {
                    pool: self.clone(),
                    frame: gidx,
                    page,
                }));
            }
            // Miss: the policy proposes victims among this shard's frames;
            // a frame is accepted only if unpinned *and* its latch is free
            // (the conditional write latch is claimed inside the callback
            // and kept for the eviction + load I/O).
            let base = self.shards[sid].base;
            let mut wlatch: Option<WriteLatch> = None;
            let mut latch_busy = false;
            let victim = {
                let inner: &mut ShardInner = &mut g;
                let frames = &self.frames;
                inner.policy.victim(&mut |local| {
                    let fr = &frames[base + local];
                    // ordering: pairs with the AcqRel pin RMWs; a frame seen unpinned here is re-checked under its write latch before eviction
                    if fr.pins.load(Ordering::Acquire) != 0 {
                        return false;
                    }
                    match fr.buf.try_write_arc() {
                        Some(w) => {
                            wlatch = Some(w);
                            true
                        }
                        None => {
                            // pins==0 yet latch held: a checkpoint fence is
                            // walking the frames. Transient.
                            latch_busy = true;
                            false
                        }
                    }
                })
            };
            let (Some(local), Some(latch)) = (victim, wlatch) else {
                drop(g);
                if latch_busy {
                    std::thread::yield_now();
                    continue;
                }
                return Err(Error::BufferPoolFull);
            };
            let old = g.meta[local];
            let gidx = base + local;
            drop(g);
            // The old mapping stays in the table until the write-back below
            // completes: a concurrent fix of the old page must HIT this
            // frame (and block on our latch), never miss and fault a stale
            // image in from disk while the newest version only exists here.
            //
            // I/O outside the shard mutex, under the frame's write latch.
            // The latch was obtained with a trylock, so it joins the lockdep
            // held set without an ordering edge.
            lockdep::acquired(lockdep::Class::PageLatch, "storage::pool::claim.load", false);
            let mut latch = latch;
            if old.dirty {
                let written = (|| {
                    crash_point!("pool.evict.begin");
                    // WAL rule: the log must cover the page before it hits
                    // disk.
                    self.log.flush_to(latch.page_lsn())?;
                    crash_point!("pool.evict.after_force");
                    let io = self.obs.timer();
                    {
                        let _span = self.obs.span(SpanKind::PageWrite, 0, old.page.0);
                        self.disk.write_page(&latch)?;
                    }
                    crash_point!("pool.evict.after_write");
                    self.obs.hist.page_write.record_since(io);
                    self.note_write_back(old.page, latch.page_lsn());
                    Ok(())
                })();
                if let Err(e) = written {
                    drop(latch);
                    lockdep::released(lockdep::Class::PageLatch);
                    return Err(e);
                }
            }
            // Re-take the shard mutex to complete the eviction. Two races
            // can void the victim while the mutex was dropped:
            //  * a thread hit the old page during our write-back (pinning
            //    the frame, then blocking on our latch) — the frame must
            //    keep the old page;
            //  * a concurrent miss on `page` won the install into another
            //    frame (each racer's victim scan skips the other's latched
            //    frame) — a second insert would overwrite the winner's
            //    mapping and leave two frames caching the page, splitting
            //    readers and writers across divergent images.
            // Either way: keep the old mapping, record the write-back if it
            // ran (the disk image is current; we held the write latch
            // throughout), and retry — the next pass takes the hit path.
            let mut g = self.lock_shard(sid, "storage::pool::claim.install");
            // ordering: pin re-check pairs with the AcqRel pin increments; a
            // hit that pinned this frame during the I/O must be visible here.
            if self.frames[gidx].pins.load(Ordering::Acquire) != 0
                || (!bug_double_install() && g.table.contains_key(&page))
            {
                if old.dirty {
                    g.meta[local].dirty = false;
                    g.dpt.remove(&old.page);
                }
                drop(g);
                drop(latch);
                lockdep::released(lockdep::Class::PageLatch);
                std::thread::yield_now();
                continue;
            }
            if !old.page.is_null() {
                g.table.remove(&old.page);
                g.dpt.remove(&old.page);
            }
            g.table.insert(page, local);
            g.meta[local] = FrameMeta { page, dirty: false };
            // ordering: Release publishes the table/meta state that produced this owner; stale-pin re-checks load it with Acquire
            self.frames[gidx].owner.store(page.0, Ordering::Release);
            g.policy.on_load(local);
            // ordering: AcqRel pin increment pairs with eviction pin checks
            let prev = self.frames[gidx].pins.fetch_add(1, Ordering::AcqRel);
            debug_assert_eq!(prev, 0, "victim frame was pinned");
            drop(g);
            // ordering: advisory counters; nothing synchronizes-with them
            self.shards[sid].counters.misses.fetch_add(1, Ordering::Relaxed);
            self.obs.pool.misses.fetch_add(1, Ordering::Relaxed); // ordering: as above
            if !old.page.is_null() {
                // ordering: advisory counters; nothing synchronizes-with them
                self.shards[sid].counters.evictions.fetch_add(1, Ordering::Relaxed);
                self.obs.pool.evictions.fetch_add(1, Ordering::Relaxed); // ordering: as above
            }
            let pin = PinGuard {
                pool: self.clone(),
                frame: gidx,
                page,
            };
            let loaded = (|| {
                let io = self.obs.timer();
                {
                    let _span = self.obs.span(SpanKind::PageRead, 0, page.0);
                    *latch = self.disk.read_page(page)?;
                }
                self.obs.hist.page_read.record_since(io);
                Ok(())
            })();
            if let Err(e) = loaded {
                // Unwind the install: drop the mapping (the frame holds
                // garbage for `page`) before releasing latch and pin. The
                // owner word goes back to NULL so threads that pinned the
                // frame through the short-lived mapping get `StalePin` from
                // their latch instead of this non-image.
                {
                    let mut g = self.lock_shard(sid, "storage::pool::claim.unwind");
                    if g.table.get(&page) == Some(&local) {
                        g.table.remove(&page);
                        g.meta[local] = FrameMeta::FREE;
                        // ordering: Release publishes the table removal; a pinned reader's Acquire owner re-check must see NULL and fail
                        self.frames[gidx].owner.store(PageId::NULL.0, Ordering::Release);
                    }
                }
                drop(latch);
                lockdep::released(lockdep::Class::PageLatch);
                drop(pin);
                return Err(e);
            }
            return Ok(Claimed::Loaded(latch, pin));
        }
    }

    fn unpin_frame(&self, frame: usize) {
        // ordering: AcqRel decrement pairs with eviction pin checks; the release half orders our page accesses before a later evictor reuses the frame
        let prev = self.frames[frame].pins.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "unpin of unpinned frame");
    }

    fn mark_dirty(&self, page: PageId, rec_lsn: Lsn) {
        let sid = self.shard_of(page);
        let mut g = self.lock_shard(sid, "storage::pool::mark_dirty");
        if let Some(&local) = g.table.get(&page) {
            g.meta[local].dirty = true;
        }
        g.dpt.entry(page).or_insert(rec_lsn);
    }

    // --- flushing -----------------------------------------------------------

    /// Write `page` to disk if it is cached and dirty (WAL rule enforced).
    pub fn flush_page(self: &Arc<Self>, page: PageId) -> Result<()> {
        let guard = self.fix_s(page)?;
        let sid = self.shard_of(page);
        let dirty = {
            let g = self.lock_shard(sid, "storage::pool::flush_page");
            g.table.get(&page).is_some_and(|&l| g.meta[l].dirty)
        };
        if dirty {
            crash_point!("pool.flush.begin");
            self.log.flush_to(guard.page_lsn())?;
            crash_point!("pool.flush.after_force");
            let io = self.obs.timer();
            {
                let _span = self.obs.span(SpanKind::PageWrite, 0, page.0);
                self.disk.write_page(&guard)?;
            }
            crash_point!("pool.flush.after_write");
            self.obs.hist.page_write.record_since(io);
            self.note_write_back(page, guard.page_lsn());
            let mut g = self.lock_shard(sid, "storage::pool::flush_page");
            if let Some(&local) = g.table.get(&page) {
                g.meta[local].dirty = false;
            }
            g.dpt.remove(&page);
        }
        Ok(())
    }

    /// Flush every dirty page (clean shutdown / heavyweight checkpoint).
    pub fn flush_all(self: &Arc<Self>) -> Result<()> {
        for p in self.dirty_pages(usize::MAX) {
            self.flush_page(p)?;
        }
        Ok(())
    }

    /// Up to `limit` dirty pages, in (shard, page) order.
    fn dirty_pages(&self, limit: usize) -> Vec<PageId> {
        let mut pages = Vec::new();
        for sid in 0..self.shards.len() {
            if pages.len() >= limit {
                break;
            }
            let g = self.lock_shard(sid, "storage::pool::dirty_pages");
            let mut v: Vec<PageId> = g.dpt.keys().copied().collect();
            drop(g);
            v.sort();
            v.truncate(limit - pages.len());
            pages.extend(v);
        }
        pages
    }

    // --- background writer ----------------------------------------------

    /// One background-writer pass: write back up to [`PoolOptions::bg_batch`]
    /// dirty, unpinned pages (WAL rule enforced per page), round-robin over
    /// the partitions. Never faults a page in, never waits for a latch —
    /// hot pages are simply skipped this tick. Returns pages written.
    ///
    /// This is the body of the optional background thread, exposed
    /// synchronously so tests and the torture harness drive the
    /// `pool.bgwriter.*` crash points deterministically on their own thread.
    pub fn bg_tick(self: &Arc<Self>) -> Result<usize> {
        let mut written = 0usize;
        for page in self.dirty_pages(self.bg_batch) {
            if written > 0 {
                crash_point!("pool.bgwriter.mid_batch");
            }
            written += self.bg_write_back(page)?;
        }
        Ok(written)
    }

    /// Write back one dirty page if it is still resident, clean it in the
    /// DPT, and leave the WAL-rule trail in the event ring.
    fn bg_write_back(self: &Arc<Self>, page: PageId) -> Result<usize> {
        let sid = self.shard_of(page);
        // Pin only if still resident (no fault-in), then conditionally
        // S-latch (no stalling behind foreground X traffic).
        let pin = {
            let g = self.lock_shard(sid, "storage::pool::bg_pin");
            let Some(&local) = g.table.get(&page) else {
                return Ok(0);
            };
            let gidx = self.shards[sid].base + local;
            // ordering: AcqRel pin increment pairs with eviction pin checks
            self.frames[gidx].pins.fetch_add(1, Ordering::AcqRel);
            // Deliberately no `policy.on_hit`: the writer must not make
            // pages look hot.
            PinGuard {
                pool: self.clone(),
                frame: gidx,
                page,
            }
        };
        let Ok(guard) = self.latch_frame_s(pin, true, "storage::pool::bg_latch") else {
            return Ok(0);
        };
        let dirty = {
            let g = self.lock_shard(sid, "storage::pool::bg_dirty");
            g.table.get(&page).is_some_and(|&l| g.meta[l].dirty)
        };
        if !dirty {
            return Ok(0);
        }
        // WAL rule, off the foreground path: force first, then write.
        self.log.flush_to(guard.page_lsn())?;
        crash_point!("pool.bgwriter.after_force");
        let io = self.obs.timer();
        {
            let _span = self.obs.span(SpanKind::PageWrite, 0, page.0);
            self.disk.write_page(&guard)?;
        }
        crash_point!("pool.bgwriter.after_write");
        self.obs.hist.page_write.record_since(io);
        self.obs.pool.bg_writer_pages.fetch_add(1, Ordering::Relaxed); // ordering: advisory counter
        self.note_write_back(page, guard.page_lsn());
        let mut g = self.lock_shard(sid, "storage::pool::bg_clean");
        if let Some(&local) = g.table.get(&page) {
            g.meta[local].dirty = false;
        }
        g.dpt.remove(&page);
        Ok(1)
    }

    // --- checkpoint support ---------------------------------------------

    /// Snapshot of the dirty page table **for checkpoints**: first passes a
    /// fence over every resident frame (acquire + release its S latch).
    ///
    /// Why: an update appends its log record and then marks the page dirty,
    /// both inside the page's X-latch critical section. A checkpoint that
    /// snapshots the DPT right after appending CkptBegin could miss a page
    /// whose record (LSN < CkptBegin) is logged but not yet registered —
    /// and restart's analysis never scans below CkptBegin, losing the
    /// update. Waiting for each held latch once guarantees every update
    /// logged before the fence has completed its registration. New updates
    /// (LSN > CkptBegin) are covered by the analysis scan itself.
    pub fn dpt_snapshot_fenced(&self) -> Vec<DptEntry> {
        let mut resident = Vec::new();
        for sid in 0..self.shards.len() {
            let g = self.lock_shard(sid, "storage::pool::dpt_fence");
            let base = self.shards[sid].base;
            resident.extend(
                g.meta
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| (!m.page.is_null()).then_some(base + i)),
            );
        }
        for idx in resident {
            lockdep::acquired(lockdep::Class::PageLatch, "storage::pool::dpt_fence", true);
            drop(self.frames[idx].buf.read_arc());
            lockdep::released(lockdep::Class::PageLatch);
        }
        self.dpt_snapshot()
    }

    /// Snapshot of the dirty page table, for fuzzy checkpoints.
    pub fn dpt_snapshot(&self) -> Vec<DptEntry> {
        let mut v: Vec<DptEntry> = Vec::new();
        for sid in 0..self.shards.len() {
            let g = self.lock_shard(sid, "storage::pool::dpt_snapshot");
            v.extend(
                g.dpt
                    .iter()
                    .map(|(&page, &rec_lsn)| DptEntry { page, rec_lsn }),
            );
        }
        v.sort_by_key(|e| e.page);
        v
    }

    /// True if `page` is currently cached (for tests).
    pub fn is_cached(&self, page: PageId) -> bool {
        let sid = self.shard_of(page);
        self.lock_shard(sid, "storage::pool::is_cached").table.contains_key(&page)
    }

    /// Test oracle: every shard's page table, frame metadata and frame
    /// owner words agree — each table entry points at a frame holding that
    /// page, and every non-free frame is reachable through exactly its own
    /// table entry. A double-installed page would show up here as an
    /// orphaned frame (resident metadata with no table entry), the
    /// signature of two racing misses splitting a page across two frames.
    /// Panics on violation; safe to call concurrently with pool traffic
    /// (each shard is checked under its own mutex).
    pub fn validate_mappings(&self) {
        for sid in 0..self.shards.len() {
            let g = self.lock_shard(sid, "storage::pool::validate");
            let base = self.shards[sid].base;
            for (&page, &local) in g.table.iter() {
                assert_eq!(
                    g.meta[local].page, page,
                    "table entry names a frame holding another page"
                );
                assert_eq!(
                    // ordering: pairs with the Release owner stores; validation must see the table state that set the owner
                    self.frames[base + local].owner.load(Ordering::Acquire),
                    page.0,
                    "frame owner word drifted from the page table"
                );
            }
            for (local, m) in g.meta.iter().enumerate() {
                assert!(
                    m.page.is_null() || g.table.get(&m.page) == Some(&local),
                    "orphaned frame: {:?} resident in frame {} without a table entry",
                    m.page,
                    base + local
                );
            }
        }
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Stop and join the background writer. If the pool's last reference
        // was dropped *by* the writer thread (it upgrades its Weak during a
        // tick), joining would self-deadlock — detach instead; the thread
        // exits on its next disconnected recv.
        let bg = self.bg.lock().take();
        if let Some(mut bg) = bg {
            bg.stop.take();
            if let Some(h) = bg.handle.take() {
                if h.thread().id() != std::thread::current().id() {
                    let _ = h.join();
                }
            }
        }
    }
}

/// Spawn the interval background-writer thread. It holds only a `Weak` to
/// the pool, so dropping the last external handle stops it promptly.
fn spawn_bg_writer(pool: &Arc<BufferPool>, interval: Duration) -> Option<BgWriter> {
    let weak = Arc::downgrade(pool);
    let (tx, rx) = mpsc::channel::<()>();
    let handle = std::thread::Builder::new()
        .name("ariesim-bgwriter".into())
        .spawn(move || {
            // Ok(()) or Disconnected both mean the sender dropped: shut down.
            while let Err(mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(interval) {
                let Some(pool) = weak.upgrade() else { break };
                // I/O errors are retried on the next tick; the foreground
                // eviction path still enforces the WAL rule itself, so a
                // sick writer degrades throughput, not correctness.
                let _ = pool.bg_tick();
            }
        })
        .ok()?;
    Some(BgWriter {
        stop: Some(tx),
        handle: Some(handle),
    })
}

enum Claimed {
    /// Frame was resident: pin already taken.
    Hit(PinGuard),
    /// Frame was loaded under this already-held write latch.
    Loaded(WriteLatch, PinGuard),
}

/// An RAII pin on one buffer frame: while any pin is live the frame cannot
/// be evicted, so the page stays resident and re-latchable. Cloning a pin
/// and dropping one are single atomic operations — no shard mutex, which is
/// what makes the re-pin path of repeated page visits contention-free.
pub struct PinGuard {
    pool: Arc<BufferPool>,
    /// Global frame index.
    frame: usize,
    page: PageId,
}

impl PinGuard {
    /// The pinned page.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// S-latch the pinned page (blocking). No shard lookup: the pin keeps
    /// the frame's identity stable. The only failure is
    /// [`Error::StalePin`] — a concurrent failed load unwound the frame
    /// after this pin was taken; re-fix the page through the pool to retry.
    pub fn latch_s(&self) -> Result<PageReadGuard> {
        self.pool
            .latch_frame_s(self.clone(), false, "storage::pool::pin.latch_s")
    }

    /// Conditionally S-latch the pinned page.
    pub fn try_latch_s(&self) -> Result<PageReadGuard> {
        self.pool
            .latch_frame_s(self.clone(), true, "storage::pool::pin.latch_s")
    }

    /// X-latch the pinned page (blocking); failure modes as [`Self::latch_s`].
    pub fn latch_x(&self) -> Result<PageWriteGuard> {
        self.pool
            .latch_frame_x(self.clone(), false, "storage::pool::pin.latch_x")
    }

    /// Conditionally X-latch the pinned page.
    pub fn try_latch_x(&self) -> Result<PageWriteGuard> {
        self.pool
            .latch_frame_x(self.clone(), true, "storage::pool::pin.latch_x")
    }
}

impl Clone for PinGuard {
    fn clone(&self) -> PinGuard {
        // Safe without the shard mutex: we hold a pin, so the count is ≥ 1
        // and eviction (which requires 0) cannot race the increment.
        // ordering: AcqRel pin increment pairs with eviction pin checks
        self.pool.frames[self.frame].pins.fetch_add(1, Ordering::AcqRel);
        PinGuard {
            pool: self.pool.clone(),
            frame: self.frame,
            page: self.page,
        }
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.pool.unpin_frame(self.frame);
    }
}

/// Shared (S-latched) fixed page. Dereferences to the page image.
pub struct PageReadGuard {
    latch: Option<ReadLatch>,
    pin: PinGuard,
}

impl PageReadGuard {
    /// Take an extra pin on this page (one atomic; no shard lookup), so it
    /// stays resident after the guard is dropped.
    pub fn repin(&self) -> PinGuard {
        self.pin.clone()
    }
}

impl std::ops::Deref for PageReadGuard {
    type Target = PageBuf;

    fn deref(&self) -> &PageBuf {
        self.latch.as_ref().expect("latch held")
    }
}

impl Drop for PageReadGuard {
    fn drop(&mut self) {
        // Latch released before the pin (which drops with the struct),
        // preserving "pins==0 ⇒ latch free".
        if let Some(latch) = self.latch.take() {
            let page = latch.page_id().0;
            drop(latch);
            latch_depth_dec();
            self.pin.pool.note_latch_released(page, ModeTag::S);
        }
    }
}

/// Exclusive (X-latched) fixed page.
pub struct PageWriteGuard {
    latch: Option<WriteLatch>,
    pin: PinGuard,
}

impl PageWriteGuard {
    /// Record that a logged update with LSN `lsn` modified this page: stamps
    /// `page_lsn` and enters the page in the dirty page table (with `lsn` as
    /// `rec_lsn` if it was clean).
    pub fn record_update(&mut self, lsn: Lsn) {
        self.latch.as_mut().expect("latch held").set_page_lsn(lsn);
        self.pin.pool.mark_dirty(self.pin.page, lsn);
    }

    /// Mark dirty without stamping an LSN (used when formatting pages whose
    /// changes are covered by a following logged update).
    pub fn mark_dirty_raw(&mut self, rec_lsn: Lsn) {
        self.pin.pool.mark_dirty(self.pin.page, rec_lsn);
    }

    /// Take an extra pin on this page (one atomic; no shard lookup).
    pub fn repin(&self) -> PinGuard {
        self.pin.clone()
    }

    /// Downgrade to a shared guard without releasing the latch.
    pub fn downgrade(mut self) -> PageReadGuard {
        let latch = self.latch.take().expect("latch held");
        let page = latch.page_id().0;
        let pin = self.pin.clone();
        let pool = pin.pool.clone();
        pool.obs.event(EventKind::LatchRelease, ModeTag::X, 0, page, 0);
        pool.obs.event(EventKind::LatchAcquire, ModeTag::S, 0, page, 0);
        // `self` now has no latch: its drop releases only the original pin,
        // while `pin` holds the frame through the downgrade.
        drop(self);
        PageReadGuard {
            latch: Some(ArcRwLockWriteGuard::downgrade(latch)),
            pin,
        }
    }
}

impl std::ops::Deref for PageWriteGuard {
    type Target = PageBuf;

    fn deref(&self) -> &PageBuf {
        self.latch.as_ref().expect("latch held")
    }
}

impl std::ops::DerefMut for PageWriteGuard {
    fn deref_mut(&mut self) -> &mut PageBuf {
        self.latch.as_mut().expect("latch held")
    }
}

impl Drop for PageWriteGuard {
    fn drop(&mut self) {
        if let Some(latch) = self.latch.take() {
            let page = latch.page_id().0;
            drop(latch);
            latch_depth_dec();
            self.pin.pool.note_latch_released(page, ModeTag::X);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::page::PageType;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_wal::LogOptions;

    fn setup(frames: usize) -> (TempDir, Arc<BufferPool>, Arc<LogManager>) {
        setup_opts(PoolOptions {
            frames,
            ..PoolOptions::default()
        })
    }

    fn setup_opts(opts: PoolOptions) -> (TempDir, Arc<BufferPool>, Arc<LogManager>) {
        let dir = TempDir::new("pool");
        let stats = new_stats();
        let log = Arc::new(
            LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
        );
        let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
        let pool = BufferPool::new(disk, log.clone(), opts, stats);
        (dir, pool, log)
    }

    fn format_page(pool: &Arc<BufferPool>, id: PageId) {
        let mut g = pool.fix_x(id).unwrap();
        g.format(id, PageType::Heap, 0, 0);
        g.record_update(Lsn(1));
    }

    #[test]
    fn fix_miss_then_hit() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        assert!(pool.is_cached(PageId(1)));
        let g = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(g.page_id(), PageId(1));
    }

    #[test]
    fn two_shared_guards_coexist() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        let a = pool.fix_s(PageId(1)).unwrap();
        let b = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(a.page_id(), b.page_id());
    }

    #[test]
    fn conditional_x_fails_under_s() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        let _s = pool.fix_s(PageId(1)).unwrap();
        assert!(matches!(
            pool.try_fix_x(PageId(1)),
            Err(Error::WouldBlock)
        ));
        // And conditional S under X:
        drop(_s);
        let _x = pool.fix_x(PageId(1)).unwrap();
        assert!(matches!(
            pool.try_fix_s(PageId(1)),
            Err(Error::WouldBlock)
        ));
    }

    #[test]
    fn eviction_writes_dirty_page_and_obeys_wal() {
        let (_d, pool, log) = setup(8);
        // Dirty page 1 with an unflushed log record's LSN.
        let fake_lsn = {
            use ariesim_wal::{LogRecord, RmId};
            use ariesim_common::TxnId;
            log.append(&LogRecord::update(
                TxnId(1),
                Lsn::NULL,
                RmId::Heap,
                PageId(1),
                vec![1],
            ))
        };
        {
            let mut g = pool.fix_x(PageId(1)).unwrap();
            g.format(PageId(1), PageType::Heap, 7, 0);
            g.record_update(fake_lsn);
        }
        assert_eq!(pool.dpt_snapshot().len(), 1);
        assert!(log.flushed_lsn() <= fake_lsn, "log not yet forced");
        // Evict by filling the pool.
        for i in 2..20u32 {
            format_page(&pool, PageId(i));
        }
        assert!(!pool.is_cached(PageId(1)), "page 1 should be evicted");
        // WAL rule: log now covers the page's LSN.
        assert!(log.flushed_lsn() > fake_lsn);
        // Content survived the round trip.
        let g = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(g.owner(), 7);
        assert_eq!(g.page_lsn(), fake_lsn);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let (_d, pool, _log) = setup(8);
        let guards: Vec<_> = (1..=8u32)
            .map(|i| {
                let mut g = pool.fix_x(PageId(i)).unwrap();
                g.format(PageId(i), PageType::Heap, 0, 0);
                g.record_update(Lsn(1));
                g
            })
            .collect();
        // All frames pinned: another fix must fail, not evict.
        assert!(matches!(pool.fix_s(PageId(99)), Err(Error::BufferPoolFull)));
        drop(guards);
        assert!(pool.fix_s(PageId(99)).is_ok());
    }

    #[test]
    fn flush_page_clears_dirty_and_dpt() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(3));
        assert_eq!(pool.dpt_snapshot().len(), 1);
        pool.flush_page(PageId(3)).unwrap();
        assert!(pool.dpt_snapshot().is_empty());
        // Disk has the content.
        let img = pool.disk().read_page(PageId(3)).unwrap();
        assert_eq!(img.page_id(), PageId(3));
    }

    #[test]
    fn dpt_rec_lsn_is_first_dirtying_lsn() {
        let (_d, pool, _log) = setup(8);
        {
            let mut g = pool.fix_x(PageId(4)).unwrap();
            g.format(PageId(4), PageType::Heap, 0, 0);
            g.record_update(Lsn(10));
            g.record_update(Lsn(20));
        }
        let dpt = pool.dpt_snapshot();
        assert_eq!(dpt.len(), 1);
        assert_eq!(dpt[0].rec_lsn, Lsn(10));
        // page_lsn advanced to the latest.
        let g = pool.fix_s(PageId(4)).unwrap();
        assert_eq!(g.page_lsn(), Lsn(20));
    }

    #[test]
    fn downgrade_keeps_content_visible() {
        let (_d, pool, _log) = setup(8);
        let mut g = pool.fix_x(PageId(5)).unwrap();
        g.format(PageId(5), PageType::IndexLeaf, 2, 0);
        g.record_update(Lsn(2));
        let r = g.downgrade();
        assert_eq!(r.owner(), 2);
        // Another S guard can join while downgraded guard held.
        let r2 = pool.fix_s(PageId(5)).unwrap();
        assert_eq!(r2.owner(), 2);
        drop(r2);
        drop(r);
        assert_eq!(pool.total_pins(), 0, "downgrade must not leak pins");
    }

    #[test]
    fn flush_all_empties_dpt() {
        let (_d, pool, _log) = setup(16);
        for i in 1..6u32 {
            format_page(&pool, PageId(i));
        }
        assert_eq!(pool.dpt_snapshot().len(), 5);
        pool.flush_all().unwrap();
        assert!(pool.dpt_snapshot().is_empty());
    }

    #[test]
    fn concurrent_fixes_stress() {
        let (_d, pool, _log) = setup(16);
        for i in 1..=32u32 {
            format_page(&pool, PageId(i));
        }
        pool.flush_all().unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let id = PageId(1 + (i * 7 + t) % 32);
                        if i % 3 == 0 {
                            let mut g = pool.fix_x(id).unwrap();
                            let lsn = Lsn(g.page_lsn().0 + 1);
                            g.record_update(lsn);
                        } else {
                            let g = pool.fix_s(id).unwrap();
                            assert_eq!(g.page_id(), id);
                        }
                    }
                });
            }
        });
        // All pins released.
        assert_eq!(pool.total_pins(), 0);
        assert!(pool.fix_s(PageId(1)).is_ok());
    }

    #[test]
    fn partitions_spread_pages_and_auto_clamp() {
        let (_d, pool, _log) = setup(8);
        assert_eq!(pool.partitions(), 1, "tiny pool collapses to 1 shard");
        let (_d2, pool2, _log2) = setup(256);
        assert_eq!(pool2.partitions(), 8);
        for i in 1..=64u32 {
            format_page(&pool2, PageId(i));
        }
        let stats = pool2.shard_stats();
        let used = stats.iter().filter(|&&(_, m, _, _)| m > 0).count();
        assert!(used >= 4, "pages should land in several partitions: {stats:?}");
        // Per-shard misses sum to the 64 loads.
        assert_eq!(stats.iter().map(|&(_, m, _, _)| m).sum::<u64>(), 64);
    }

    #[test]
    fn explicit_partition_request_is_honored() {
        let (_d, pool, _log) = setup_opts(PoolOptions {
            frames: 64,
            partitions: 4,
            ..PoolOptions::default()
        });
        assert_eq!(pool.partitions(), 4);
        // Every page is reachable regardless of which shard it hashes to.
        for i in 1..=128u32 {
            format_page(&pool, PageId(i));
        }
        assert_eq!(pool.total_pins(), 0);
    }

    #[test]
    fn lru_k_policy_drives_the_pool() {
        let (_d, pool, _log) = setup_opts(PoolOptions {
            frames: 8,
            policy: EvictionPolicyKind::LruK(2),
            ..PoolOptions::default()
        });
        assert_eq!(pool.eviction_policy(), "lru-k");
        for i in 1..=20u32 {
            format_page(&pool, PageId(i));
        }
        // Recent pages resident, early ones evicted.
        assert!(pool.is_cached(PageId(20)));
        assert!(!pool.is_cached(PageId(1)));
    }

    #[test]
    fn pin_guard_keeps_page_resident_and_relatches() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        let pin = pool.pin(PageId(1)).unwrap();
        // Hammer the pool so an unpinned page 1 would be evicted.
        for i in 2..=30u32 {
            format_page(&pool, PageId(i));
        }
        assert!(pool.is_cached(PageId(1)), "pin must prevent eviction");
        {
            let g = pin.latch_s().unwrap();
            assert_eq!(g.page_id(), PageId(1));
        }
        {
            let mut g = pin.latch_x().unwrap();
            g.record_update(Lsn(9));
        }
        assert_eq!(pool.dpt_snapshot().len(), pool.dpt_snapshot().len());
        drop(pin);
        assert_eq!(pool.total_pins(), 0);
    }

    #[test]
    fn repin_from_guard_is_lock_free_and_balanced() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(2));
        let pin = {
            let g = pool.fix_s(PageId(2)).unwrap();
            g.repin()
        };
        assert_eq!(pool.total_pins(), 1);
        let g2 = pin.try_latch_s().unwrap();
        assert_eq!(g2.page_id(), PageId(2));
        drop(g2);
        drop(pin);
        assert_eq!(pool.total_pins(), 0);
    }

    #[test]
    fn bg_tick_writes_dirty_pages_and_cleans_dpt() {
        let (_d, pool, log) = setup(16);
        for i in 1..=5u32 {
            format_page(&pool, PageId(i));
        }
        assert_eq!(pool.dpt_snapshot().len(), 5);
        let before = log.flushed_lsn();
        let written = pool.bg_tick().unwrap();
        assert_eq!(written, 5);
        assert!(pool.dpt_snapshot().is_empty());
        // WAL rule: the force happened before the writes.
        assert!(log.flushed_lsn() >= before);
        for i in 1..=5u32 {
            let img = pool.disk().read_page(PageId(i)).unwrap();
            assert_eq!(img.page_id(), PageId(i));
        }
    }

    #[test]
    fn bg_tick_skips_latched_pages() {
        let (_d, pool, _log) = setup(16);
        for i in 1..=3u32 {
            format_page(&pool, PageId(i));
        }
        let _x = pool.fix_x(PageId(2)).unwrap();
        let written = pool.bg_tick().unwrap();
        assert_eq!(written, 2, "X-latched page skipped");
        assert_eq!(pool.dpt_snapshot().len(), 1);
    }

    #[test]
    fn bg_writer_thread_drains_dirty_pages() {
        let (_d, pool, _log) = setup_opts(PoolOptions {
            frames: 16,
            bg_writer: Some(Duration::from_millis(1)),
            ..PoolOptions::default()
        });
        for i in 1..=6u32 {
            format_page(&pool, PageId(i));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pool.dpt_snapshot().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "background writer did not drain the DPT"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(pool); // Drop joins the writer thread cleanly.
    }

    #[test]
    fn bg_batch_bounds_one_tick() {
        let (_d, pool, _log) = setup_opts(PoolOptions {
            frames: 32,
            bg_batch: 3,
            ..PoolOptions::default()
        });
        for i in 1..=10u32 {
            format_page(&pool, PageId(i));
        }
        assert_eq!(pool.bg_tick().unwrap(), 3);
        assert_eq!(pool.dpt_snapshot().len(), 7);
    }

    /// Two concurrent misses on the same page must resolve to a single
    /// frame: the loser of the install race aborts its eviction and retries
    /// as a hit. The interleaving is forced deterministically — a write
    /// hook holds thread A open inside its victim write-back (the
    /// drop-mutex/relock window) while thread B misses on the same page,
    /// picks a different victim (A's is latched), and installs first. A's
    /// re-locked install must then notice B's mapping and back off;
    /// a second insert would orphan B's frame and split readers across two
    /// divergent images, which `validate_mappings` reports.
    #[test]
    fn concurrent_misses_on_same_page_install_one_frame() {
        use std::sync::mpsc;

        let (_d, pool, _log) = setup(8);
        const N: u32 = 24;
        for i in 1..=N {
            format_page(&pool, PageId(i)); // every page stays dirty
        }
        let target = PageId(1);
        assert!(!pool.is_cached(target), "target must start evicted");

        // Hook: the FIRST write-back (thread A's victim) announces itself
        // and blocks until released; everything after passes through.
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let armed = std::sync::atomic::AtomicBool::new(true);
        pool.disk().set_write_hook(Some(Arc::new(move |_id: PageId| {
            if armed.swap(false, Ordering::AcqRel) {
                entered_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
            }
            Ok(())
        })));

        std::thread::scope(|s| {
            let a = {
                let pool = pool.clone();
                s.spawn(move || pool.fix_s(target).map(|g| g.page_id()))
            };
            // A is now parked inside its victim's write-back, its victim
            // latched, the target not yet in the page table.
            entered_rx.recv().unwrap();
            let b = {
                let pool = pool.clone();
                s.spawn(move || pool.fix_s(target).map(|g| g.page_id()))
            };
            // B misses too, takes a different victim, and installs the
            // target while A is still blocked.
            assert_eq!(b.join().unwrap().unwrap(), target);
            // Released, A must abandon its own install and resolve to B's
            // frame via the hit path.
            release_tx.send(()).unwrap();
            assert_eq!(a.join().unwrap().unwrap(), target);
        });

        pool.disk().set_write_hook(None);
        assert_eq!(pool.total_pins(), 0);
        pool.validate_mappings();
    }

    /// A pin taken through the short-lived mapping of an in-flight load
    /// whose read then fails must not silently observe a recycled frame:
    /// the unwind clears the frame's owner word, latching through the stale
    /// pin reports `StalePin`, and re-fixing through the pool retries the
    /// read.
    #[test]
    fn failed_load_unwind_invalidates_concurrent_pins() {
        use std::sync::mpsc;

        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        pool.flush_all().unwrap();
        // Push page 1 out so the next fix is a miss.
        for i in 2..=30u32 {
            format_page(&pool, PageId(i));
        }
        assert!(!pool.is_cached(PageId(1)), "page 1 must start evicted");

        // Hook: announce entry into the read, hold the load open until
        // released, then fail it.
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        pool.disk().set_read_hook(Some(Arc::new(move |id: PageId| {
            if id == PageId(1) {
                entered_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
                return Err(Error::Io(std::io::Error::other("injected read fault")));
            }
            Ok(())
        })));

        let mut stale_pin = None;
        std::thread::scope(|s| {
            let loader = s.spawn(|| pool.fix_s(PageId(1)));
            // The loader has installed the mapping and is inside the read;
            // pin the page through that mapping (pins don't latch, so this
            // does not wait out the load).
            entered_rx.recv().unwrap();
            let pin = pool.pin(PageId(1)).unwrap();
            release_tx.send(()).unwrap();
            assert!(loader.join().unwrap().is_err(), "injected fault surfaces");
            stale_pin = Some(pin);
        });
        let pin = stale_pin.unwrap();

        // The unwind freed the frame out from under the pin: latching must
        // fail loudly rather than hand back whatever the frame holds now.
        assert!(matches!(pin.latch_s(), Err(Error::StalePin { page }) if page == PageId(1)));
        assert!(matches!(pin.try_latch_x(), Err(Error::StalePin { page }) if page == PageId(1)));

        // Re-fixing through the pool retries the read and succeeds once the
        // fault is cleared.
        pool.disk().set_read_hook(None);
        let g = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(g.page_id(), PageId(1));
        drop(g);
        drop(pin);
        assert_eq!(pool.total_pins(), 0);
        pool.validate_mappings();
    }
}
