//! Buffer pool with integrated page latches.
//!
//! Each buffer frame is an `RwLock<PageBuf>`; holding the lock *is* holding
//! the page latch, in the mode the lock was taken in. Guards also hold a pin
//! on the frame, so a latched (or merely fixed) page can never be evicted.
//!
//! The pool implements the ARIES buffer policies (paper §1.2):
//!
//! * **steal**: eviction writes dirty pages regardless of transaction state,
//!   after enforcing the **WAL rule** (log forced up to the victim's
//!   `page_lsn` first);
//! * **no-force**: nothing here flushes at commit; only checkpoints and
//!   eviction write pages;
//! * a **dirty page table** records, for every dirty cached page, its
//!   `rec_lsn` — the LSN of the first record that dirtied it — which fuzzy
//!   checkpoints persist and restart's analysis pass rebuilds.
//!
//! Latch acquisition supports conditional (`try_`) variants, used by the
//! B+-tree to obey the paper's rule that nothing waits for a latch while
//! holding an incompatible one out of order.

use crate::disk::DiskManager;
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Error, Lsn, PageBuf, PageId, Result};
use ariesim_fault::crash_point;
use ariesim_obs::lockdep;
use ariesim_obs::{EventKind, ModeTag, Obs, ObsHandle, SpanKind};
use ariesim_wal::{DptEntry, LogManager};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

type ReadLatch = ArcRwLockReadGuard<RawRwLock, PageBuf>;
type WriteLatch = ArcRwLockWriteGuard<RawRwLock, PageBuf>;

thread_local! {
    /// (currently held, high-water mark) page latches on this thread — the
    /// gauge behind the paper's "not more than 2 index pages are held
    /// latched simultaneously" claim (validated in the latch-budget test).
    static LATCH_DEPTH: std::cell::Cell<(u32, u32)> = const { std::cell::Cell::new((0, 0)) };
}

fn latch_depth_inc() {
    LATCH_DEPTH.with(|d| {
        let (cur, max) = d.get();
        d.set((cur + 1, max.max(cur + 1)));
    });
}

fn latch_depth_dec() {
    LATCH_DEPTH.with(|d| {
        let (cur, max) = d.get();
        d.set((cur.saturating_sub(1), max));
    });
}

/// Reset this thread's latch high-water mark and return the previous value.
pub fn take_latch_high_water() -> u32 {
    LATCH_DEPTH.with(|d| {
        let (cur, max) = d.get();
        d.set((cur, 0));
        max
    })
}

/// Pool tuning.
#[derive(Clone, Debug)]
pub struct PoolOptions {
    /// Number of buffer frames.
    pub frames: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions { frames: 256 }
    }
}

#[derive(Clone, Copy)]
struct FrameMeta {
    page: PageId,
    pins: u32,
    dirty: bool,
    last_used: u64,
}

impl FrameMeta {
    const FREE: FrameMeta = FrameMeta {
        page: PageId::NULL,
        pins: 0,
        dirty: false,
        last_used: 0,
    };
}

struct PoolInner {
    table: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    /// Dirty page table: page → rec_lsn.
    dpt: HashMap<PageId, Lsn>,
    tick: u64,
}

/// Pool-mutex guard that reports its acquisition/release to the lockdep
/// graph, so a pool-mutex-held-across-a-latch-wait bug shows up as an
/// order-violating edge rather than a silent hang.
struct InnerGuard<'a>(parking_lot::MutexGuard<'a, PoolInner>);

impl std::ops::Deref for InnerGuard<'_> {
    type Target = PoolInner;

    fn deref(&self) -> &PoolInner {
        &self.0
    }
}

impl std::ops::DerefMut for InnerGuard<'_> {
    fn deref_mut(&mut self) -> &mut PoolInner {
        &mut self.0
    }
}

impl Drop for InnerGuard<'_> {
    fn drop(&mut self) {
        lockdep::released(lockdep::Class::PoolMutex);
    }
}

/// The buffer pool. Use through `Arc` — page guards keep the pool alive.
pub struct BufferPool {
    slots: Vec<Arc<RwLock<PageBuf>>>,
    inner: Mutex<PoolInner>,
    disk: DiskManager,
    log: Arc<LogManager>,
    stats: StatsHandle,
    obs: ObsHandle,
}

impl BufferPool {
    pub fn new(
        disk: DiskManager,
        log: Arc<LogManager>,
        opts: PoolOptions,
        stats: StatsHandle,
    ) -> Arc<BufferPool> {
        BufferPool::new_with_obs(disk, log, opts, stats, Obs::disabled())
    }

    pub fn new_with_obs(
        disk: DiskManager,
        log: Arc<LogManager>,
        opts: PoolOptions,
        stats: StatsHandle,
        obs: ObsHandle,
    ) -> Arc<BufferPool> {
        assert!(opts.frames >= 8, "pool too small to be useful");
        Arc::new(BufferPool {
            slots: (0..opts.frames)
                .map(|_| Arc::new(RwLock::new(PageBuf::zeroed())))
                .collect(),
            inner: Mutex::new(PoolInner {
                table: HashMap::new(),
                meta: vec![FrameMeta::FREE; opts.frames],
                dpt: HashMap::new(),
                tick: 1,
            }),
            disk,
            log,
            stats,
            obs,
        })
    }

    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn lock_inner(&self, site: &'static str) -> InnerGuard<'_> {
        lockdep::acquired(lockdep::Class::PoolMutex, site, true);
        InnerGuard(self.inner.lock())
    }

    pub fn stats(&self) -> &StatsHandle {
        &self.stats
    }

    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    // --- fixing ---------------------------------------------------------

    /// Fix `page` and latch it shared. Blocks until the latch is available.
    pub fn fix_s(self: &Arc<Self>, page: PageId) -> Result<PageReadGuard> {
        self.fix_shared(page, false)
    }

    /// Fix `page` and latch it shared, failing with [`Error::WouldBlock`]
    /// instead of waiting for the latch.
    pub fn try_fix_s(self: &Arc<Self>, page: PageId) -> Result<PageReadGuard> {
        self.fix_shared(page, true)
    }

    /// Fix `page` and latch it exclusive. Blocks until available.
    pub fn fix_x(self: &Arc<Self>, page: PageId) -> Result<PageWriteGuard> {
        self.fix_exclusive(page, false)
    }

    /// Fix `page` and latch it exclusive, failing with [`Error::WouldBlock`]
    /// instead of waiting.
    pub fn try_fix_x(self: &Arc<Self>, page: PageId) -> Result<PageWriteGuard> {
        self.fix_exclusive(page, true)
    }

    fn fix_shared(self: &Arc<Self>, page: PageId, conditional: bool) -> Result<PageReadGuard> {
        self.stats.page_fixes.bump();
        match self.claim(page)? {
            Claimed::Hit(slot, idx) => {
                let latch = if conditional {
                    match slot.try_read_arc() {
                        Some(g) => g,
                        None => {
                            self.unpin(idx);
                            return Err(Error::WouldBlock);
                        }
                    }
                } else {
                    match slot.try_read_arc() {
                        Some(g) => g,
                        None => {
                            self.stats.latch_page_waits.bump();
                            let wait = self.obs.timer();
                            let span = self.obs.span(SpanKind::LatchWait, 0, page.0);
                            let g = slot.read_arc();
                            drop(span);
                            self.obs.hist.latch_wait_page.record_since(wait);
                            g
                        }
                    }
                };
                self.stats.latches_page.bump();
                latch_depth_inc();
                lockdep::acquired(lockdep::Class::PageLatch, "storage::pool::fix_s", !conditional);
                self.note_latch_acquired(page, ModeTag::S);
                Ok(PageReadGuard {
                    latch: Some(latch),
                    pool: self.clone(),
                    frame: idx,
                })
            }
            Claimed::Loaded(wlatch, idx) => {
                // The latch was already acquired (and lockdep-recorded)
                // inside `claim`, under the load I/O.
                self.stats.latches_page.bump();
                latch_depth_inc();
                self.note_latch_acquired(page, ModeTag::S);
                Ok(PageReadGuard {
                    latch: Some(ArcRwLockWriteGuard::downgrade(wlatch)),
                    pool: self.clone(),
                    frame: idx,
                })
            }
        }
    }

    fn fix_exclusive(self: &Arc<Self>, page: PageId, conditional: bool) -> Result<PageWriteGuard> {
        self.stats.page_fixes.bump();
        match self.claim(page)? {
            Claimed::Hit(slot, idx) => {
                let latch = if conditional {
                    match slot.try_write_arc() {
                        Some(g) => g,
                        None => {
                            self.unpin(idx);
                            return Err(Error::WouldBlock);
                        }
                    }
                } else {
                    match slot.try_write_arc() {
                        Some(g) => g,
                        None => {
                            self.stats.latch_page_waits.bump();
                            let wait = self.obs.timer();
                            let span = self.obs.span(SpanKind::LatchWait, 0, page.0);
                            let g = slot.write_arc();
                            drop(span);
                            self.obs.hist.latch_wait_page.record_since(wait);
                            g
                        }
                    }
                };
                self.stats.latches_page.bump();
                latch_depth_inc();
                lockdep::acquired(lockdep::Class::PageLatch, "storage::pool::fix_x", !conditional);
                self.note_latch_acquired(page, ModeTag::X);
                Ok(PageWriteGuard {
                    latch: Some(latch),
                    pool: self.clone(),
                    frame: idx,
                })
            }
            Claimed::Loaded(wlatch, idx) => {
                // Latch acquired (and lockdep-recorded) inside `claim`.
                self.stats.latches_page.bump();
                latch_depth_inc();
                self.note_latch_acquired(page, ModeTag::X);
                Ok(PageWriteGuard {
                    latch: Some(wlatch),
                    pool: self.clone(),
                    frame: idx,
                })
            }
        }
    }

    fn note_latch_acquired(&self, page: PageId, mode: ModeTag) {
        self.obs.monitor.on_page_latch_acquired(page.0);
        self.obs.event(EventKind::LatchAcquire, mode, 0, page.0, 0);
    }

    fn note_latch_released(&self, page: u32, mode: ModeTag) {
        lockdep::released(lockdep::Class::PageLatch);
        self.obs.monitor.on_page_latch_released(page);
        self.obs.event(EventKind::LatchRelease, mode, 0, page, 0);
    }

    /// Pin `page`'s frame, loading it from disk if absent. On a miss, the
    /// returned write latch is already held (the load I/O happened under it).
    fn claim(self: &Arc<Self>, page: PageId) -> Result<Claimed> {
        debug_assert!(!page.is_null(), "fix of NULL page");
        loop {
            let mut g = self.lock_inner("storage::pool::claim");
            if let Some(&idx) = g.table.get(&page) {
                g.meta[idx].pins += 1;
                g.tick += 1;
                let t = g.tick;
                g.meta[idx].last_used = t;
                let slot = self.slots[idx].clone();
                return Ok(Claimed::Hit(slot, idx));
            }
            // Miss: pick the least-recently-used unpinned frame whose latch
            // is free (pins==0 implies free in our usage; try_write confirms).
            let victim = {
                let mut best: Option<(usize, u64)> = None;
                for (i, m) in g.meta.iter().enumerate() {
                    if m.pins == 0 {
                        match best {
                            Some((_, lu)) if m.last_used >= lu => {}
                            _ => best = Some((i, m.last_used)),
                        }
                    }
                }
                best
            };
            let Some((idx, _)) = victim else {
                return Err(Error::BufferPoolFull);
            };
            let Some(wlatch) = self.slots[idx].try_write_arc() else {
                // Someone holds the latch without a pin — not our discipline,
                // but tolerate by retrying.
                drop(g);
                std::thread::yield_now();
                continue;
            };
            let old = g.meta[idx];
            if !old.page.is_null() {
                g.table.remove(&old.page);
            }
            g.table.insert(page, idx);
            g.tick += 1;
            let t = g.tick;
            g.meta[idx] = FrameMeta {
                page,
                pins: 1,
                dirty: false,
                last_used: t,
            };
            drop(g);
            // I/O outside the pool mutex, under the frame's write latch.
            // The latch was obtained with a trylock, so it joins the lockdep
            // held set without an ordering edge.
            lockdep::acquired(lockdep::Class::PageLatch, "storage::pool::claim.load", false);
            let mut latch = wlatch;
            let loaded = (|| {
                if old.dirty {
                    crash_point!("pool.evict.begin");
                    // WAL rule: the log must cover the page before it hits
                    // disk.
                    self.log.flush_to(latch.page_lsn())?;
                    crash_point!("pool.evict.after_force");
                    let io = self.obs.timer();
                    {
                        let _span = self.obs.span(SpanKind::PageWrite, 0, old.page.0);
                        self.disk.write_page(&latch)?;
                    }
                    crash_point!("pool.evict.after_write");
                    self.obs.hist.page_write.record_since(io);
                    self.lock_inner("storage::pool::claim.dpt").dpt.remove(&old.page);
                }
                let io = self.obs.timer();
                {
                    let _span = self.obs.span(SpanKind::PageRead, 0, page.0);
                    *latch = self.disk.read_page(page)?;
                }
                self.obs.hist.page_read.record_since(io);
                Ok(())
            })();
            if let Err(e) = loaded {
                lockdep::released(lockdep::Class::PageLatch);
                return Err(e);
            }
            return Ok(Claimed::Loaded(latch, idx));
        }
    }

    fn unpin(&self, idx: usize) {
        let mut g = self.lock_inner("storage::pool::unpin");
        debug_assert!(g.meta[idx].pins > 0);
        g.meta[idx].pins -= 1;
    }

    fn mark_dirty(&self, idx: usize, rec_lsn: Lsn) {
        let mut g = self.lock_inner("storage::pool::mark_dirty");
        let page = g.meta[idx].page;
        g.meta[idx].dirty = true;
        g.dpt.entry(page).or_insert(rec_lsn);
    }

    // --- flushing -----------------------------------------------------------

    /// Write `page` to disk if it is cached and dirty (WAL rule enforced).
    pub fn flush_page(self: &Arc<Self>, page: PageId) -> Result<()> {
        let guard = self.fix_s(page)?;
        let dirty = {
            let g = self.lock_inner("storage::pool::flush_page");
            g.meta[guard.frame].dirty
        };
        if dirty {
            crash_point!("pool.flush.begin");
            self.log.flush_to(guard.page_lsn())?;
            crash_point!("pool.flush.after_force");
            let io = self.obs.timer();
            {
                let _span = self.obs.span(SpanKind::PageWrite, 0, page.0);
                self.disk.write_page(&guard)?;
            }
            crash_point!("pool.flush.after_write");
            self.obs.hist.page_write.record_since(io);
            let mut g = self.lock_inner("storage::pool::flush_page");
            g.meta[guard.frame].dirty = false;
            g.dpt.remove(&page);
        }
        Ok(())
    }

    /// Flush every dirty page (clean shutdown / heavyweight checkpoint).
    pub fn flush_all(self: &Arc<Self>) -> Result<()> {
        let pages: Vec<PageId> = {
            let g = self.lock_inner("storage::pool::flush_all");
            g.dpt.keys().copied().collect()
        };
        for p in pages {
            self.flush_page(p)?;
        }
        Ok(())
    }

    /// Snapshot of the dirty page table **for checkpoints**: first passes a
    /// fence over every resident frame (acquire + release its S latch).
    ///
    /// Why: an update appends its log record and then marks the page dirty,
    /// both inside the page's X-latch critical section. A checkpoint that
    /// snapshots the DPT right after appending CkptBegin could miss a page
    /// whose record (LSN < CkptBegin) is logged but not yet registered —
    /// and restart's analysis never scans below CkptBegin, losing the
    /// update. Waiting for each held latch once guarantees every update
    /// logged before the fence has completed its registration. New updates
    /// (LSN > CkptBegin) are covered by the analysis scan itself.
    pub fn dpt_snapshot_fenced(&self) -> Vec<DptEntry> {
        let resident: Vec<usize> = {
            let g = self.lock_inner("storage::pool::dpt_fence");
            g.meta
                .iter()
                .enumerate()
                .filter_map(|(i, m)| (!m.page.is_null()).then_some(i))
                .collect()
        };
        for idx in resident {
            lockdep::acquired(lockdep::Class::PageLatch, "storage::pool::dpt_fence", true);
            drop(self.slots[idx].read_arc());
            lockdep::released(lockdep::Class::PageLatch);
        }
        self.dpt_snapshot()
    }

    /// Snapshot of the dirty page table, for fuzzy checkpoints.
    pub fn dpt_snapshot(&self) -> Vec<DptEntry> {
        let g = self.lock_inner("storage::pool::dpt_snapshot");
        let mut v: Vec<DptEntry> = g
            .dpt
            .iter()
            .map(|(&page, &rec_lsn)| DptEntry { page, rec_lsn })
            .collect();
        v.sort_by_key(|e| e.page);
        v
    }

    /// True if `page` is currently cached (for tests).
    pub fn is_cached(&self, page: PageId) -> bool {
        self.lock_inner("storage::pool::is_cached").table.contains_key(&page)
    }
}

enum Claimed {
    /// Frame was resident: slot to latch + frame index (pin already taken).
    Hit(Arc<RwLock<PageBuf>>, usize),
    /// Frame was loaded under this already-held write latch.
    Loaded(WriteLatch, usize),
}

/// Shared (S-latched) fixed page. Dereferences to the page image.
pub struct PageReadGuard {
    latch: Option<ReadLatch>,
    pool: Arc<BufferPool>,
    frame: usize,
}

impl std::ops::Deref for PageReadGuard {
    type Target = PageBuf;

    fn deref(&self) -> &PageBuf {
        self.latch.as_ref().expect("latch held")
    }
}

impl Drop for PageReadGuard {
    fn drop(&mut self) {
        let page = self.latch.as_ref().map_or(0, |l| l.page_id().0);
        // Latch released before the pin, preserving "pins==0 ⇒ latch free".
        self.latch.take();
        latch_depth_dec();
        self.pool.note_latch_released(page, ModeTag::S);
        self.pool.unpin(self.frame);
    }
}

/// Exclusive (X-latched) fixed page.
pub struct PageWriteGuard {
    latch: Option<WriteLatch>,
    pool: Arc<BufferPool>,
    frame: usize,
}

impl PageWriteGuard {
    /// Record that a logged update with LSN `lsn` modified this page: stamps
    /// `page_lsn` and enters the page in the dirty page table (with `lsn` as
    /// `rec_lsn` if it was clean).
    pub fn record_update(&mut self, lsn: Lsn) {
        self.latch.as_mut().expect("latch held").set_page_lsn(lsn);
        self.pool.mark_dirty(self.frame, lsn);
    }

    /// Mark dirty without stamping an LSN (used when formatting pages whose
    /// changes are covered by a following logged update).
    pub fn mark_dirty_raw(&mut self, rec_lsn: Lsn) {
        self.pool.mark_dirty(self.frame, rec_lsn);
    }

    /// Downgrade to a shared guard without releasing the latch.
    pub fn downgrade(mut self) -> PageReadGuard {
        let latch = self.latch.take().expect("latch held");
        let page = latch.page_id().0;
        self.pool.obs.event(EventKind::LatchRelease, ModeTag::X, 0, page, 0);
        self.pool.obs.event(EventKind::LatchAcquire, ModeTag::S, 0, page, 0);
        let guard = PageReadGuard {
            latch: Some(ArcRwLockWriteGuard::downgrade(latch)),
            pool: self.pool.clone(),
            frame: self.frame,
        };
        std::mem::forget(self); // pin transferred to the new guard
        guard
    }
}

impl std::ops::Deref for PageWriteGuard {
    type Target = PageBuf;

    fn deref(&self) -> &PageBuf {
        self.latch.as_ref().expect("latch held")
    }
}

impl std::ops::DerefMut for PageWriteGuard {
    fn deref_mut(&mut self) -> &mut PageBuf {
        self.latch.as_mut().expect("latch held")
    }
}

impl Drop for PageWriteGuard {
    fn drop(&mut self) {
        let page = self.latch.as_ref().map_or(0, |l| l.page_id().0);
        self.latch.take();
        latch_depth_dec();
        self.pool.note_latch_released(page, ModeTag::X);
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::page::PageType;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_wal::LogOptions;

    fn setup(frames: usize) -> (TempDir, Arc<BufferPool>, Arc<LogManager>) {
        let dir = TempDir::new("pool");
        let stats = new_stats();
        let log = Arc::new(
            LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
        );
        let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
        let pool = BufferPool::new(disk, log.clone(), PoolOptions { frames }, stats);
        (dir, pool, log)
    }

    fn format_page(pool: &Arc<BufferPool>, id: PageId) {
        let mut g = pool.fix_x(id).unwrap();
        g.format(id, PageType::Heap, 0, 0);
        g.record_update(Lsn(1));
    }

    #[test]
    fn fix_miss_then_hit() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        assert!(pool.is_cached(PageId(1)));
        let g = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(g.page_id(), PageId(1));
    }

    #[test]
    fn two_shared_guards_coexist() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        let a = pool.fix_s(PageId(1)).unwrap();
        let b = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(a.page_id(), b.page_id());
    }

    #[test]
    fn conditional_x_fails_under_s() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(1));
        let _s = pool.fix_s(PageId(1)).unwrap();
        assert!(matches!(
            pool.try_fix_x(PageId(1)),
            Err(Error::WouldBlock)
        ));
        // And conditional S under X:
        drop(_s);
        let _x = pool.fix_x(PageId(1)).unwrap();
        assert!(matches!(
            pool.try_fix_s(PageId(1)),
            Err(Error::WouldBlock)
        ));
    }

    #[test]
    fn eviction_writes_dirty_page_and_obeys_wal() {
        let (_d, pool, log) = setup(8);
        // Dirty page 1 with an unflushed log record's LSN.
        let fake_lsn = {
            use ariesim_wal::{LogRecord, RmId};
            use ariesim_common::TxnId;
            log.append(&LogRecord::update(
                TxnId(1),
                Lsn::NULL,
                RmId::Heap,
                PageId(1),
                vec![1],
            ))
        };
        {
            let mut g = pool.fix_x(PageId(1)).unwrap();
            g.format(PageId(1), PageType::Heap, 7, 0);
            g.record_update(fake_lsn);
        }
        assert_eq!(pool.dpt_snapshot().len(), 1);
        assert!(log.flushed_lsn() <= fake_lsn, "log not yet forced");
        // Evict by filling the pool.
        for i in 2..20u32 {
            format_page(&pool, PageId(i));
        }
        assert!(!pool.is_cached(PageId(1)), "page 1 should be evicted");
        // WAL rule: log now covers the page's LSN.
        assert!(log.flushed_lsn() > fake_lsn);
        // Content survived the round trip.
        let g = pool.fix_s(PageId(1)).unwrap();
        assert_eq!(g.owner(), 7);
        assert_eq!(g.page_lsn(), fake_lsn);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let (_d, pool, _log) = setup(8);
        let guards: Vec<_> = (1..=8u32)
            .map(|i| {
                let mut g = pool.fix_x(PageId(i)).unwrap();
                g.format(PageId(i), PageType::Heap, 0, 0);
                g.record_update(Lsn(1));
                g
            })
            .collect();
        // All frames pinned: another fix must fail, not evict.
        assert!(matches!(pool.fix_s(PageId(99)), Err(Error::BufferPoolFull)));
        drop(guards);
        assert!(pool.fix_s(PageId(99)).is_ok());
    }

    #[test]
    fn flush_page_clears_dirty_and_dpt() {
        let (_d, pool, _log) = setup(8);
        format_page(&pool, PageId(3));
        assert_eq!(pool.dpt_snapshot().len(), 1);
        pool.flush_page(PageId(3)).unwrap();
        assert!(pool.dpt_snapshot().is_empty());
        // Disk has the content.
        let img = pool.disk().read_page(PageId(3)).unwrap();
        assert_eq!(img.page_id(), PageId(3));
    }

    #[test]
    fn dpt_rec_lsn_is_first_dirtying_lsn() {
        let (_d, pool, _log) = setup(8);
        {
            let mut g = pool.fix_x(PageId(4)).unwrap();
            g.format(PageId(4), PageType::Heap, 0, 0);
            g.record_update(Lsn(10));
            g.record_update(Lsn(20));
        }
        let dpt = pool.dpt_snapshot();
        assert_eq!(dpt.len(), 1);
        assert_eq!(dpt[0].rec_lsn, Lsn(10));
        // page_lsn advanced to the latest.
        let g = pool.fix_s(PageId(4)).unwrap();
        assert_eq!(g.page_lsn(), Lsn(20));
    }

    #[test]
    fn downgrade_keeps_content_visible() {
        let (_d, pool, _log) = setup(8);
        let mut g = pool.fix_x(PageId(5)).unwrap();
        g.format(PageId(5), PageType::IndexLeaf, 2, 0);
        g.record_update(Lsn(2));
        let r = g.downgrade();
        assert_eq!(r.owner(), 2);
        // Another S guard can join while downgraded guard held.
        let r2 = pool.fix_s(PageId(5)).unwrap();
        assert_eq!(r2.owner(), 2);
    }

    #[test]
    fn flush_all_empties_dpt() {
        let (_d, pool, _log) = setup(16);
        for i in 1..6u32 {
            format_page(&pool, PageId(i));
        }
        assert_eq!(pool.dpt_snapshot().len(), 5);
        pool.flush_all().unwrap();
        assert!(pool.dpt_snapshot().is_empty());
    }

    #[test]
    fn concurrent_fixes_stress() {
        let (_d, pool, _log) = setup(16);
        for i in 1..=32u32 {
            format_page(&pool, PageId(i));
        }
        pool.flush_all().unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let id = PageId(1 + (i * 7 + t) % 32);
                        if i % 3 == 0 {
                            let mut g = pool.fix_x(id).unwrap();
                            let lsn = Lsn(g.page_lsn().0 + 1);
                            g.record_update(lsn);
                        } else {
                            let g = pool.fix_s(id).unwrap();
                            assert_eq!(g.page_id(), id);
                        }
                    }
                });
            }
        });
        // All pins released.
        assert!(pool.fix_s(PageId(1)).is_ok());
    }
}
