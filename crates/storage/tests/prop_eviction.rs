//! Property tests for the buffer pool's eviction machinery.
//!
//! Three layers of guarantees are sampled over arbitrary traces:
//!
//! * **Policy level** — for both Clock and LRU-K, `victim` only ever
//!   returns a frame its `evictable` callback approved (the callback is the
//!   pool's pin+latch gate, so "approved" is what makes eviction safe), for
//!   arbitrary hit/load traces and arbitrary sets of unevictable frames.
//! * **LRU-K model** — on an arbitrary deterministic access trace, the
//!   victim LRU-K picks is exactly the model's: the fully-evictable frame
//!   with the largest backward K-distance, with < K-access frames
//!   infinitely distant (oldest-last-access first), ties by frame index.
//! * **Pool level (WAL rule)** — arbitrary fix/dirty traces over a pool
//!   smaller than the page universe: whenever a dirty page is written back
//!   (eviction or flush), the log was already durable past the page's
//!   `page_lsn` — asserted from the `page_write_back` evidence events the
//!   pool emits, and by checking every evicted page's disk image is exactly
//!   what the latch-protected oracle last wrote.

use ariesim_common::page::PageType;
use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Lsn, PageId, TxnId};
use ariesim_obs::{Event, EventKind, Obs};
use ariesim_storage::eviction::{EvictionPolicy, EvictionPolicyKind};
use ariesim_storage::{BufferPool, DiskManager, PoolOptions};
use ariesim_wal::{LogManager, LogOptions, LogRecord, RmId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const FRAMES: usize = 8;

/// Replay a trace of (hit|load, frame) events into a fresh policy.
fn replay(kind: EvictionPolicyKind, trace: &[(bool, usize)]) -> Box<dyn EvictionPolicy> {
    let mut p = kind.build(FRAMES);
    for &(is_hit, f) in trace {
        if is_hit {
            p.on_hit(f % FRAMES);
        } else {
            p.on_load(f % FRAMES);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Neither policy ever returns a frame its gate rejected — i.e. a
    /// pinned or latched frame can never be chosen, no matter the trace.
    #[test]
    fn policies_only_evict_approved_frames(
        trace in proptest::collection::vec((any::<bool>(), 0usize..FRAMES), 0..60),
        blocked in proptest::collection::vec(any::<bool>(), FRAMES..FRAMES + 1),
    ) {
        for kind in [EvictionPolicyKind::Clock, EvictionPolicyKind::LruK(2)] {
            let mut p = replay(kind, &trace);
            let mut approved = [false; FRAMES];
            let victim = p.victim(&mut |f| {
                if blocked[f] {
                    false
                } else {
                    approved[f] = true;
                    true
                }
            });
            match victim {
                Some(f) => {
                    prop_assert!(
                        approved[f],
                        "{}: evicted frame {f} without approval (blocked={blocked:?})",
                        kind.name()
                    );
                    prop_assert!(!blocked[f]);
                }
                None => prop_assert!(
                    blocked.iter().all(|&b| b),
                    "{}: gave up with evictable frames left: {blocked:?}",
                    kind.name()
                ),
            }
        }
    }

    /// LRU-K's choice matches the reference model on any trace: among
    /// evictable frames, pick infinite-distance frames first (oldest last
    /// access first, never-touched before all), else the largest backward
    /// K-distance; break every tie with the lower frame index.
    #[test]
    fn lru_k_matches_reference_model(
        k in 1usize..4,
        trace in proptest::collection::vec((any::<bool>(), 0usize..FRAMES), 0..80),
        blocked in proptest::collection::vec(any::<bool>(), FRAMES..FRAMES + 1),
    ) {
        // Reference model: per frame, ticks of its accesses (append order =
        // tick order), reset on load.
        let mut hist: Vec<Vec<u64>> = vec![Vec::new(); FRAMES];
        let mut tick = 0u64;
        for &(is_hit, f) in &trace {
            let f = f % FRAMES;
            tick += 1;
            if !is_hit {
                hist[f].clear();
            }
            hist[f].push(tick);
        }
        // (infinite?, distance-or-age, index-tiebreak) priority, descending.
        let mut best: Option<(usize, (u8, u64))> = None;
        for f in 0..FRAMES {
            if blocked[f] {
                continue;
            }
            let h = &hist[f];
            let pri = if h.len() < k {
                (1u8, u64::MAX - h.last().copied().unwrap_or(0))
            } else {
                (0u8, tick - h[h.len() - k])
            };
            if best.is_none_or(|(_, b)| pri > b) {
                best = Some((f, pri));
            }
        }
        let mut p = EvictionPolicyKind::LruK(k).build(FRAMES);
        for &(is_hit, f) in &trace {
            if is_hit {
                p.on_hit(f % FRAMES);
            } else {
                p.on_load(f % FRAMES);
            }
        }
        let victim = p.victim(&mut |f| !blocked[f]);
        prop_assert_eq!(
            victim,
            best.map(|(f, _)| f),
            "k={} trace={:?} blocked={:?}",
            k,
            trace,
            blocked
        );
    }

    /// Pool-level WAL rule and no-lost-writes, over arbitrary single-thread
    /// fix/dirty traces with heavy eviction (pool of 8 frames, 32 pages).
    #[test]
    fn pool_never_writes_back_ahead_of_the_log(
        ops in proptest::collection::vec((any::<bool>(), 1u32..33), 1..120),
        policy_lru in any::<bool>(),
    ) {
        let obs = Obs::enabled(1 << 13);
        let dir = TempDir::new("prop-evict");
        let stats = new_stats();
        let log = Arc::new(
            LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
        );
        let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
        let pool = BufferPool::new_with_obs(
            disk,
            log.clone(),
            PoolOptions {
                frames: FRAMES,
                policy: if policy_lru {
                    EvictionPolicyKind::LruK(2)
                } else {
                    EvictionPolicyKind::Clock
                },
                ..Default::default()
            },
            stats,
            obs.clone(),
        );
        // Oracle: the stamp (owner word) each page must carry.
        let mut expect: HashMap<u32, u32> = HashMap::new();
        for &(write, p) in &ops {
            if write {
                // Append a real, unflushed record so the WAL rule has work.
                let lsn = log.append(&LogRecord::update(
                    TxnId(p as u64),
                    Lsn::NULL,
                    RmId::Heap,
                    PageId(p),
                    vec![p as u8],
                ));
                let mut g = pool.fix_x(PageId(p)).unwrap();
                let v = expect.get(&p).copied().unwrap_or(0) + 1;
                g.format(PageId(p), PageType::Heap, v, 0);
                g.record_update(lsn);
                expect.insert(p, v);
            } else {
                let g = pool.fix_s(PageId(p)).unwrap();
                // A never-formatted page reads back zeroed (page_id 0).
                if expect.contains_key(&p) {
                    prop_assert_eq!(g.page_id(), PageId(p));
                }
                prop_assert_eq!(g.owner(), expect.get(&p).copied().unwrap_or(0));
            }
        }
        // Every page — evicted ones fault back in from disk — matches.
        for (&p, &v) in &expect {
            let g = pool.fix_s(PageId(p)).unwrap();
            prop_assert_eq!(g.owner(), v, "page {} lost stamp {}", p, v);
            // A dirty page's image may legally still be only in memory; but
            // if it was evicted at some point, the WAL covered it (below).
        }
        // Every write-back event carries durable-LSN >= page_lsn.
        for line in obs.ring.dump_jsonl().lines() {
            if let Some(ev) = Event::parse_json_line(line) {
                if ev.kind == EventKind::PageWriteBack {
                    prop_assert!(
                        ev.txn >= ev.aux,
                        "WAL rule: page {} written at lsn {} with log durable to {}",
                        ev.page, ev.aux, ev.txn
                    );
                }
            }
        }
    }
}
