//! Transaction table, lifecycle, nested top actions, checkpoints.

use crate::undo::undo_chain;
use ariesim_common::stats::StatsHandle;
use ariesim_fault::crash_point;
use ariesim_common::{Error, Lsn, Result, TxnId};
use ariesim_lock::LockManager;
use ariesim_obs::SpanKind;
use ariesim_storage::BufferPool;
use ariesim_wal::{
    ChainLogger, CheckpointData, LogManager, LogRecord, RecordKind, ResourceManager, RmId,
    TxnCkptEntry, TxnState,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Registry of resource managers, indexed by [`RmId`].
#[derive(Default)]
pub struct RmRegistry {
    slots: Mutex<HashMap<u8, Arc<dyn ResourceManager>>>,
}

impl RmRegistry {
    pub fn new() -> RmRegistry {
        RmRegistry::default()
    }

    pub fn register(&self, rm: Arc<dyn ResourceManager>) {
        self.slots.lock().insert(rm.rm_id() as u8, rm);
    }

    pub fn get(&self, id: RmId) -> Result<Arc<dyn ResourceManager>> {
        self.slots
            .lock()
            .get(&(id as u8))
            .cloned()
            .ok_or_else(|| Error::Internal(format!("no resource manager registered for {id:?}")))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Active,
    Aborting,
    Finished,
}

struct TxnInner {
    last_lsn: Lsn,
    phase: Phase,
    /// Whether any record was appended through the chain logger after
    /// Begin (updates, CLRs, NTA dummies — anything a resource manager
    /// logs). A transaction that never wrote is read-only: its commit
    /// record carries no durability obligation and need not force the log
    /// (the classic ARIES read-only commit optimization).
    wrote: bool,
}

/// A live transaction. Handles are cheap to clone; one transaction is driven
/// by one thread at a time (the engine's sessions model), but the handle is
/// `Send + Sync` so scenario tests can pass transactions across threads.
pub struct TxnHandle {
    pub id: TxnId,
    inner: Mutex<TxnInner>,
}

impl TxnHandle {
    /// LSN of this transaction's most recent log record.
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    /// Run `f` with this transaction's chain logger; the chain cursor is
    /// written back when `f` returns. This is how resource managers append
    /// correctly linked records.
    pub fn with_logger<R>(
        &self,
        log: &LogManager,
        f: impl FnOnce(&mut ChainLogger<'_>) -> R,
    ) -> R {
        let mut g = self.inner.lock();
        let prev = g.last_lsn;
        let mut logger = ChainLogger::new(log, self.id, prev);
        let r = f(&mut logger);
        if logger.last_lsn != prev {
            g.wrote = true;
        }
        g.last_lsn = logger.last_lsn;
        r
    }

    /// Begin a nested top action: returns the token [`end_nta`](Self::end_nta)
    /// needs (the LSN of the last record written *before* the NTA; paper §1.2).
    pub fn begin_nta(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    /// End a nested top action by writing the dummy CLR whose
    /// `undo_next_lsn` is the token from [`begin_nta`](Self::begin_nta).
    /// Returns the dummy CLR's LSN.
    pub fn end_nta(&self, log: &LogManager, token: Lsn) -> Lsn {
        self.with_logger(log, |l| l.dummy_clr(token))
    }

    /// Current savepoint: roll back to this with
    /// [`TransactionManager::rollback_to`].
    pub fn savepoint(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    fn check_active(&self) -> Result<()> {
        let g = self.inner.lock();
        match g.phase {
            Phase::Active => Ok(()),
            Phase::Aborting => Err(Error::BadTxnState {
                txn: self.id,
                state: "aborting",
            }),
            Phase::Finished => Err(Error::BadTxnState {
                txn: self.id,
                state: "finished",
            }),
        }
    }
}

struct TmInner {
    next_txn: u64,
    table: HashMap<TxnId, Arc<TxnHandle>>,
}

/// Callback invoked when a transaction finishes (commit or total rollback),
/// after its locks are released. Resource managers use this to drop
/// transaction-scoped state (e.g. the heap manager's space reservations).
pub type EndHook = Arc<dyn Fn(TxnId) + Send + Sync>;

/// The transaction manager.
pub struct TransactionManager {
    log: Arc<LogManager>,
    locks: Arc<LockManager>,
    pool: Arc<BufferPool>,
    rms: Arc<RmRegistry>,
    inner: Mutex<TmInner>,
    end_hooks: Mutex<Vec<EndHook>>,
    #[allow(dead_code)]
    stats: StatsHandle,
}

impl TransactionManager {
    pub fn new(
        log: Arc<LogManager>,
        locks: Arc<LockManager>,
        pool: Arc<BufferPool>,
        rms: Arc<RmRegistry>,
        stats: StatsHandle,
    ) -> TransactionManager {
        TransactionManager {
            log,
            locks,
            pool,
            rms,
            inner: Mutex::new(TmInner {
                next_txn: 1,
                table: HashMap::new(),
            }),
            end_hooks: Mutex::new(Vec::new()),
            stats,
        }
    }

    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    pub fn rms(&self) -> &Arc<RmRegistry> {
        &self.rms
    }

    /// Register a transaction-end hook (see [`EndHook`]).
    pub fn on_end(&self, hook: EndHook) {
        self.end_hooks.lock().push(hook);
    }

    fn run_end_hooks(&self, txn: TxnId) {
        let hooks: Vec<EndHook> = self.end_hooks.lock().clone();
        for h in hooks {
            h(txn);
        }
    }

    /// Restart recovery tells the manager the highest transaction id seen in
    /// the log, so new ids never collide with pre-crash ones.
    pub fn resume_txn_ids_after(&self, max_seen: u64) {
        let mut g = self.inner.lock();
        if g.next_txn <= max_seen {
            g.next_txn = max_seen + 1;
        }
    }

    /// Start a transaction. Writes its Begin record.
    pub fn begin(&self) -> Arc<TxnHandle> {
        let id = {
            let mut g = self.inner.lock();
            let id = TxnId(g.next_txn);
            g.next_txn += 1;
            id
        };
        let handle = Arc::new(TxnHandle {
            id,
            inner: Mutex::new(TxnInner {
                last_lsn: Lsn::NULL,
                phase: Phase::Active,
                wrote: false,
            }),
        });
        let lsn = self
            .log
            .append(&LogRecord::control(id, Lsn::NULL, RecordKind::Begin));
        handle.inner.lock().last_lsn = lsn;
        self.inner.lock().table.insert(id, handle.clone());
        handle
    }

    /// Commit: write and **force** the commit record, release locks, write
    /// End. (The force is the only synchronous I/O a transaction requires —
    /// the paper's §1 efficiency measure.) A read-only transaction — one
    /// whose chain logger never appended after Begin — still writes its
    /// control records but skips the force entirely: it changed nothing, so
    /// losing its commit record in a crash is unobservable, and in a
    /// read-mostly workload the elided waits dominate the commit path.
    pub fn commit(&self, txn: &TxnHandle) -> Result<()> {
        let op = self.pool.obs().timer();
        // Tag the commit window with the txn id so per-transaction
        // attribution can break a commit into its WAL append / fsync /
        // lock-release components.
        let _span = self.pool.obs().span(SpanKind::UserWork, txn.id.0, 0);
        txn.check_active()?;
        let wrote = txn.inner.lock().wrote;
        let commit_lsn = txn.with_logger(&self.log, |l| l.control(RecordKind::Commit));
        crash_point!("txn.commit.logged");
        if wrote {
            self.log.flush_to(commit_lsn)?;
        }
        crash_point!("txn.commit.forced");
        self.locks.release_all(txn.id);
        self.run_end_hooks(txn.id);
        txn.with_logger(&self.log, |l| l.control(RecordKind::End));
        crash_point!("txn.commit.ended");
        txn.inner.lock().phase = Phase::Finished;
        self.inner.lock().table.remove(&txn.id);
        self.pool.obs().hist.op_commit.record_since(op);
        Ok(())
    }

    /// Total rollback: undo the whole chain, then release locks and End.
    ///
    /// Per paper §4, the undo path requests **no locks** (only latches), so a
    /// rolling-back transaction can never join a deadlock.
    pub fn rollback(&self, txn: &TxnHandle) -> Result<()> {
        {
            let mut g = txn.inner.lock();
            if g.phase == Phase::Finished {
                return Err(Error::BadTxnState {
                    txn: txn.id,
                    state: "finished",
                });
            }
            g.phase = Phase::Aborting;
        }
        txn.with_logger(&self.log, |l| l.control(RecordKind::Abort));
        crash_point!("txn.rollback.logged");
        let last = txn.last_lsn();
        let new_last = undo_chain(&self.log, &self.rms, txn.id, last, Lsn::NULL, false)?;
        crash_point!("txn.rollback.undone");
        {
            let mut g = txn.inner.lock();
            g.last_lsn = new_last;
        }
        self.locks.release_all(txn.id);
        self.run_end_hooks(txn.id);
        txn.with_logger(&self.log, |l| l.control(RecordKind::End));
        txn.inner.lock().phase = Phase::Finished;
        self.inner.lock().table.remove(&txn.id);
        Ok(())
    }

    /// Partial rollback to a savepoint taken with [`TxnHandle::savepoint`]:
    /// undoes every record after it; the transaction stays active and keeps
    /// its locks (ARIES partial-rollback semantics).
    pub fn rollback_to(&self, txn: &TxnHandle, savepoint: Lsn) -> Result<()> {
        txn.check_active()?;
        let last = txn.last_lsn();
        let new_last = undo_chain(&self.log, &self.rms, txn.id, last, savepoint, false)?;
        txn.inner.lock().last_lsn = new_last;
        Ok(())
    }

    /// Take a fuzzy checkpoint: begin record, snapshot of DPT + transaction
    /// table, end record, master pointer. Nothing is quiesced or flushed.
    pub fn checkpoint(&self) -> Result<Lsn> {
        let begin_lsn = self.log.append(&LogRecord {
            lsn: Lsn::NULL,
            prev_lsn: Lsn::NULL,
            txn: TxnId::NONE,
            kind: RecordKind::CkptBegin,
            undo_next_lsn: Lsn::NULL,
            rm: RmId::Txn,
            page: ariesim_common::PageId::NULL,
            body: Vec::new(),
        });
        crash_point!("txn.ckpt.begin_logged");
        let dpt = self.pool.dpt_snapshot_fenced();
        let (txns, max_txn_id) = {
            let g = self.inner.lock();
            let entries = g
                .table
                .values()
                .map(|t| {
                    let ti = t.inner.lock();
                    TxnCkptEntry {
                        txn: t.id,
                        state: match ti.phase {
                            Phase::Aborting => TxnState::Aborting,
                            _ => TxnState::InFlight,
                        },
                        last_lsn: ti.last_lsn,
                        undo_next_lsn: ti.last_lsn,
                    }
                })
                .collect();
            (entries, g.next_txn - 1)
        };
        let data = CheckpointData {
            dpt,
            txns,
            max_txn_id,
        };
        let end = self.log.append(&LogRecord {
            lsn: Lsn::NULL,
            prev_lsn: Lsn::NULL,
            txn: TxnId::NONE,
            kind: RecordKind::CkptEnd,
            undo_next_lsn: Lsn::NULL,
            rm: RmId::Txn,
            page: ariesim_common::PageId::NULL,
            body: data.encode(),
        });
        crash_point!("txn.ckpt.end_logged");
        self.log.flush_to(end)?;
        self.log.write_master(begin_lsn)?;
        crash_point!("txn.ckpt.master_written");
        Ok(begin_lsn)
    }

    /// Number of live transactions (for assertions).
    pub fn active_count(&self) -> usize {
        self.inner.lock().table.len()
    }
}
