//! Transaction manager.
//!
//! Owns the transaction table and the transaction lifecycle the paper
//! assumes from ARIES (§1.2):
//!
//! * **commit** forces the log up to the commit record (no pages are
//!   written — no-force), then releases locks;
//! * **total and partial rollback** walk the transaction's log chain
//!   backwards, dispatching each update record to its resource manager for
//!   undo and writing CLRs, so that rollbacks are themselves bounded and
//!   repeatable ([`undo`]);
//! * **nested top actions** bracket SMOs: [`manager::TxnHandle::begin_nta`]
//!   remembers the transaction's last LSN, and
//!   [`manager::TxnHandle::end_nta`] writes the dummy CLR pointing at it, so
//!   a later rollback bypasses the SMO's records (§1.2, Figures 9/10);
//! * **fuzzy checkpoints** snapshot the dirty page table and transaction
//!   table without quiescing anything
//!   ([`manager::TransactionManager::checkpoint`]).
//!
//! The [`RmRegistry`] maps [`ariesim_wal::RmId`]s to the resource managers
//! that interpret their log-record bodies; both normal rollback (here) and
//! restart recovery (`ariesim-recovery`) dispatch through it.

pub mod manager;
pub mod undo;

pub use manager::{RmRegistry, TransactionManager, TxnHandle};
