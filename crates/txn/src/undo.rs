//! The undo driver: walks a transaction's log chain backwards, dispatching
//! updates to their resource managers.
//!
//! Used by normal rollback (total and partial) and by restart's undo pass.
//! The CLR chaining gives ARIES its bounded-rollback property: when the
//! driver meets a CLR it *skips* to the CLR's `undo_next_lsn` instead of
//! undoing anything, so work already compensated (including whole nested top
//! actions, via dummy CLRs) is never undone twice — even if rollback is
//! interrupted by a crash and resumed by restart.

use ariesim_common::{Lsn, Result, TxnId};
use ariesim_wal::{ChainLogger, LogManager, RecordKind};

use crate::manager::RmRegistry;

/// Undo `txn`'s chain starting at `from` (its last LSN) until the next
/// record to undo would have LSN ≤ `until` (use [`Lsn::NULL`] for total
/// rollback). Returns the transaction's new last LSN (after the CLRs).
///
/// `restart` selects restart-undo behaviour in the resource managers (no
/// lock acquisition).
pub fn undo_chain(
    log: &LogManager,
    rms: &RmRegistry,
    txn: TxnId,
    from: Lsn,
    until: Lsn,
    restart: bool,
) -> Result<Lsn> {
    let mut logger = if restart {
        ChainLogger::for_restart(log, txn, from)
    } else {
        ChainLogger::new(log, txn, from)
    };
    let mut next = from;
    while !next.is_null() && next > until {
        let rec = log.read(next)?;
        debug_assert_eq!(rec.txn, txn, "undo walked into another txn's record");
        match rec.kind {
            RecordKind::Update => {
                ariesim_fault::crash_point!("undo.before_action");
                let rm = rms.get(rec.rm)?;
                rm.undo(&mut logger, &rec)?;
                ariesim_fault::crash_point!("undo.after_action");
                next = rec.prev_lsn;
            }
            RecordKind::Clr | RecordKind::DummyClr => {
                // Already-compensated work: skip over it.
                ariesim_fault::crash_point!("undo.skip_clr");
                next = rec.undo_next_lsn;
            }
            RecordKind::Begin => break,
            _ => next = rec.prev_lsn,
        }
    }
    Ok(logger.last_lsn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::RmRegistry;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::{PageBuf, PageId, Result};
    use ariesim_wal::{LogOptions, LogRecord, ResourceManager, RmId};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Toy RM: body is one byte; "undo" records the byte and writes a CLR.
    struct ToyRm {
        undone: Mutex<Vec<u8>>,
    }

    impl ResourceManager for ToyRm {
        fn rm_id(&self) -> RmId {
            RmId::Heap
        }

        fn redo(&self, _page: &mut PageBuf, _rec: &LogRecord) -> Result<()> {
            Ok(())
        }

        fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()> {
            self.undone.lock().push(rec.body[0]);
            logger.clr(RmId::Heap, rec.page, rec.prev_lsn, rec.body.clone());
            Ok(())
        }
    }

    fn setup() -> (TempDir, Arc<LogManager>, Arc<RmRegistry>, Arc<ToyRm>) {
        let dir = TempDir::new("undo");
        let log = Arc::new(
            LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap(),
        );
        let rms = Arc::new(RmRegistry::new());
        let toy = Arc::new(ToyRm {
            undone: Mutex::new(Vec::new()),
        });
        rms.register(toy.clone());
        (dir, log, rms, toy)
    }

    fn append_updates(log: &LogManager, txn: TxnId, bodies: &[u8]) -> Vec<Lsn> {
        let mut logger = ChainLogger::new(log, txn, Lsn::NULL);
        bodies
            .iter()
            .map(|&b| logger.update(RmId::Heap, PageId(1), vec![b]))
            .collect()
    }

    #[test]
    fn total_undo_reverses_chain() {
        let (_d, log, rms, toy) = setup();
        let lsns = append_updates(&log, TxnId(1), &[1, 2, 3]);
        let new_last = undo_chain(&log, &rms, TxnId(1), lsns[2], Lsn::NULL, false).unwrap();
        assert_eq!(*toy.undone.lock(), vec![3, 2, 1]);
        // Three CLRs were written; last CLR's undo_next is NULL.
        let last = log.read(new_last).unwrap();
        assert_eq!(last.kind, RecordKind::Clr);
        assert_eq!(last.undo_next_lsn, Lsn::NULL);
    }

    #[test]
    fn partial_undo_stops_at_savepoint() {
        let (_d, log, rms, toy) = setup();
        let lsns = append_updates(&log, TxnId(1), &[1, 2, 3, 4]);
        let save = lsns[1]; // keep records 1 and 2
        undo_chain(&log, &rms, TxnId(1), lsns[3], save, false).unwrap();
        assert_eq!(*toy.undone.lock(), vec![4, 3]);
    }

    #[test]
    fn clrs_are_skipped_on_repeated_undo() {
        let (_d, log, rms, toy) = setup();
        let lsns = append_updates(&log, TxnId(1), &[1, 2, 3]);
        // First: partial rollback of record 3.
        let last = undo_chain(&log, &rms, TxnId(1), lsns[2], lsns[1], false).unwrap();
        assert_eq!(*toy.undone.lock(), vec![3]);
        // Now total rollback from the new chain end: record 3 must NOT be
        // undone again (its CLR redirects to record 2).
        undo_chain(&log, &rms, TxnId(1), last, Lsn::NULL, false).unwrap();
        assert_eq!(*toy.undone.lock(), vec![3, 2, 1]);
    }

    #[test]
    fn dummy_clr_bypasses_nested_top_action() {
        let (_d, log, rms, toy) = setup();
        let mut logger = ChainLogger::new(&log, TxnId(1), Lsn::NULL);
        let l1 = logger.update(RmId::Heap, PageId(1), vec![1]);
        // NTA: records 10, 11, closed by dummy CLR pointing before them.
        logger.update(RmId::Heap, PageId(1), vec![10]);
        logger.update(RmId::Heap, PageId(1), vec![11]);
        logger.dummy_clr(l1);
        logger.update(RmId::Heap, PageId(1), vec![2]);
        let last = logger.last_lsn;
        undo_chain(&log, &rms, TxnId(1), last, Lsn::NULL, false).unwrap();
        // 2 undone, NTA records skipped, then 1 undone.
        assert_eq!(*toy.undone.lock(), vec![2, 1]);
    }

    #[test]
    fn undo_of_empty_chain_is_noop() {
        let (_d, log, rms, toy) = setup();
        let last = undo_chain(&log, &rms, TxnId(1), Lsn::NULL, Lsn::NULL, false).unwrap();
        assert!(last.is_null());
        assert!(toy.undone.lock().is_empty());
    }
}
