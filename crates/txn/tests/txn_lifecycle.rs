//! Transaction-manager lifecycle tests: commit forces the log, rollbacks
//! release locks, nested top actions chain correctly, checkpoints snapshot
//! the fuzzy state, and misuse is rejected.

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Error, Lsn, PageBuf, PageId, Result, TxnId};
use ariesim_lock::{LockDuration, LockManager, LockMode, LockName};
use ariesim_storage::{BufferPool, DiskManager, PoolOptions};
use ariesim_txn::{RmRegistry, TransactionManager};
use ariesim_wal::{
    ChainLogger, CheckpointData, LogManager, LogOptions, LogRecord, RecordKind, ResourceManager,
    RmId,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Toy RM whose undo just records what it undid.
struct ToyRm {
    undone: Mutex<Vec<Vec<u8>>>,
}

impl ResourceManager for ToyRm {
    fn rm_id(&self) -> RmId {
        RmId::Heap
    }

    fn redo(&self, _page: &mut PageBuf, _rec: &LogRecord) -> Result<()> {
        Ok(())
    }

    fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()> {
        self.undone.lock().push(rec.body.clone());
        logger.clr(RmId::Heap, rec.page, rec.prev_lsn, rec.body.clone());
        Ok(())
    }
}

struct Fix {
    _dir: TempDir,
    log: Arc<LogManager>,
    locks: Arc<LockManager>,
    tm: Arc<TransactionManager>,
    toy: Arc<ToyRm>,
}

fn fix() -> Fix {
    let dir = TempDir::new("txn-it");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions::default(), stats.clone());
    let locks = Arc::new(LockManager::new(stats.clone()));
    let rms = Arc::new(RmRegistry::new());
    let toy = Arc::new(ToyRm {
        undone: Mutex::new(Vec::new()),
    });
    rms.register(toy.clone());
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks.clone(),
        pool,
        rms,
        stats,
    ));
    Fix {
        _dir: dir,
        log,
        locks,
        tm,
        toy,
    }
}

fn log_something(f: &Fix, txn: &ariesim_txn::TxnHandle, body: &[u8]) -> Lsn {
    txn.with_logger(&f.log, |l| l.update(RmId::Heap, PageId(9), body.to_vec()))
}

#[test]
fn commit_forces_exactly_to_the_commit_record() {
    let f = fix();
    let txn = f.tm.begin();
    log_something(&f, &txn, b"a");
    let before = f.log.flushed_lsn();
    f.tm.commit(&txn).unwrap();
    assert!(f.log.flushed_lsn() > before, "commit must force the log");
    // The End record may be unflushed (it rides the next force) — ARIES
    // needs only the Commit record durable.
    let kinds: Vec<RecordKind> = f
        .log
        .scan(Lsn::NULL)
        .map(|r| r.unwrap().kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            RecordKind::Begin,
            RecordKind::Update,
            RecordKind::Commit,
            RecordKind::End
        ]
    );
}

#[test]
fn rollback_writes_abort_then_clrs_then_end() {
    let f = fix();
    let txn = f.tm.begin();
    log_something(&f, &txn, b"x");
    log_something(&f, &txn, b"y");
    f.tm.rollback(&txn).unwrap();
    assert_eq!(*f.toy.undone.lock(), vec![b"y".to_vec(), b"x".to_vec()]);
    let kinds: Vec<RecordKind> = f.log.scan(Lsn::NULL).map(|r| r.unwrap().kind).collect();
    assert_eq!(
        kinds,
        vec![
            RecordKind::Begin,
            RecordKind::Update,
            RecordKind::Update,
            RecordKind::Abort,
            RecordKind::Clr,
            RecordKind::Clr,
            RecordKind::End,
        ]
    );
}

#[test]
fn commit_and_rollback_release_all_locks() {
    let f = fix();
    for do_commit in [true, false] {
        let txn = f.tm.begin();
        let name = LockName::Record(ariesim_common::Rid::new(PageId(5), 1));
        f.locks
            .request(txn.id, name.clone(), LockMode::X, LockDuration::Commit, false)
            .unwrap();
        assert_eq!(f.locks.held_count(txn.id), 1);
        if do_commit {
            f.tm.commit(&txn).unwrap();
        } else {
            f.tm.rollback(&txn).unwrap();
        }
        assert_eq!(f.locks.held_count(txn.id), 0);
    }
}

#[test]
fn finished_transactions_reject_further_work() {
    let f = fix();
    let txn = f.tm.begin();
    f.tm.commit(&txn).unwrap();
    assert!(matches!(
        f.tm.commit(&txn),
        Err(Error::BadTxnState { .. })
    ));
    assert!(matches!(
        f.tm.rollback(&txn),
        Err(Error::BadTxnState { .. })
    ));
    assert!(matches!(
        f.tm.rollback_to(&txn, Lsn::NULL),
        Err(Error::BadTxnState { .. })
    ));
}

#[test]
fn nta_token_round_trip() {
    let f = fix();
    let txn = f.tm.begin();
    log_something(&f, &txn, b"pre");
    let token = txn.begin_nta();
    log_something(&f, &txn, b"inside-1");
    log_something(&f, &txn, b"inside-2");
    let dummy_lsn = txn.end_nta(&f.log, token);
    let dummy = f.log.read(dummy_lsn).unwrap();
    assert_eq!(dummy.kind, RecordKind::DummyClr);
    assert_eq!(dummy.undo_next_lsn, token);
    // Rollback skips the NTA.
    f.tm.rollback(&txn).unwrap();
    assert_eq!(*f.toy.undone.lock(), vec![b"pre".to_vec()]);
}

#[test]
fn checkpoint_records_fuzzy_transaction_table() {
    let f = fix();
    let t1 = f.tm.begin();
    log_something(&f, &t1, b"live");
    let t2 = f.tm.begin();
    f.tm.commit(&t2).unwrap();
    let ckpt_lsn = f.tm.checkpoint().unwrap();
    assert_eq!(f.log.read_master().unwrap(), ckpt_lsn);
    // Find the CkptEnd and decode its table.
    let end = f
        .log
        .scan(ckpt_lsn)
        .map(|r| r.unwrap())
        .find(|r| r.kind == RecordKind::CkptEnd)
        .unwrap();
    let data = CheckpointData::decode(end.lsn, &end.body).unwrap();
    let ids: Vec<TxnId> = data.txns.iter().map(|t| t.txn).collect();
    assert!(ids.contains(&t1.id), "in-flight txn recorded");
    assert!(!ids.contains(&t2.id), "finished txn absent");
    assert!(data.max_txn_id >= t2.id.0);
    f.tm.rollback(&t1).unwrap();
}

#[test]
fn active_count_tracks_table() {
    let f = fix();
    assert_eq!(f.tm.active_count(), 0);
    let a = f.tm.begin();
    let b = f.tm.begin();
    assert_eq!(f.tm.active_count(), 2);
    f.tm.commit(&a).unwrap();
    assert_eq!(f.tm.active_count(), 1);
    f.tm.rollback(&b).unwrap();
    assert_eq!(f.tm.active_count(), 0);
}

#[test]
fn resume_txn_ids_prevents_collisions() {
    let f = fix();
    f.tm.resume_txn_ids_after(100);
    let txn = f.tm.begin();
    assert!(txn.id.0 > 100);
    f.tm.commit(&txn).unwrap();
}

#[test]
fn end_hooks_fire_on_both_outcomes() {
    let f = fix();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s = seen.clone();
    f.tm.on_end(Arc::new(move |t| s.lock().push(t)));
    let a = f.tm.begin();
    f.tm.commit(&a).unwrap();
    let b = f.tm.begin();
    f.tm.rollback(&b).unwrap();
    assert_eq!(*seen.lock(), vec![a.id, b.id]);
}
