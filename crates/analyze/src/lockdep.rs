//! Offline checker for the runtime acquisition-order graph dumped by
//! `ariesim_obs::lockdep::dump_jsonl()`.
//!
//! The runtime side records, per thread, an edge `held → acquired` for every
//! *blocking* acquisition made while another synchronization class is held
//! (trylocks join the held set but record no edges — a denied trylock never
//! waits, so it cannot participate in a deadlock). This module replays that
//! graph against the paper's §4 ordering argument:
//!
//! * **Rank order** — TreeLatch(1) → PageLatch(2) → {PoolShard, LockTable}(3)
//!   → LockWait(4). An edge from a higher rank to a strictly lower one means
//!   some thread blocked on a class that other threads acquire *before* the
//!   one it was holding — the raw material of a deadlock cycle.
//! * **Page-latch coupling** — PageLatch → PageLatch is the one legal
//!   rank-equal edge (parent→child / leaf→next-leaf coupling); any other
//!   rank-equal edge (a mutex while holding a mutex of the same class) is an
//!   error.
//! * **No wait under latch** — TreeLatch → LockWait or PageLatch → LockWait
//!   means a thread entered an unconditional lock-manager wait while holding
//!   a latch, the exact §4 violation. (LockTable → LockWait is expected: the
//!   condvar wait releases the table mutex by construction.)
//! * **Acyclicity** — cycles among *distinct* classes, found by DFS.
//! * **Chain depth** — the dump's `max_page_latch_chain` must be ≤ 2, the
//!   paper's "at most two page latches simultaneously" budget.

use crate::Finding;
use std::collections::{HashMap, HashSet};

/// Class ranks, mirroring `ariesim_obs::lockdep::Class::rank()`. Kept as a
/// table of names so the checker has no dependency on the obs crate.
/// `PoolShard` (rank 3) is one of the buffer pool's partition mutexes — the
/// retired `PoolMutex` name is deliberately absent, so a stale dump from a
/// pre-partitioned build fails as an unknown class instead of passing.
pub fn class_rank(name: &str) -> Option<u32> {
    match name {
        "TreeLatch" => Some(1),
        "PageLatch" => Some(2),
        "PoolShard" | "LockTable" => Some(3),
        "LockWait" => Some(4),
        _ => None,
    }
}

/// One `{"type":"edge",...}` line of the dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub held: String,
    pub acquired: String,
    pub site: String,
    pub count: u64,
}

/// Parsed dump: edges plus the summary counters.
#[derive(Debug, Default)]
pub struct Dump {
    pub edges: Vec<Edge>,
    pub acquisitions: u64,
    pub max_page_latch_chain: u64,
}

/// Extract `"key":"value"` from a flat JSON object line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(&line[at..at + end])
}

/// Extract `"key":N` from a flat JSON object line.
fn json_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()
}

/// Parse a `dump_jsonl()` document. Unknown line types are ignored so the
/// dump format can grow.
pub fn parse_dump(text: &str) -> Dump {
    let mut d = Dump::default();
    for line in text.lines() {
        match json_str(line, "type") {
            Some("edge") => {
                if let (Some(held), Some(acquired)) =
                    (json_str(line, "held"), json_str(line, "acquired"))
                {
                    d.edges.push(Edge {
                        held: held.to_string(),
                        acquired: acquired.to_string(),
                        site: json_str(line, "site").unwrap_or("?").to_string(),
                        count: json_num(line, "count").unwrap_or(0),
                    });
                }
            }
            Some("summary") => {
                d.acquisitions = json_num(line, "acquisitions").unwrap_or(0);
                d.max_page_latch_chain = json_num(line, "max_page_latch_chain").unwrap_or(0);
            }
            _ => {}
        }
    }
    d
}

/// Check a parsed dump; findings are anchored at the dump "file" with line 0.
pub fn check_dump(dump_name: &str, d: &Dump) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |msg: String| {
        findings.push(Finding {
            file: dump_name.to_string(),
            line: 0,
            lint: "lockdep",
            fp: String::new(),
            msg,
        });
    };

    // Per-edge rules.
    for e in &d.edges {
        let (Some(hr), Some(ar)) = (class_rank(&e.held), class_rank(&e.acquired)) else {
            push(format!(
                "unknown class in edge {} -> {} at {}",
                e.held, e.acquired, e.site
            ));
            continue;
        };
        if (e.held == "TreeLatch" || e.held == "PageLatch") && e.acquired == "LockWait" {
            push(format!(
                "blocking lock wait while holding a {} (site {}, {} times): \
                 §4 requires releasing every latch before an unconditional lock request",
                e.held, e.site, e.count
            ));
            continue;
        }
        if ar < hr {
            push(format!(
                "rank-order violation: {}(rank {hr}) held while blocking on \
                 {}(rank {ar}) at {} ({} times)",
                e.held, e.acquired, e.site, e.count
            ));
        } else if ar == hr && !(e.held == "PageLatch" && e.acquired == "PageLatch") {
            push(format!(
                "rank-equal edge {} -> {} at {} ({} times): only page-latch \
                 coupling may acquire within its own rank",
                e.held, e.acquired, e.site, e.count
            ));
        }
    }

    // Cycle detection over distinct-class edges (self-edges are the legal
    // page-latch coupling, excluded).
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for e in &d.edges {
        if e.held != e.acquired {
            adj.entry(&e.held).or_default().push(&e.acquired);
        }
    }
    if let Some(cycle) = find_cycle(&adj) {
        push(format!(
            "acquisition-order cycle: {} (a deadlock is schedulable)",
            cycle.join(" -> ")
        ));
    }

    if d.max_page_latch_chain > 2 {
        push(format!(
            "max page-latch chain depth {} exceeds the paper's budget of 2",
            d.max_page_latch_chain
        ));
    }
    findings
}

/// First cycle found by DFS, as the list of classes along it.
fn find_cycle<'a>(adj: &HashMap<&'a str, Vec<&'a str>>) -> Option<Vec<String>> {
    #[derive(PartialEq, Clone, Copy)]
    enum Mark {
        InProgress,
        Done,
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &HashMap<&'a str, Vec<&'a str>>,
        marks: &mut HashMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::InProgress);
        stack.push(node);
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            match marks.get(next) {
                Some(Mark::InProgress) => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Some(Mark::Done) => {}
                None => {
                    if let Some(c) = dfs(next, adj, marks, stack) {
                        return Some(c);
                    }
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Done);
        None
    }
    let mut marks = HashMap::new();
    let nodes: HashSet<&str> = adj.keys().copied().collect();
    let mut ordered: Vec<&str> = nodes.into_iter().collect();
    ordered.sort();
    for n in ordered {
        if !marks.contains_key(n) {
            if let Some(c) = dfs(n, adj, &mut marks, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

/// Human-readable summary of a dump (printed by `arieslint --lockdep`).
pub fn summarize(d: &Dump) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "lockdep: {} distinct edges, {} acquisitions, max page-latch chain {}\n",
        d.edges.len(),
        d.acquisitions,
        d.max_page_latch_chain
    ));
    let mut edges = d.edges.clone();
    edges.sort_by_key(|e| std::cmp::Reverse(e.count));
    for e in &edges {
        out.push_str(&format!(
            "  {:>10} -> {:<10} {:>8}x  at {}\n",
            e.held, e.acquired, e.count, e.site
        ));
    }
    out
}
