//! `arieslint` — run the repo's custom lint suite and/or the lockdep check.
//!
//! ```text
//! cargo run -p analyze --bin arieslint                      # source lints
//! cargo run -p analyze --bin arieslint -- --census          # + census table
//! cargo run -p analyze --bin arieslint -- --crash-points F  # + reachability
//! cargo run -p analyze --bin arieslint -- --lockdep DUMP    # dump check only
//! ```
//!
//! Exits nonzero on any finding. The allowlist is `lint.allow` at the repo
//! root; see the crate docs for the format.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_root(start: &Path) -> PathBuf {
    let mut cur = start.to_path_buf();
    loop {
        let manifest = cur.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return cur;
                }
            }
        }
        if !cur.pop() {
            return start.to_path_buf();
        }
    }
}

fn main() -> ExitCode {
    let mut lockdep_file: Option<PathBuf> = None;
    let mut crash_points_file: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut census = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lockdep" => lockdep_file = args.next().map(PathBuf::from),
            "--crash-points" => crash_points_file = args.next().map(PathBuf::from),
            "--root" => root_arg = args.next().map(PathBuf::from),
            "--census" => census = true,
            "--help" | "-h" => {
                println!(
                    "arieslint [--root DIR] [--census] [--crash-points FILE] [--lockdep DUMP]\n\
                     \n\
                     With no --lockdep: run the source lint suite over the workspace\n\
                     (latch census + rank order, no-wait-under-latch, panic audit,\n\
                     crash-point registry, metric-name audit, WAL-record coverage),\n\
                     filtered through\n\
                     lint.allow. --crash-points adds the reachability audit against\n\
                     a `torture --list-points` output file.\n\
                     \n\
                     With --lockdep: check an acquisition-order dump (JSONL from\n\
                     ariesim_obs::lockdep::dump_jsonl) for rank violations, cycles,\n\
                     waits-under-latch, and page-latch chain depth > 2."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("arieslint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut findings = Vec::new();

    // --- lockdep mode -----------------------------------------------------
    if let Some(dump_path) = &lockdep_file {
        let text = match std::fs::read_to_string(dump_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("arieslint: cannot read {}: {e}", dump_path.display());
                return ExitCode::from(2);
            }
        };
        let dump = analyze::lockdep::parse_dump(&text);
        if dump.edges.is_empty() && dump.acquisitions == 0 {
            eprintln!(
                "arieslint: {} contains no lockdep data (release build? \
                 the graph is recorded under debug assertions only)",
                dump_path.display()
            );
            return ExitCode::from(2);
        }
        print!("{}", analyze::lockdep::summarize(&dump));
        findings.extend(analyze::lockdep::check_dump(
            &dump_path.display().to_string(),
            &dump,
        ));
    } else {
        // --- source-lint mode ---------------------------------------------
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let root = root_arg.unwrap_or_else(|| find_root(&cwd));

        let reached: Option<Vec<String>> = match &crash_points_file {
            Some(p) => match std::fs::read_to_string(p) {
                Ok(t) => Some(
                    t.lines()
                        .filter_map(|l| l.split_whitespace().next())
                        .map(str::to_string)
                        .collect(),
                ),
                Err(e) => {
                    eprintln!("arieslint: cannot read {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            None => None,
        };

        let report = match analyze::run_source_lints(&root, reached.as_deref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("arieslint: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let allow_text =
            std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
        let (allow, allow_findings) = analyze::parse_allowlist(&allow_text);
        findings.extend(analyze::apply_allowlist(report.findings, &allow));
        findings.extend(allow_findings);

        if census {
            print!("{}", analyze::census_table(&report.census));
            print!("{}", analyze::ordering_table(&report.ordering_sites));
        }
        println!(
            "arieslint: {} latch sites, {} ordering sites, {} crash points, \
             {} metric names, {} allowlist entries",
            report.census.len(),
            report.ordering_sites.len(),
            report.crash_points.len(),
            report.metric_sites.len(),
            allow.len()
        );
    }

    if findings.is_empty() {
        println!("arieslint: clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("arieslint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
