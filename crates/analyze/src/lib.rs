//! `arieslint` — a repo-specific static-analysis pass that mechanically
//! certifies the code-level obligations behind the paper's §4 safety
//! argument, plus a lockdep-style checker over the runtime acquisition-order
//! graph dumped by `ariesim_obs::lockdep`.
//!
//! The §4 deadlock-freedom proof rests on discipline the compiler cannot
//! check: every latch acquisition follows the rank order (tree latch before
//! page latches, parent before child), no lock is ever *waited* for while a
//! latch is held, and undo paths never panic half-way. Each lint here turns
//! one such obligation into a build failure:
//!
//! * [`lint_latch_census`] — every latch-acquisition site in the index,
//!   record, transaction and recovery crates must carry a
//!   `// latch-rank: N` annotation, ranks must match the latch class
//!   (tree = 1, page = 2), and ranks must be non-decreasing along the
//!   lexical acquisition order within a function (with `(fresh)` marking a
//!   provable all-released point and `(conditional)` marking try-sites that
//!   are exempt from ordering by construction).
//! * [`lint_no_wait_under_latch`] — a blocking lock-manager call
//!   (`.request(.., false)`) lexically inside a latch-guard scope is the
//!   exact bug §4 forbids; a conservative let-binding tracker flags it.
//! * [`lint_no_panic`] — `unwrap`/`expect`/`panic!`/`unreachable!` in the
//!   engine crates outside `#[cfg(test)]`: rollback and restart must
//!   complete, so fallible paths return `Result` and provably-infallible
//!   cases are individually justified in `lint.allow`.
//! * [`lint_crash_points`] — `crash_point!` names are globally unique
//!   (duplicates alias in torture enumeration) and, given a reached-points
//!   list from `torture --list-points`, every registered point is actually
//!   reached.
//! * [`lint_wal_coverage`] — every WAL body variant is dispatched in both
//!   redo and undo (an unhandled variant is silent data loss at restart).
//! * [`lint_metric_names`] — every literal metric name passed to the
//!   `MetricsRegistry` is globally unique, snake_case, and referenced at
//!   least once outside its registration file (a metric nobody reads or
//!   documents is dead weight in every exposition; dynamically-built names
//!   are covered by the registry's own registration-time panics).
//!
//! * [`lint_ordering_census`] — every atomic memory-ordering argument
//!   (`Ordering::Relaxed` … `Ordering::SeqCst`) in the engine crates carries
//!   a `// ordering: <why>` justification; a bare ordering — above all a bare
//!   `Relaxed` on a cross-thread value — is a finding. The annotated sites
//!   form a census the model checker's harnesses are audited against.
//!
//! The allowlist (`lint.allow` at the repo root) is keyed by path, lint id
//! and a content fingerprint of the flagged line ([`fp8`]) — *not* by line
//! number, so entries survive unrelated edits but go stale the moment the
//! flagged line itself changes. Stale entries are themselves findings, so
//! the list can only shrink or move with the code it annotates.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lockdep;

/// One lint finding, anchored at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number (advisory: the allowlist keys on `fp`, not this).
    pub line: usize,
    /// Stable lint identifier (part of the allowlist key).
    pub lint: &'static str,
    /// Content fingerprint of the flagged line ([`fp8`]); empty for synthetic
    /// findings with no source line (lockdep dumps, allowlist diagnostics).
    pub fp: String,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.msg
        )?;
        if !self.fp.is_empty() {
            write!(f, " (fp {})", self.fp)?;
        }
        Ok(())
    }
}

fn finding(file: &str, line: usize, lint: &'static str, msg: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        lint,
        fp: String::new(),
        msg,
    }
}

/// Content fingerprint used to key allowlist entries: FNV-1a 64 of the
/// *trimmed* flagged line, xor-folded to 32 bits, printed as 8 hex digits.
/// Keying on content instead of line numbers means entries survive edits
/// elsewhere in the file, and one entry covers every identical flagged line
/// (e.g. the same `.expect(...)` idiom repeated across guard impls).
pub fn fp8(line_text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in line_text.trim().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{:08x}", (h ^ (h >> 32)) as u32)
}

// ---------------------------------------------------------------------------
// Shared scanning helpers
// ---------------------------------------------------------------------------

/// Strip a trailing `// ...` comment, honouring nothing fancier than "the
/// comment marker is not inside a string literal with an even number of
/// quotes before it" — sufficient for rustfmt'd code in this repo.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) if line[..i].matches('"').count().is_multiple_of(2) => &line[..i],
        _ => line,
    }
}

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#!") || t.starts_with("#[")
}

fn is_fn_def_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("fn ")
        || t.starts_with("pub fn ")
        || t.starts_with("pub(crate) fn ")
        || t.starts_with("pub(super) fn ")
        || t.starts_with("async fn ")
        || t.starts_with("unsafe fn ")
}

/// Byte index where the trailing `#[cfg(test)] mod …` block begins, if any.
/// The repo convention is a single test module at the end of a file.
fn test_module_start(lines: &[&str]) -> usize {
    for (i, l) in lines.iter().enumerate() {
        if l.trim() == "#[cfg(test)]" {
            return i;
        }
    }
    lines.len()
}

fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Positions of `needle` in `hay` where the preceding character is not an
/// identifier character (so `tree_s(` does not match inside `try_tree_s(`).
fn bounded_matches(hay: &str, needle: &str) -> Vec<usize> {
    // The boundary check only applies when the needle itself starts with an
    // identifier character (`tree_s(`); needles led by `.` are self-bounding.
    let check_before = needle.chars().next().is_some_and(ident_char);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let ok = !check_before
            || at == 0
            || !ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        if ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Whole-word occurrences of `ident`, with the characters immediately before
/// and after each occurrence (for borrow/move classification).
fn word_occurrences(hay: &str, ident: &str) -> Vec<(usize, Option<char>, Option<char>)> {
    let mut out = Vec::new();
    for at in bounded_matches(hay, ident) {
        let after = hay[at + ident.len()..].chars().next();
        if let Some(c) = after {
            if ident_char(c) {
                continue;
            }
        }
        let before = hay[..at].chars().next_back();
        out.push((at, before, after));
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 1: latch census + rank ordering
// ---------------------------------------------------------------------------

/// Latch class a needle acquires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchClass {
    Tree,
    Page,
}

impl LatchClass {
    pub fn rank(self) -> u32 {
        match self {
            LatchClass::Tree => 1,
            LatchClass::Page => 2,
        }
    }
}

/// Acquisition needles, longest first so prefixed forms win. The bool is
/// whether the call is conditional (a try — never blocks) by its own nature.
const LATCH_NEEDLES: &[(&str, LatchClass, bool)] = &[
    ("hold_tree_latch_x(", LatchClass::Tree, false),
    ("tree_instant_s(", LatchClass::Tree, false),
    (".try_fix_s(", LatchClass::Page, true),
    (".try_fix_x(", LatchClass::Page, true),
    ("try_tree_s(", LatchClass::Tree, true),
    (".latch_s(", LatchClass::Page, false),
    (".latch_x(", LatchClass::Page, false),
    (".fix_s(", LatchClass::Page, false),
    (".fix_x(", LatchClass::Page, false),
    ("tree_s(", LatchClass::Tree, false),
    ("tree_x(", LatchClass::Tree, false),
];

/// Annotation qualifier parsed from `// latch-rank: N [(qualifier)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankQualifier {
    /// Plain site: rank must be ≥ the current watermark.
    None,
    /// Try-site: exempt from the ordering check (denial never blocks).
    Conditional,
    /// All latches are provably released here; resets the watermark.
    Fresh,
}

/// One annotated latch-acquisition site.
#[derive(Debug, Clone)]
pub struct CensusSite {
    pub file: String,
    pub line: usize,
    pub needle: &'static str,
    pub class: LatchClass,
    pub rank: u32,
    pub qualifier: RankQualifier,
}

fn parse_rank_annotation(line: &str) -> Option<(u32, RankQualifier)> {
    let at = line.find("// latch-rank:")?;
    let rest = line[at + "// latch-rank:".len()..].trim();
    let mut it = rest.splitn(2, char::is_whitespace);
    let rank: u32 = it.next()?.parse().ok()?;
    let qual = match it.next().map(str::trim) {
        Some("(conditional)") => RankQualifier::Conditional,
        Some("(fresh)") => RankQualifier::Fresh,
        Some("") | None => RankQualifier::None,
        Some(_) => return None, // unknown qualifier: treat as unannotated
    };
    Some((rank, qual))
}

/// Scan one file for latch-acquisition sites: every site must carry a
/// `// latch-rank` annotation with the right rank for its class, and ranks
/// must be non-decreasing through each function.
pub fn lint_latch_census(file: &str, content: &str) -> (Vec<CensusSite>, Vec<Finding>) {
    let lines: Vec<&str> = content.lines().collect();
    let end = test_module_start(&lines);
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    // Watermark of the last rank acquired in the current function.
    let mut watermark = 0u32;
    for (i, raw) in lines[..end].iter().enumerate() {
        let lineno = i + 1;
        if is_comment_line(raw) {
            continue;
        }
        if is_fn_def_line(raw) {
            watermark = 0;
            continue;
        }
        let code = code_part(raw);
        let mut hits: Vec<(usize, &'static str, LatchClass, bool)> = Vec::new();
        for &(needle, class, cond) in LATCH_NEEDLES {
            for at in bounded_matches(code, needle) {
                // A longer needle may already cover this span.
                if !hits
                    .iter()
                    .any(|&(a, n, _, _)| at >= a && at < a + n.len())
                {
                    hits.push((at, needle, class, cond));
                }
            }
        }
        if hits.is_empty() {
            continue;
        }
        hits.sort_by_key(|h| h.0);
        let annotation = parse_rank_annotation(raw);
        for (_, needle, class, inherently_cond) in hits {
            let Some((rank, qual)) = annotation else {
                findings.push(finding(
                    file,
                    lineno,
                    "latch-annotation",
                    format!("latch acquisition `{needle}..)` lacks a `// latch-rank: N` annotation"),
                ));
                continue;
            };
            if rank != class.rank() {
                findings.push(finding(
                    file,
                    lineno,
                    "latch-annotation",
                    format!(
                        "`{needle}..)` is a {} latch (rank {}) but is annotated rank {rank}",
                        match class {
                            LatchClass::Tree => "tree",
                            LatchClass::Page => "page",
                        },
                        class.rank()
                    ),
                ));
            }
            if inherently_cond && qual != RankQualifier::Conditional {
                findings.push(finding(
                    file,
                    lineno,
                    "latch-annotation",
                    format!("try-site `{needle}..)` must be annotated `(conditional)`"),
                ));
            }
            match qual {
                RankQualifier::Conditional => {
                    // Exempt from ordering; does not move the watermark.
                }
                RankQualifier::Fresh => {
                    watermark = rank;
                }
                RankQualifier::None => {
                    if rank < watermark {
                        findings.push(finding(
                            file,
                            lineno,
                            "latch-rank-order",
                            format!(
                                "rank {rank} acquired while watermark is {watermark}: \
                                 annotate `(fresh)` if all latches are provably released, \
                                 or fix the acquisition order"
                            ),
                        ));
                    }
                    watermark = watermark.max(rank);
                }
            }
            sites.push(CensusSite {
                file: file.to_string(),
                line: lineno,
                needle,
                class,
                rank,
                qualifier: qual,
            });
        }
    }
    (sites, findings)
}

// ---------------------------------------------------------------------------
// Lint 2: no blocking lock wait under a latch (lexical tracker)
// ---------------------------------------------------------------------------

/// Needles whose *result binding* is treated as a live latch guard. The
/// census needles, plus the two helpers that return latched guards.
const GUARD_NEEDLES: &[&str] = &[
    "hold_tree_latch_x(",
    "tree_instant_s(", // instant: releases before returning — excluded below
    ".try_fix_s(",
    ".try_fix_x(",
    "try_tree_s(",
    ".latch_s(",
    ".latch_x(",
    ".fix_s(",
    ".fix_x(",
    "tree_s(",
    "tree_x(",
    ".traverse(",
    ".next_key_after(",
];

fn statement_acquires_guard(stmt: &str) -> bool {
    GUARD_NEEDLES.iter().any(|n| {
        // tree_instant_s releases internally: not a guard-producing call.
        *n != "tree_instant_s(" && !bounded_matches(stmt, n).is_empty()
    })
}

/// Pattern idents bound by a `let` statement head (`let PAT = ...`).
fn let_pattern_idents(stmt: &str) -> Vec<String> {
    let Some(after_let) = stmt.trim_start().strip_prefix("let ") else {
        return Vec::new();
    };
    // Pattern text: up to the first top-level `=` (not `==`, `=>`, `<=`...).
    let bytes = after_let.as_bytes();
    let mut depth = 0usize;
    let mut pat_end = after_let.len();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth = depth.saturating_sub(1),
            b'=' if depth == 0 => {
                let prev = if i > 0 { bytes[i - 1] } else { b' ' };
                let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                if prev != b'=' && prev != b'!' && prev != b'<' && prev != b'>' && next != b'='
                {
                    pat_end = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let mut pat = &after_let[..pat_end];
    // Drop a type annotation: `x: Foo` / `(a, b): (X, Y)`.
    if let Some(colon) = top_level_colon(pat) {
        pat = &pat[..colon];
    }
    let mut out = Vec::new();
    for chunk in pat.split([',', '(', ')', '|']) {
        let id = chunk.trim().trim_start_matches("mut ").trim();
        if !id.is_empty()
            && id != "_"
            && id.chars().all(ident_char)
            && !id.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            out.push(id.to_string());
        }
    }
    out
}

fn top_level_colon(pat: &str) -> Option<usize> {
    let bytes = pat.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth = depth.saturating_sub(1),
            b':' if depth == 0 && bytes.get(i + 1) != Some(&b':') && (i == 0 || bytes[i - 1] != b':') => {
                return Some(i)
            }
            _ => {}
        }
    }
    None
}

/// Is the final argument of the last `.request(` call in `stmt` the literal
/// `false` (an unconditional — blocking — lock request)?
fn blocking_request_in(stmt: &str) -> bool {
    let Some(at) = stmt.rfind(".request(") else {
        return false;
    };
    let args_start = at + ".request(".len();
    let bytes = stmt.as_bytes();
    let mut depth = 1usize;
    let mut seg_start = args_start;
    let mut end = stmt.len();
    let mut segs: Vec<&str> = Vec::new();
    let mut i = args_start;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            b',' if depth == 1 => {
                segs.push(&stmt[seg_start..i]);
                seg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    segs.push(&stmt[seg_start..end]);
    // A trailing comma leaves an empty final segment; skip it.
    segs.iter()
        .rev()
        .map(|s| s.trim())
        .find(|s| !s.is_empty())
        == Some("false")
}

/// Conservative lexical check that no blocking lock-manager request happens
/// while a tracked latch guard is live.
///
/// Tracks only guards bound by `let` in the same function (parameters and
/// struct fields are out of scope — the runtime lockdep graph covers those).
/// A guard is released by `drop(g)`, `g.take()`, a bare-ident move, or the
/// end of the function.
pub fn lint_no_wait_under_latch(file: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let end = test_module_start(&lines);
    let mut findings = Vec::new();
    let mut held: Vec<String> = Vec::new();
    // Statement accumulator: (text, first line, net bracket depth).
    let mut stmt = String::new();
    let mut stmt_line = 0usize;
    let mut stmt_depth = 0i64;

    let process =
        |stmt: &str, line: usize, held: &mut Vec<String>, findings: &mut Vec<Finding>| {
            // 1. Releases first: a move into the statement ends the guard's
            //    life before any call in it can block.
            held.retain(|g| {
                let mut released = false;
                for (at, before, after) in word_occurrences(stmt, g) {
                    let is_drop = stmt[..at].trim_end().ends_with("drop(");
                    let is_take = stmt[at..].starts_with(&format!("{g}.take()"));
                    let is_borrow = after == Some('.') || before == Some('&');
                    if is_drop || is_take || !is_borrow {
                        released = true;
                        break;
                    }
                }
                !released
            });
            // 2. Blocking request while something is held?
            if blocking_request_in(stmt) && !held.is_empty() {
                findings.push(finding(
                    file,
                    line,
                    "no-wait-under-latch",
                    format!(
                        "unconditional lock request while latch guard(s) {:?} are live \
                         (§4: release every latch before waiting)",
                        held
                    ),
                ));
            }
            // 3. New bindings. A single-ident `let` from a guard-producing
            //    call binds the guard itself; in a destructuring pattern the
            //    guard is the component whose name says so (`g`, `*guard*`) —
            //    the other components are keys/flags extracted alongside it.
            if stmt.trim_start().starts_with("let ") && statement_acquires_guard(stmt) {
                let ids = let_pattern_idents(stmt);
                let multi = ids.len() > 1;
                for id in ids {
                    if multi && !(id.contains("guard") || id.trim_start_matches('_') == "g") {
                        continue;
                    }
                    if !held.contains(&id) {
                        held.push(id);
                    }
                }
            }
        };

    for (i, raw) in lines[..end].iter().enumerate() {
        let lineno = i + 1;
        if is_comment_line(raw) {
            continue;
        }
        if is_fn_def_line(raw) {
            held.clear();
            stmt.clear();
            stmt_depth = 0;
        }
        let code = code_part(raw);
        if stmt.is_empty() {
            stmt_line = lineno;
        }
        stmt.push_str(code);
        stmt.push(' ');
        for c in code.chars() {
            match c {
                '(' | '[' | '{' => stmt_depth += 1,
                ')' | ']' | '}' => stmt_depth -= 1,
                _ => {}
            }
        }
        let trimmed = code.trim_end();
        // A statement completes when brackets balance and it ends with `;`,
        // or when a block opens (`{`): the accumulated head is processed and
        // the block's interior continues statement-by-statement.
        let complete = (stmt_depth <= 0 && (trimmed.ends_with(';') || trimmed.ends_with('}')))
            || trimmed.ends_with('{');
        if complete {
            process(&stmt, stmt_line, &mut held, &mut findings);
            stmt.clear();
            stmt_depth = 0;
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Lint 3: panic audit
// ---------------------------------------------------------------------------

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Flag `unwrap`/`expect`/`panic!`-family tokens outside `#[cfg(test)]`.
pub fn lint_no_panic(file: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let end = test_module_start(&lines);
    let mut findings = Vec::new();
    for (i, raw) in lines[..end].iter().enumerate() {
        if is_comment_line(raw) {
            continue;
        }
        let code = code_part(raw);
        for tok in PANIC_TOKENS {
            if code.contains(tok) {
                findings.push(finding(
                    file,
                    i + 1,
                    "no-panic",
                    format!(
                        "`{}` on an engine path: return an Error (or justify in lint.allow)",
                        tok.trim_start_matches('.')
                    ),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Lint 3b: atomics-ordering census
// ---------------------------------------------------------------------------

/// The five atomic memory-ordering variants (`std::sync::atomic::Ordering`
/// and the model-aware `msync` facade alike). `cmp::Ordering`'s variants
/// (`Less`/`Equal`/`Greater`) never collide with these, so a plain token
/// scan cannot misfire on comparator code.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// One justified atomic-ordering site (census entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingSite {
    pub file: String,
    pub line: usize,
    /// Ordering variant names used on the line (`Relaxed`, `Acquire`, …).
    pub ops: Vec<String>,
}

/// Census of atomic memory-ordering arguments: every site outside
/// `#[cfg(test)]` must justify its choice with `// ordering: <why>` on the
/// same line or in the comment block directly above. Annotated sites are
/// returned as the census; unannotated ones are findings — a bare `Relaxed`
/// on a value another thread observes is exactly the class of bug the model
/// checker exists to catch, and the written justification is what a
/// reviewer (or a checker-harness author) audits against the protocol.
pub fn lint_ordering_census(file: &str, content: &str) -> (Vec<OrderingSite>, Vec<Finding>) {
    let lines: Vec<&str> = content.lines().collect();
    let end = test_module_start(&lines);
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for (i, raw) in lines[..end].iter().enumerate() {
        if is_comment_line(raw) {
            continue;
        }
        let code = code_part(raw);
        let ops: Vec<String> = ATOMIC_ORDERINGS
            .iter()
            .filter(|t| code.contains(*t))
            .map(|t| t.trim_start_matches("Ordering::").to_string())
            .collect();
        if ops.is_empty() {
            continue;
        }
        let trailing = raw.contains("// ordering:");
        // Accept the justification anywhere in the contiguous `//` comment
        // block directly above (annotations often wrap onto several lines).
        let preceding = lines[..i]
            .iter()
            .rev()
            .take_while(|l| l.trim_start().starts_with("//"))
            .any(|l| l.contains("ordering:"));
        if trailing || preceding {
            sites.push(OrderingSite {
                file: file.to_string(),
                line: i + 1,
                ops,
            });
        } else {
            let relaxed = if ops.iter().any(|o| o == "Relaxed") {
                " — for Relaxed, say why no other thread's correctness \
                 depends on observing this value in order"
            } else {
                ""
            };
            findings.push(finding(
                file,
                i + 1,
                "ordering-annotation",
                format!(
                    "unannotated atomic ordering ({}): add `// ordering: <why>` \
                     on this line or the comment directly above{relaxed}",
                    ops.join(", "),
                ),
            ));
        }
    }
    (sites, findings)
}

/// Per-file ordering-census table for EXPERIMENTS.md and `--census`.
pub fn ordering_table(sites: &[OrderingSite]) -> String {
    let mut per_file: Vec<(String, [usize; 5])> = Vec::new();
    for s in sites {
        let entry = match per_file.iter_mut().find(|e| e.0 == s.file) {
            Some(e) => e,
            None => {
                per_file.push((s.file.clone(), [0; 5]));
                per_file.last_mut().expect("just pushed")
            }
        };
        for op in &s.ops {
            let idx = match op.as_str() {
                "Relaxed" => 0,
                "Acquire" => 1,
                "Release" => 2,
                "AcqRel" => 3,
                _ => 4,
            };
            entry.1[idx] += 1;
        }
    }
    per_file.sort();
    let mut out = String::new();
    out.push_str("| file | Relaxed | Acquire | Release | AcqRel | SeqCst |\n");
    out.push_str("|------|--------:|--------:|--------:|-------:|-------:|\n");
    let mut tot = [0usize; 5];
    for (file, n) in &per_file {
        out.push_str(&format!(
            "| {file} | {} | {} | {} | {} | {} |\n",
            n[0], n[1], n[2], n[3], n[4]
        ));
        for (t, v) in tot.iter_mut().zip(n) {
            *t += v;
        }
    }
    out.push_str(&format!(
        "| **total** | **{}** | **{}** | **{}** | **{}** | **{}** |\n",
        tot[0], tot[1], tot[2], tot[3], tot[4]
    ));
    out
}

// ---------------------------------------------------------------------------
// Lint 4: crash-point registry
// ---------------------------------------------------------------------------

/// `crash_point!("name")` sites found in the source tree.
#[derive(Debug, Clone)]
pub struct CrashPointSite {
    pub name: String,
    pub file: String,
    pub line: usize,
}

pub fn find_crash_points(file: &str, content: &str) -> Vec<CrashPointSite> {
    let lines: Vec<&str> = content.lines().collect();
    let end = test_module_start(&lines);
    let mut out = Vec::new();
    for (i, raw) in lines[..end].iter().enumerate() {
        if is_comment_line(raw) {
            continue;
        }
        let code = code_part(raw);
        let mut from = 0;
        while let Some(rel) = code[from..].find("crash_point!(\"") {
            let at = from + rel + "crash_point!(\"".len();
            let Some(close) = code[at..].find('"') else {
                break;
            };
            out.push(CrashPointSite {
                name: code[at..at + close].to_string(),
                file: file.to_string(),
                line: i + 1,
            });
            from = at + close;
        }
    }
    out
}

/// Registry audit: duplicate names are findings; with a reached-points list
/// (from `torture --list-points`), unreached registrations are too.
pub fn lint_crash_points(sites: &[CrashPointSite], reached: Option<&[String]>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut first: HashMap<&str, &CrashPointSite> = HashMap::new();
    for s in sites {
        match first.get(s.name.as_str()) {
            Some(prev) => findings.push(finding(
                &s.file,
                s.line,
                "crash-point-dup",
                format!(
                    "crash point {:?} already registered at {}:{}",
                    s.name, prev.file, prev.line
                ),
            )),
            None => {
                first.insert(&s.name, s);
            }
        }
    }
    if let Some(reached) = reached {
        for s in first.values() {
            if !reached.iter().any(|r| r == &s.name) {
                findings.push(finding(
                    &s.file,
                    s.line,
                    "crash-point-unreached",
                    format!(
                        "crash point {:?} is never reached by the torture workload",
                        s.name
                    ),
                ));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

// ---------------------------------------------------------------------------
// Lint 5: WAL-record coverage
// ---------------------------------------------------------------------------

/// Variant names of `enum <name>` in `content` (brace- and tuple-style).
pub fn enum_variants(content: &str, name: &str) -> Vec<String> {
    let Some(at) = content.find(&format!("enum {name} {{")) else {
        return Vec::new();
    };
    let body_start = at + content[at..].find('{').unwrap_or(0) + 1;
    let bytes = content.as_bytes();
    let mut depth = 1usize;
    let mut end = content.len();
    for (i, &b) in bytes[body_start..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    let mut vdepth = 0usize;
    for line in content[body_start..end].lines() {
        let t = line.trim();
        if vdepth == 0
            && !t.is_empty()
            && !t.starts_with("//")
            && !t.starts_with('#')
            && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            let ident: String = t.chars().take_while(|&c| ident_char(c)).collect();
            if !ident.is_empty() {
                out.push(ident);
            }
        }
        for c in t.chars() {
            match c {
                '{' | '(' => vdepth += 1,
                '}' | ')' => vdepth = vdepth.saturating_sub(1),
                _ => {}
            }
        }
    }
    out
}

/// Text of `fn <name>` (body included) in `content`.
fn fn_text<'a>(content: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("fn {name}(");
    let at = content.find(&pat)?;
    let open = at + content[at..].find('{')?;
    let bytes = content.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&content[at..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every `IndexBody`, `HeapBody` and `RecordKind` variant must be dispatched
/// on its redo *and* undo path.
pub fn lint_wal_coverage(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let checks: &[(&str, &str, &str, &[&str])] = &[
        (
            "crates/btree/src/body.rs",
            "IndexBody",
            "crates/btree/src/apply.rs",
            &["apply_body", "undo_body"],
        ),
        (
            "crates/record/src/body.rs",
            "HeapBody",
            "crates/record/src/heap.rs",
            &["redo", "undo"],
        ),
        (
            "crates/wal/src/record.rs",
            "RecordKind",
            "crates/recovery/src/restart.rs",
            &["restart"],
        ),
    ];
    for &(enum_file, enum_name, dispatch_file, fns) in checks {
        let enum_src = fs::read_to_string(root.join(enum_file))?;
        let dispatch_src = fs::read_to_string(root.join(dispatch_file))?;
        let variants = enum_variants(&enum_src, enum_name);
        if variants.is_empty() {
            findings.push(finding(
                enum_file,
                1,
                "wal-coverage",
                format!("could not parse variants of enum {enum_name}"),
            ));
            continue;
        }
        for f in fns {
            let Some(body) = fn_text(&dispatch_src, f) else {
                findings.push(finding(
                    dispatch_file,
                    1,
                    "wal-coverage",
                    format!("dispatch fn `{f}` not found"),
                ));
                continue;
            };
            for v in &variants {
                let qualified = format!("{enum_name}::{v}");
                if !body.contains(&qualified) {
                    findings.push(finding(
                        dispatch_file,
                        1,
                        "wal-coverage",
                        format!("`{qualified}` is not dispatched in fn `{f}`"),
                    ));
                }
            }
        }
    }
    Ok(findings)
}

// ---------------------------------------------------------------------------
// Lint 6: metric-name audit
// ---------------------------------------------------------------------------

/// One literal metric registration, e.g. `reg.register_gauge("repl_lag_bytes", ...)`.
#[derive(Debug, Clone)]
pub struct MetricSite {
    pub name: String,
    pub file: String,
    pub line: usize,
}

const METRIC_NEEDLES: &[&str] = &[
    "register_counter(",
    "register_gauge(",
    "register_histogram(",
];

/// The registry's naming rule, `[a-z][a-z0-9_]*` (mirrors
/// `ariesim_obs::registry::is_snake_case` — this crate is dependency-free,
/// so the three-line rule is restated rather than imported).
fn metric_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some('a'..='z'))
        && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
}

/// Literal-name registration sites in one file. Definition lines
/// (`pub fn register_counter(...)`) and `#[cfg(test)]` modules are skipped;
/// a non-literal first argument means the name is built dynamically and is
/// audited by the registry's registration-time panics instead.
pub fn find_metric_sites(file: &str, content: &str) -> Vec<MetricSite> {
    let lines: Vec<&str> = content.lines().collect();
    let end_line = test_module_start(&lines);
    let end_byte = lines[..end_line]
        .iter()
        .map(|l| l.len() + 1)
        .sum::<usize>()
        .min(content.len());
    let hay = &content[..end_byte];
    let mut out = Vec::new();
    for needle in METRIC_NEEDLES {
        for at in bounded_matches(hay, needle) {
            if hay[..at].trim_end().ends_with("fn") {
                continue; // the registry's own method definition
            }
            let line_idx = hay[..at].matches('\n').count();
            let line_start = hay[..at].rfind('\n').map_or(0, |i| i + 1);
            let col = at - line_start;
            let line_text = lines[line_idx];
            if is_comment_line(line_text) || col >= code_part(line_text).len() {
                continue; // needle sits in a comment
            }
            if line_text[..col.min(line_text.len())].matches('"').count() % 2 == 1 {
                continue; // needle sits inside a string literal
            }
            // The literal may start on this line or (rustfmt'd multi-arg
            // call) on the next: whitespace-skip across newlines finds it.
            let rest = hay[at + needle.len()..].trim_start();
            let Some(lit) = rest.strip_prefix('"') else {
                continue; // dynamic name
            };
            let Some(close) = lit.find('"') else { continue };
            out.push(MetricSite {
                name: lit[..close].to_string(),
                file: file.to_string(),
                line: line_idx + 1,
            });
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

/// Audit the collected sites against the whole workspace: names must be
/// snake_case, globally unique, and referenced (whole-word) in at least one
/// file other than the one registering them — engine code reading the
/// metric, a test asserting on it, or the README metrics table documenting
/// it all count.
pub fn lint_metric_names(
    sites: &[MetricSite],
    corpus: &[(String, String)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut first: HashMap<&str, &MetricSite> = HashMap::new();
    for s in sites {
        if !metric_snake_case(&s.name) {
            findings.push(finding(
                &s.file,
                s.line,
                "metric-name",
                format!("metric name {:?} is not snake_case ([a-z][a-z0-9_]*)", s.name),
            ));
        }
        match first.get(s.name.as_str()) {
            Some(prev) => findings.push(finding(
                &s.file,
                s.line,
                "metric-name-dup",
                format!(
                    "metric {:?} already registered at {}:{}",
                    s.name, prev.file, prev.line
                ),
            )),
            None => {
                first.insert(&s.name, s);
            }
        }
    }
    for s in first.values() {
        let referenced = corpus
            .iter()
            .any(|(f, text)| *f != s.file && !word_occurrences(text, &s.name).is_empty());
        if !referenced {
            findings.push(finding(
                &s.file,
                s.line,
                "metric-unreferenced",
                format!(
                    "metric {:?} is never referenced outside {}: read it somewhere \
                     or document it in the README metrics table",
                    s.name, s.file
                ),
            ));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    findings
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// Maximum committed allowlist size: the point of the suite is burning the
/// list down, not growing it.
pub const ALLOWLIST_MAX: usize = 15;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub lint: String,
    /// Content fingerprint of the allowed line (see [`fp8`]).
    pub fp: String,
    /// 1-based line in lint.allow (for stale-entry findings).
    pub at: usize,
}

/// Parse `lint.allow`: `<path> <lint-id> <fp8> — <justification>` per line;
/// `#` comments and blanks ignored. The fingerprint is the 8-hex-digit
/// [`fp8`] of the flagged line, printed by every finding; line numbers are
/// deliberately not part of the key.
pub fn parse_allowlist(content: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let at = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let file = parts.next().unwrap_or("");
        let lint = parts.next().unwrap_or("");
        let fp = parts.next().unwrap_or("");
        let justification: Vec<&str> = parts.collect();
        let fp_ok = fp.len() == 8 && fp.bytes().all(|b| b.is_ascii_hexdigit());
        if file.contains('/') && !lint.is_empty() && fp_ok && !justification.is_empty() {
            entries.push(AllowEntry {
                file: file.to_string(),
                lint: lint.to_string(),
                fp: fp.to_string(),
                at,
            });
        } else {
            findings.push(finding(
                "lint.allow",
                at,
                "allow-format",
                "expected `<path> <lint-id> <fp8> — <justification>` \
                 (fp8 is the 8-hex fingerprint each finding prints)"
                    .to_string(),
            ));
        }
    }
    if entries.len() > ALLOWLIST_MAX {
        findings.push(finding(
            "lint.allow",
            1,
            "allow-overflow",
            format!(
                "{} entries exceed the budget of {ALLOWLIST_MAX}: burn findings down instead",
                entries.len()
            ),
        ));
    }
    (entries, findings)
}

/// Remove allowlisted findings; stale entries (matching nothing) become
/// findings themselves. An entry matches on (file, lint, fingerprint), so a
/// single entry covers every finding of that lint on an identical line in
/// the file — repeated idioms need one justification, not one per copy.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[AllowEntry]) -> Vec<Finding> {
    let mut used = vec![false; allow.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        let hit = (!f.fp.is_empty())
            .then(|| {
                allow
                    .iter()
                    .position(|a| a.file == f.file && a.lint == f.lint && a.fp == f.fp)
            })
            .flatten();
        match hit {
            Some(i) => used[i] = true,
            None => out.push(f),
        }
    }
    for (i, a) in allow.iter().enumerate() {
        if !used[i] {
            out.push(finding(
                "lint.allow",
                a.at,
                "allow-stale",
                format!(
                    "entry `{} {} {}` matches no current finding: remove it",
                    a.file, a.lint, a.fp
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Crates subject to the latch census and the no-wait lint.
pub const LATCH_CRATES: &[&str] = &["btree", "record", "txn", "recovery", "repl"];

/// Crates subject to the panic audit.
pub const ENGINE_CRATES: &[&str] = &[
    "common", "storage", "wal", "btree", "record", "txn", "recovery", "lock", "repl",
];

/// Crates subject to the atomics-ordering census: the engine crates plus the
/// model checker (whose harnesses are themselves concurrency protocols).
pub const ORDERING_CRATES: &[&str] = &[
    "common", "storage", "wal", "btree", "record", "txn", "recovery", "lock", "repl", "model",
];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Everything the source pass produces: raw findings plus the census.
pub struct SourceReport {
    pub findings: Vec<Finding>,
    pub census: Vec<CensusSite>,
    pub crash_points: Vec<CrashPointSite>,
    pub metric_sites: Vec<MetricSite>,
    pub ordering_sites: Vec<OrderingSite>,
}

/// Run every source lint over the workspace at `root` (without applying the
/// allowlist — see [`apply_allowlist`]).
pub fn run_source_lints(root: &Path, reached: Option<&[String]>) -> io::Result<SourceReport> {
    let mut findings = Vec::new();
    let mut census = Vec::new();
    let mut crash_points = Vec::new();
    let mut metric_sites = Vec::new();
    let mut ordering_sites = Vec::new();

    for krate in LATCH_CRATES {
        let mut files = Vec::new();
        rust_files(&root.join("crates").join(krate).join("src"), &mut files)?;
        for p in &files {
            let content = fs::read_to_string(p)?;
            let name = rel(root, p);
            let (sites, f) = lint_latch_census(&name, &content);
            census.extend(sites);
            findings.extend(f);
            findings.extend(lint_no_wait_under_latch(&name, &content));
        }
    }
    for krate in ENGINE_CRATES {
        let mut files = Vec::new();
        rust_files(&root.join("crates").join(krate).join("src"), &mut files)?;
        for p in &files {
            let content = fs::read_to_string(p)?;
            let name = rel(root, p);
            findings.extend(lint_no_panic(&name, &content));
        }
    }
    for krate in ORDERING_CRATES {
        let mut files = Vec::new();
        rust_files(&root.join("crates").join(krate).join("src"), &mut files)?;
        for p in &files {
            let content = fs::read_to_string(p)?;
            let name = rel(root, p);
            let (sites, f) = lint_ordering_census(&name, &content);
            ordering_sites.extend(sites);
            findings.extend(f);
        }
    }
    // Crash points and metric registrations live anywhere in the
    // workspace's crates; metric *references* may additionally come from
    // the workspace-level tests and the root markdown docs.
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.exists() {
        let mut dirs: Vec<_> = fs::read_dir(&crates_dir)?.collect::<io::Result<_>>()?;
        dirs.sort_by_key(|e| e.path());
        for e in dirs {
            rust_files(&e.path().join("src"), &mut files)?;
        }
    }
    let mut corpus: Vec<(String, String)> = Vec::new();
    for p in &files {
        let content = fs::read_to_string(p)?;
        let name = rel(root, p);
        crash_points.extend(find_crash_points(&name, &content));
        metric_sites.extend(find_metric_sites(&name, &content));
        corpus.push((name, content));
    }
    let mut extra = Vec::new();
    rust_files(&root.join("tests"), &mut extra)?;
    for p in &extra {
        corpus.push((rel(root, p), fs::read_to_string(p)?));
    }
    if let Ok(entries) = fs::read_dir(root) {
        let mut mds: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        mds.sort();
        for p in &mds {
            corpus.push((rel(root, p), fs::read_to_string(p)?));
        }
    }
    findings.extend(lint_crash_points(&crash_points, reached));
    findings.extend(lint_metric_names(&metric_sites, &corpus));
    findings.extend(lint_wal_coverage(root)?);
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    // Stamp each finding with the content fingerprint of its flagged line —
    // the key the allowlist matches on. The corpus holds every file any
    // source lint can flag; anything outside it keeps an empty (unmatched)
    // fingerprint.
    let by_file: HashMap<&str, &str> =
        corpus.iter().map(|(n, c)| (n.as_str(), c.as_str())).collect();
    for f in &mut findings {
        if let Some(text) = by_file.get(f.file.as_str()) {
            if let Some(line) = f.line.checked_sub(1).and_then(|i| text.lines().nth(i)) {
                f.fp = fp8(line);
            }
        }
    }
    Ok(SourceReport {
        findings,
        census,
        crash_points,
        metric_sites,
        ordering_sites,
    })
}

/// Census table (per file, per class) for EXPERIMENTS.md and `--census`.
pub fn census_table(census: &[CensusSite]) -> String {
    let mut per_file: Vec<(String, usize, usize, usize)> = Vec::new(); // file, tree, page, conditional
    for s in census {
        let entry = match per_file.iter_mut().find(|e| e.0 == s.file) {
            Some(e) => e,
            None => {
                per_file.push((s.file.clone(), 0, 0, 0));
                per_file.last_mut().expect("just pushed")
            }
        };
        match s.class {
            LatchClass::Tree => entry.1 += 1,
            LatchClass::Page => entry.2 += 1,
        }
        if s.qualifier == RankQualifier::Conditional {
            entry.3 += 1;
        }
    }
    per_file.sort();
    let mut out = String::new();
    out.push_str("| file | tree-latch sites | page-latch sites | conditional |\n");
    out.push_str("|------|-----------------:|-----------------:|------------:|\n");
    let (mut t, mut p, mut c) = (0, 0, 0);
    for (file, tree, page, cond) in &per_file {
        out.push_str(&format!("| {file} | {tree} | {page} | {cond} |\n"));
        t += tree;
        p += page;
        c += cond;
    }
    out.push_str(&format!("| **total** | **{t}** | **{p}** | **{c}** |\n"));
    out
}
