//! One fixture per lint, asserting the exact `file:line` each lint reports,
//! plus a self-run over the real workspace that must come back clean (this is
//! the same gate CI runs via `cargo run -p analyze --bin arieslint`).

use analyze::{
    apply_allowlist, find_crash_points, find_metric_sites, lint_crash_points, lint_latch_census,
    lint_metric_names, lint_no_panic, lint_no_wait_under_latch, lint_ordering_census,
    lint_wal_coverage, lockdep, parse_allowlist, run_source_lints, Finding, ALLOWLIST_MAX,
};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn at(findings: &[Finding], lint: &str) -> Vec<(String, usize)> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

#[test]
fn census_flags_unannotated_and_misordered_sites() {
    let (sites, findings) = lint_latch_census("census.rs", &fixture("census.rs"));
    assert_eq!(
        at(&findings, "latch-annotation"),
        vec![("census.rs".to_string(), 4)]
    );
    assert_eq!(
        at(&findings, "latch-rank-order"),
        vec![("census.rs".to_string(), 8)]
    );
    // 5 annotated sites enter the census (the unannotated one on line 4 is a
    // finding, not a census entry); the conditional one is recorded as such.
    assert_eq!(sites.len(), 5);
    assert_eq!(
        sites
            .iter()
            .filter(|s| s.qualifier == analyze::RankQualifier::Conditional)
            .count(),
        1
    );
}

#[test]
fn no_wait_flags_blocking_request_under_live_guard() {
    let findings = lint_no_wait_under_latch("no_wait.rs", &fixture("no_wait.rs"));
    assert_eq!(
        at(&findings, "no-wait-under-latch"),
        vec![("no_wait.rs".to_string(), 5)]
    );
}

#[test]
fn no_panic_skips_test_modules() {
    let findings = lint_no_panic("no_panic.rs", &fixture("no_panic.rs"));
    assert_eq!(at(&findings, "no-panic"), vec![("no_panic.rs".to_string(), 4)]);
}

#[test]
fn ordering_census_flags_bare_sites_and_skips_cmp_and_tests() {
    let (sites, findings) = lint_ordering_census("ordering.rs", &fixture("ordering.rs"));
    // The two bare sites are findings; cmp::Ordering and the test module
    // never enter the census.
    assert_eq!(
        at(&findings, "ordering-annotation"),
        vec![("ordering.rs".to_string(), 14), ("ordering.rs".to_string(), 18)]
    );
    assert!(findings[0].msg.contains("Relaxed"), "msg: {}", findings[0].msg);
    let locs: Vec<(String, usize)> = sites.iter().map(|s| (s.file.clone(), s.line)).collect();
    assert_eq!(
        locs,
        vec![("ordering.rs".to_string(), 5), ("ordering.rs".to_string(), 10)]
    );
    assert_eq!(sites[0].ops, vec!["Acquire".to_string()]);
}

#[test]
fn crash_point_registry_finds_duplicates_and_unreached() {
    let mut sites = find_crash_points("crash_points_a.rs", &fixture("crash_points_a.rs"));
    sites.extend(find_crash_points(
        "crash_points_b.rs",
        &fixture("crash_points_b.rs"),
    ));
    assert_eq!(sites.len(), 3);

    let dups = lint_crash_points(&sites, None);
    assert_eq!(
        at(&dups, "crash-point-dup"),
        vec![("crash_points_b.rs".to_string(), 3)]
    );

    // With a reached list naming only fx.dup, fx.only_a is unreached.
    let reached = vec!["fx.dup".to_string()];
    let findings = lint_crash_points(&sites, Some(&reached));
    assert_eq!(
        at(&findings, "crash-point-unreached"),
        vec![("crash_points_a.rs".to_string(), 5)]
    );
}

#[test]
fn metric_audit_flags_bad_dup_and_unreferenced_names() {
    let sites = find_metric_sites("metrics.rs", &fixture("metrics.rs"));
    // Five literal sites; the dynamic one and the test-module one are not
    // collected (the registry panics on those at registration time instead).
    assert_eq!(sites.len(), 5, "sites: {sites:?}");
    assert!(sites.iter().all(|s| s.name != "test_only_metric"));

    let corpus = vec![
        ("metrics.rs".to_string(), fixture("metrics.rs")),
        (
            "README.md".to_string(),
            "| `good_counter` | `BadName` | `dup_metric` | documented |".to_string(),
        ),
    ];
    let findings = lint_metric_names(&sites, &corpus);
    assert_eq!(
        at(&findings, "metric-name"),
        vec![("metrics.rs".to_string(), 8)],
        "findings: {findings:?}"
    );
    assert_eq!(
        at(&findings, "metric-name-dup"),
        vec![("metrics.rs".to_string(), 10)]
    );
    // `lonely_metric` appears nowhere outside its registration file; a
    // same-file mention (the registration itself) is not a reference.
    assert_eq!(
        at(&findings, "metric-unreferenced"),
        vec![("metrics.rs".to_string(), 11)]
    );
    assert_eq!(findings.len(), 3);
}

#[test]
fn wal_coverage_reports_missing_undo_dispatch() {
    let fakeroot = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fakeroot");
    let findings = lint_wal_coverage(&fakeroot).unwrap();
    let cov = at(&findings, "wal-coverage");
    assert_eq!(cov.len(), 1, "findings: {findings:?}");
    assert_eq!(cov[0].0, "crates/btree/src/apply.rs");
    assert!(findings[0].msg.contains("IndexBody::RemoveKey"));
    assert!(findings[0].msg.contains("undo_body"));
}

#[test]
fn allowlist_filters_stales_and_overflows() {
    let fp = analyze::fp8(".expect(\"latch held\")");
    let (allow, pf) = parse_allowlist(&format!(
        "# comment\n\
         crates/x/src/a.rs no-panic {fp} — head exists under the mutex\n\
         crates/x/src/b.rs no-panic deadbeef — never fired\n\
         crates/x/src/c.rs:10 no-panic — legacy line-keyed entry\n",
    ));
    assert_eq!(allow.len(), 2);
    // The retired `<path>:<line>` format is a format error, not silently
    // accepted with a bogus key.
    assert_eq!(at(&pf, "allow-format"), vec![("lint.allow".to_string(), 4)]);

    let mk = |line: usize| Finding {
        file: "crates/x/src/a.rs".to_string(),
        line,
        lint: "no-panic",
        fp: fp.clone(),
        msg: "boom".to_string(),
    };
    // Two findings on identical flagged lines share a fingerprint: one
    // entry covers both, at any line number.
    let out = apply_allowlist(vec![mk(10), mk(44)], &allow);
    // Both a.rs findings are suppressed; the b.rs entry is stale (line 3).
    assert_eq!(at(&out, "allow-stale"), vec![("lint.allow".to_string(), 3)]);
    assert_eq!(out.len(), 1);

    let big: String = (0..ALLOWLIST_MAX + 1)
        .map(|i| format!("crates/x/src/a.rs no-panic {i:08x} — reason\n"))
        .collect();
    let (_, pf) = parse_allowlist(&big);
    assert_eq!(at(&pf, "allow-overflow"), vec![("lint.allow".to_string(), 1)]);
}

#[test]
fn fingerprints_key_on_trimmed_content() {
    // Indentation changes don't move the key; content changes do.
    assert_eq!(analyze::fp8("    a.load()  "), analyze::fp8("a.load()"));
    assert_ne!(analyze::fp8("a.load()"), analyze::fp8("b.load()"));
    assert_eq!(analyze::fp8("x").len(), 8);
    // Synthetic findings (empty fp) can never be allowlisted away.
    let (allow, _) = parse_allowlist("lint.allow/x allow-stale 00000000 — nope\n");
    let f = vec![Finding {
        file: "lint.allow/x".to_string(),
        line: 1,
        lint: "allow-stale",
        fp: String::new(),
        msg: "stale".to_string(),
    }];
    let out = apply_allowlist(f, &allow);
    assert_eq!(out.len(), 2, "finding survives and the entry goes stale");
}

// ---------------------------------------------------------------------------
// Lockdep dump checker
// ---------------------------------------------------------------------------

fn edge(held: &str, acquired: &str) -> String {
    format!(
        "{{\"type\":\"edge\",\"held\":\"{held}\",\"acquired\":\"{acquired}\",\
         \"site\":\"t.rs:1\",\"count\":3}}\n"
    )
}

fn summary(chain: u64) -> String {
    format!("{{\"type\":\"summary\",\"edges\":1,\"acquisitions\":100,\"max_page_latch_chain\":{chain}}}\n")
}

#[test]
fn lockdep_accepts_the_legal_order() {
    let text = format!(
        "{}{}{}{}",
        edge("TreeLatch", "PageLatch"),
        edge("PageLatch", "PageLatch"),
        edge("LockTable", "LockWait"),
        summary(2)
    );
    let d = lockdep::parse_dump(&text);
    assert_eq!(d.edges.len(), 3);
    assert_eq!(d.acquisitions, 100);
    assert!(lockdep::check_dump("dump", &d).is_empty());
}

#[test]
fn lockdep_rejects_wait_under_latch() {
    let text = format!("{}{}", edge("PageLatch", "LockWait"), summary(1));
    let d = lockdep::parse_dump(&text);
    let f = lockdep::check_dump("dump", &d);
    assert_eq!(f.len(), 1);
    assert!(f[0].msg.contains("blocking lock wait while holding a PageLatch"));
}

#[test]
fn lockdep_rejects_rank_inversion_and_cycle() {
    let text = format!(
        "{}{}{}",
        edge("TreeLatch", "PageLatch"),
        edge("PageLatch", "TreeLatch"),
        summary(2)
    );
    let d = lockdep::parse_dump(&text);
    let f = lockdep::check_dump("dump", &d);
    assert!(f.iter().any(|f| f.msg.contains("rank-order violation")));
    assert!(f.iter().any(|f| f.msg.contains("acquisition-order cycle")));
}

#[test]
fn lockdep_accepts_latch_then_pool_shard() {
    // PageLatch(2) → PoolShard(3) is the legal order: guards mark pages
    // dirty (shard mutex) while X-latched, and eviction's write-back
    // bookkeeping relocks the shard under the frame latch.
    let text = format!("{}{}", edge("PageLatch", "PoolShard"), summary(1));
    let d = lockdep::parse_dump(&text);
    assert!(lockdep::check_dump("dump", &d).is_empty());
}

#[test]
fn lockdep_rejects_pool_shard_held_across_latch_wait() {
    // The inverse — blocking on a page latch while holding a shard mutex —
    // is a rank inversion (3 → 2): a shard holder stalled behind latch
    // traffic would serialize its whole partition.
    let text = format!("{}{}", edge("PoolShard", "PageLatch"), summary(1));
    let d = lockdep::parse_dump(&text);
    let f = lockdep::check_dump("dump", &d);
    assert_eq!(f.len(), 1);
    assert!(f[0].msg.contains("rank-order violation"));
    assert!(f[0].msg.contains("PoolShard"));
}

#[test]
fn lockdep_rejects_shard_to_shard_edges() {
    // All shards share one class; a thread must never hold two shard
    // mutexes at once, so a rank-equal PoolShard → PoolShard edge is an
    // error (only page-latch coupling may stay within its rank).
    let text = format!("{}{}", edge("PoolShard", "PoolShard"), summary(1));
    let d = lockdep::parse_dump(&text);
    let f = lockdep::check_dump("dump", &d);
    assert_eq!(f.len(), 1);
    assert!(f[0].msg.contains("rank-equal edge"));
}

#[test]
fn lockdep_treats_retired_pool_mutex_as_unknown() {
    // Dumps from pre-partitioned builds must fail loudly, not pass by
    // accident: the retired `PoolMutex` class no longer has a rank.
    let text = format!("{}{}", edge("PageLatch", "PoolMutex"), summary(1));
    let d = lockdep::parse_dump(&text);
    let f = lockdep::check_dump("dump", &d);
    assert_eq!(f.len(), 1);
    assert!(f[0].msg.contains("unknown class"));
}

#[test]
fn lockdep_rejects_deep_page_latch_chains() {
    let text = format!("{}{}", edge("PageLatch", "PageLatch"), summary(3));
    let d = lockdep::parse_dump(&text);
    let f = lockdep::check_dump("dump", &d);
    assert_eq!(f.len(), 1);
    assert!(f[0].msg.contains("chain depth 3"));
}

// ---------------------------------------------------------------------------
// Self-run: the workspace itself must be clean under the committed allowlist
// ---------------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = workspace_root();
    let report = run_source_lints(&root, None).unwrap();
    let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let (allow, allow_findings) = parse_allowlist(&allow_text);
    assert!(allow.len() <= ALLOWLIST_MAX);
    let mut findings = apply_allowlist(report.findings, &allow);
    findings.extend(allow_findings);
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The census should be substantial — an empty census means the scanner
    // silently stopped seeing the engine.
    assert!(report.census.len() >= 50, "census: {}", report.census.len());
    assert!(report.crash_points.len() >= 40);
    // The obs registry's literal names must all be in view of the audit.
    assert!(
        report.metric_sites.len() >= 14,
        "metric sites: {}",
        report.metric_sites.len()
    );
    // Every atomic-ordering site in the engine is annotated and counted; an
    // empty census would mean the scanner stopped seeing the atomics.
    assert!(
        report.ordering_sites.len() >= 50,
        "ordering sites: {}",
        report.ordering_sites.len()
    );
}
