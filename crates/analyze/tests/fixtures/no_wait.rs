// Fixture for no-wait-under-latch: the blocking request on line 5 runs while
// the guard from line 4 is live; the one on line 11 runs after release.
fn waits_under_latch(&self) -> Result<()> {
    let leaf = self.pool.fix_s(pid)?; // latch-rank: 2
    self.locks.request(txn, name, mode, dur, false)?;
    Ok(())
}
fn releases_first(&self) -> Result<()> {
    let leaf = self.pool.fix_s(pid)?; // latch-rank: 2
    drop(leaf);
    self.locks.request(txn, name, mode, dur, false)?;
    Ok(())
}
fn conditional_is_fine(&self) -> Result<()> {
    let leaf = self.pool.fix_s(pid)?; // latch-rank: 2
    self.locks.request(txn, name, mode, dur, true)?;
    Ok(())
}
