//! Fixture for the atomics-ordering census.
use std::sync::atomic::{AtomicU32, Ordering};

pub fn annotated_same_line(c: &AtomicU32) -> u32 {
    c.load(Ordering::Acquire) // ordering: pairs with the Release in annotated_above
}

pub fn annotated_above(c: &AtomicU32) {
    // ordering: publishes the payload written before this store
    c.store(1, Ordering::Release);
}

pub fn bare_relaxed(c: &AtomicU32) -> u32 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn bare_acq_rel(c: &AtomicU32) -> u32 {
    c.swap(2, Ordering::AcqRel)
}

pub fn not_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_module_sites_are_exempt() {
        assert_eq!(AtomicU32::new(0).load(Ordering::SeqCst), 0);
        assert_eq!(bare_relaxed(&AtomicU32::new(0)), 0);
    }
}
