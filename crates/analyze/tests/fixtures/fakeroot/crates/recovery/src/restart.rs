pub fn restart(kind: RecordKind) {
    match kind {
        RecordKind::Update => {}
        RecordKind::Commit => {}
    }
}
