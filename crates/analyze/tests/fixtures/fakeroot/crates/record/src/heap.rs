pub fn redo(b: &HeapBody) {
    match b {
        HeapBody::Put(_) => {}
    }
}

pub fn undo(b: &HeapBody) {
    match b {
        HeapBody::Put(_) => {}
    }
}
