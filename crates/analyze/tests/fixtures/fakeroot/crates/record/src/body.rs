pub enum HeapBody {
    Put(u32),
}
