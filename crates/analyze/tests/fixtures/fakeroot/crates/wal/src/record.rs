pub enum RecordKind {
    Update,
    Commit,
}
