pub enum IndexBody {
    AddKey(u32),
    RemoveKey(u32),
}
