pub fn apply_body(b: &IndexBody) {
    match b {
        IndexBody::AddKey(_) => {}
        IndexBody::RemoveKey(_) => {}
    }
}

pub fn undo_body(b: &IndexBody) {
    match b {
        IndexBody::AddKey(_) => {}
    }
}
