// Fixture for the panic audit: line 4 is an engine-path unwrap; the unwrap
// inside the #[cfg(test)] module must not be flagged.
pub fn engine_path(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_path() {
        assert_eq!(super::engine_path(Some(1)), 1);
        None::<u32>.unwrap();
    }
}
