// Fixture for the latch census: line 4 lacks an annotation; line 8 takes the
// tree latch (rank 1) after a page latch (rank 2) in the same function.
fn unannotated(&self) {
    let g = self.pool.fix_s(pid)?;
}
fn rank_regression(&self) {
    let g = self.pool.fix_s(pid)?; // latch-rank: 2
    let t = self.tree_x(); // latch-rank: 1
}
fn clean(&self) {
    let t = self.tree_x(); // latch-rank: 1
    let g = self.pool.fix_s(pid)?; // latch-rank: 2
    let c = self.pool.try_fix_x(pid); // latch-rank: 2 (conditional)
}
