// Fixture A for the crash-point registry: declares two points; "fx.dup" is
// also declared (at a different location) by crash_points_b.rs.
fn step_one() {
    crash_point!("fx.dup");
    crash_point!("fx.only_a");
}
