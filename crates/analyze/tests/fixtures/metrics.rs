// Fixture for the metric-name audit. Lines matter: the tests assert them.
pub fn wire(reg: &MetricsRegistry, n: u64) {
    reg.register_counter(
        "good_counter",
        "a documented counter",
        move || n,
    );
    reg.register_gauge("BadName", "not snake_case", || 0);
    reg.register_counter("dup_metric", "first", || 1);
    reg.register_histogram("dup_metric", "second", snap);
    reg.register_gauge("lonely_metric", "nobody reads this", || 0);
    let dynamic = format!("span_{n}_self_ns");
    reg.register_counter(&dynamic, "dynamic name: not audited here", move || n);
}

#[cfg(test)]
mod tests {
    // Registrations in test modules are out of scope for the audit.
    fn t() {
        reg.register_counter("test_only_metric", "ignored", || 0);
    }
}
