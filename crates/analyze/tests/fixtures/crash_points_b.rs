// Fixture B for the crash-point registry: re-declares "fx.dup".
fn step_two() {
    crash_point!("fx.dup");
}
