//! Facade-level functional tests: DDL, DML through indexes, rollback, and
//! clean reopen.

use ariesim_common::tmp::TempDir;
use ariesim_common::Error;
use ariesim_db::{Db, DbOptions, FetchCond, Row};

fn open(dir: &TempDir) -> std::sync::Arc<Db> {
    Db::open(dir.path(), DbOptions::default()).unwrap()
}

fn setup_accounts(db: &Db) {
    db.create_table("accounts", 3).unwrap();
    db.create_index("accounts_pk", "accounts", 0, true).unwrap();
    db.create_index("accounts_by_branch", "accounts", 1, false)
        .unwrap();
}

fn account(id: u32, branch: &str, balance: u32) -> Row {
    Row::new(vec![
        format!("acct-{id:06}").into_bytes(),
        branch.as_bytes().to_vec(),
        format!("{balance}").into_bytes(),
    ])
}

#[test]
fn create_insert_fetch() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    setup_accounts(&db);
    let txn = db.begin();
    db.insert_row(&txn, "accounts", &account(1, "north", 100))
        .unwrap();
    db.insert_row(&txn, "accounts", &account(2, "south", 200))
        .unwrap();
    db.commit(&txn).unwrap();

    let txn = db.begin();
    let (_, row) = db
        .fetch_via(&txn, "accounts_pk", b"acct-000002", FetchCond::Eq)
        .unwrap()
        .unwrap();
    assert_eq!(row.field(1).unwrap(), b"south");
    assert!(db
        .fetch_via(&txn, "accounts_pk", b"acct-000099", FetchCond::Eq)
        .unwrap()
        .is_none());
    db.commit(&txn).unwrap();
    db.verify_consistency().unwrap();
}

#[test]
fn secondary_index_nonunique() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    setup_accounts(&db);
    let txn = db.begin();
    for i in 0..30 {
        db.insert_row(&txn, "accounts", &account(i, if i % 3 == 0 { "b0" } else { "b1" }, i))
            .unwrap();
    }
    db.commit(&txn).unwrap();
    let txn = db.begin();
    let hits = db.scan_range(&txn, "accounts_by_branch", b"b0", b"b0\x01").unwrap();
    assert_eq!(hits.len(), 10);
    db.commit(&txn).unwrap();
}

#[test]
fn unique_pk_violation_via_facade() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    setup_accounts(&db);
    let txn = db.begin();
    db.insert_row(&txn, "accounts", &account(7, "x", 1)).unwrap();
    let err = db
        .insert_row(&txn, "accounts", &account(7, "y", 2))
        .unwrap_err();
    assert!(matches!(err, Error::UniqueViolation));
    db.rollback(&txn).unwrap();
    db.verify_consistency().unwrap();
}

#[test]
fn delete_row_updates_all_indexes() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    setup_accounts(&db);
    let txn = db.begin();
    let rid = db
        .insert_row(&txn, "accounts", &account(1, "north", 10))
        .unwrap();
    db.insert_row(&txn, "accounts", &account(2, "north", 20))
        .unwrap();
    db.commit(&txn).unwrap();

    let txn = db.begin();
    let old = db.delete_row(&txn, "accounts", rid).unwrap();
    assert_eq!(old.field(0).unwrap(), b"acct-000001");
    db.commit(&txn).unwrap();

    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "accounts_pk", b"acct-000001", FetchCond::Eq)
        .unwrap()
        .is_none());
    let north = db
        .scan_range(&txn, "accounts_by_branch", b"north", b"north\x01")
        .unwrap();
    assert_eq!(north.len(), 1);
    db.commit(&txn).unwrap();
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 1);
    assert_eq!(report.index_keys, 2); // one row × two indexes
}

#[test]
fn rollback_reverts_heap_and_indexes_together() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    setup_accounts(&db);
    let txn = db.begin();
    db.insert_row(&txn, "accounts", &account(1, "a", 1)).unwrap();
    db.commit(&txn).unwrap();

    let txn = db.begin();
    let rid2 = db.insert_row(&txn, "accounts", &account(2, "b", 2)).unwrap();
    let (rid1, _) = db
        .fetch_via(&txn, "accounts_pk", b"acct-000001", FetchCond::Eq)
        .unwrap()
        .unwrap();
    // Delete row 1 and insert row 3, then roll everything back.
    db.delete_row(&txn, "accounts", rid1).unwrap();
    db.insert_row(&txn, "accounts", &account(3, "c", 3)).unwrap();
    let _ = rid2;
    db.rollback(&txn).unwrap();

    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 1);
    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "accounts_pk", b"acct-000001", FetchCond::Eq)
        .unwrap()
        .is_some());
    assert!(db
        .fetch_via(&txn, "accounts_pk", b"acct-000002", FetchCond::Eq)
        .unwrap()
        .is_none());
    db.commit(&txn).unwrap();
}

#[test]
fn create_index_backfills_existing_rows() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    db.create_table("t", 2).unwrap();
    let txn = db.begin();
    for i in 0..200u32 {
        db.insert_row(
            &txn,
            "t",
            &Row::new(vec![
                format!("k{i:05}").into_bytes(),
                format!("v{i}").into_bytes(),
            ]),
        )
        .unwrap();
    }
    db.commit(&txn).unwrap();
    // Index created after the fact must see all 200 rows.
    db.create_index("t_pk", "t", 0, true).unwrap();
    let txn = db.begin();
    let all = db.scan_range(&txn, "t_pk", b"k", b"l").unwrap();
    assert_eq!(all.len(), 200);
    db.commit(&txn).unwrap();
    db.verify_consistency().unwrap();
}

#[test]
fn clean_reopen_preserves_everything() {
    let dir = TempDir::new("db");
    {
        let db = open(&dir);
        setup_accounts(&db);
        let txn = db.begin();
        for i in 0..50 {
            db.insert_row(&txn, "accounts", &account(i, "br", i)).unwrap();
        }
        db.commit(&txn).unwrap();
        db.pool.flush_all().unwrap();
        db.log.flush_all().unwrap();
    }
    let db = open(&dir);
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 50);
    assert_eq!(report.tables, 1);
    assert_eq!(report.indexes, 2);
    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "accounts_pk", b"acct-000031", FetchCond::Eq)
        .unwrap()
        .is_some());
    db.commit(&txn).unwrap();
}

#[test]
fn scan_range_honours_bounds() {
    let dir = TempDir::new("db");
    let db = open(&dir);
    db.create_table("t", 1).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    let txn = db.begin();
    for i in 0..100u32 {
        db.insert_row(&txn, "t", &Row::new(vec![format!("{i:04}").into_bytes()]))
            .unwrap();
    }
    db.commit(&txn).unwrap();
    let txn = db.begin();
    let hits = db.scan_range(&txn, "t_pk", b"0020", b"0030").unwrap();
    assert_eq!(hits.len(), 10);
    assert_eq!(hits[0].1.field(0).unwrap(), b"0020");
    assert_eq!(hits[9].1.field(0).unwrap(), b"0029");
    db.commit(&txn).unwrap();
}
