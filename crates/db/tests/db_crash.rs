//! Crash-recovery tests: simulated crashes (with and without a truncated
//! durable log) followed by ARIES restart, checked against the paper's
//! guarantees — committed work survives, loser work disappears, redo is
//! page-oriented, and tree structure is always restored (incomplete SMOs
//! backed out).

use ariesim_common::tmp::TempDir;
use ariesim_db::{Db, DbOptions, FetchCond, Row};
use std::sync::Arc;

fn open(dir: &TempDir) -> Arc<Db> {
    Db::open(dir.path(), DbOptions::default()).unwrap()
}

fn setup(db: &Db) {
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
}

fn row(i: u32) -> Row {
    Row::new(vec![
        format!("key-{i:06}").into_bytes(),
        format!("payload-{i}").into_bytes(),
    ])
}

fn key_of(i: u32) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

#[test]
fn committed_work_survives_crash() {
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    let txn = db.begin();
    for i in 0..300 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    // Crash: dirty pages are lost; only the (forced-at-commit) log survives.
    let path = db.crash();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert!(outcome.redo_applied > 0, "redo should repeat history");
    assert!(outcome.losers.is_empty());
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 300);
    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "t_pk", &key_of(123), FetchCond::Eq)
        .unwrap()
        .is_some());
    db.commit(&txn).unwrap();
}

#[test]
fn inflight_work_is_rolled_back_at_restart() {
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    let committed = db.begin();
    for i in 0..100 {
        db.insert_row(&committed, "t", &row(i)).unwrap();
    }
    db.commit(&committed).unwrap();

    // A loser transaction: inserts and deletes, then the system dies. Force
    // its records to the log (without committing) so restart actually has
    // something to undo.
    let loser = db.begin();
    for i in 100..160 {
        db.insert_row(&loser, "t", &row(i)).unwrap();
    }
    let txn2 = db.begin();
    let (rid5, _) = db
        .fetch_via(&loser, "t_pk", &key_of(5), FetchCond::Eq)
        .unwrap()
        .unwrap();
    db.delete_row(&loser, "t", rid5).unwrap();
    drop(txn2);
    db.log.flush_all().unwrap();
    let path = db.crash();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert!(!outcome.losers.is_empty(), "loser must be detected");
    assert!(outcome.undone > 0);
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 100, "loser inserts gone, loser delete undone");
    let txn = db.begin();
    assert!(
        db.fetch_via(&txn, "t_pk", &key_of(5), FetchCond::Eq)
            .unwrap()
            .is_some(),
        "deleted-by-loser row must be back"
    );
    assert!(db
        .fetch_via(&txn, "t_pk", &key_of(120), FetchCond::Eq)
        .unwrap()
        .is_none());
    db.commit(&txn).unwrap();
}

#[test]
fn redo_is_page_oriented_no_traversals() {
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    let txn = db.begin();
    for i in 0..800 {
        db.insert_row(&txn, "t", &row(i)).unwrap(); // plenty of splits
    }
    db.commit(&txn).unwrap();
    let path = db.crash();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    let s = db.stats.snapshot();
    assert!(s.redo_applied > 0);
    assert_eq!(
        s.redo_traversals, 0,
        "the paper: redos are ALWAYS page-oriented"
    );
    db.verify_consistency().unwrap();
}

#[test]
fn crash_mid_smo_restores_structural_consistency() {
    // Truncate the durable log inside a split SMO (after some of its records
    // but before the dummy CLR): restart must undo the partial SMO
    // page-oriented and leave a structurally consistent tree.
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    let txn = db.begin();
    for i in 0..200 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    db.log.flush_all().unwrap();
    let stable_rows = 200;

    // Drive inserts until a split happens, remembering where the log stood.
    let splits0 = db.stats.snapshot().smo_splits;
    let txn = db.begin();
    let mut i = 200u32;
    while db.stats.snapshot().smo_splits == splits0 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
        i += 1;
        assert!(i < 20_000);
    }
    // Find the SMO's records in the log: the dummy CLR right at/near the
    // end. Truncate just *before* the last DummyClr so the SMO is incomplete
    // on disk.
    let recs: Vec<_> = db
        .log
        .scan(ariesim_common::Lsn::NULL)
        .map(|r| r.unwrap())
        .collect();
    let last_dummy = recs
        .iter()
        .rev()
        .find(|r| r.kind == ariesim_wal::RecordKind::DummyClr)
        .expect("split wrote a dummy CLR");
    let cut = last_dummy.lsn;
    let path = db.crash_truncating_log_to(cut).unwrap();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert!(!outcome.losers.is_empty());
    // The partial SMO was undone; all committed rows intact; structure OK.
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, stable_rows);
}

#[test]
fn crash_mid_page_delete_smo_restores_consistency() {
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    // Enough rows for several leaves.
    let txn = db.begin();
    for i in 0..600 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    db.log.flush_all().unwrap();

    // Delete rows until a page-delete SMO fires.
    let pd0 = db.stats.snapshot().smo_page_deletes;
    let txn = db.begin();
    let mut i = 0u32;
    while db.stats.snapshot().smo_page_deletes == pd0 {
        let (rid, _) = db
            .fetch_via(&txn, "t_pk", &key_of(i), FetchCond::Eq)
            .unwrap()
            .unwrap();
        db.delete_row(&txn, "t", rid).unwrap();
        i += 1;
        assert!(i < 600);
    }
    let recs: Vec<_> = db
        .log
        .scan(ariesim_common::Lsn::NULL)
        .map(|r| r.unwrap())
        .collect();
    let last_dummy = recs
        .iter()
        .rev()
        .find(|r| r.kind == ariesim_wal::RecordKind::DummyClr)
        .unwrap();
    let cut = last_dummy.lsn;
    let path = db.crash_truncating_log_to(cut).unwrap();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    // All of the loser's deletes are undone: the full 600 rows are back and
    // the tree is structurally consistent.
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 600);
}

#[test]
fn recovery_from_checkpoint_skips_old_log() {
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    let txn = db.begin();
    for i in 0..200 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    // Clean point: flush pages, checkpoint.
    db.pool.flush_all().unwrap();
    let ckpt_lsn = db.checkpoint().unwrap();
    // More work after the checkpoint.
    let txn = db.begin();
    for i in 200..260 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    let path = db.crash();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert_eq!(outcome.ckpt_lsn, ckpt_lsn);
    assert!(
        outcome.redo_start >= ckpt_lsn,
        "redo must not rescan pre-checkpoint log: start {:?} < ckpt {:?}",
        outcome.redo_start,
        outcome.ckpt_lsn
    );
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 260);
}

#[test]
fn double_crash_idempotent_recovery() {
    // Crash, recover, crash again immediately (recovery's own CLRs now in
    // the log), recover again: bounded logging via CLR chains means the
    // second recovery must finish with the same state.
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    let txn = db.begin();
    for i in 0..150 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    let loser = db.begin();
    for i in 150..200 {
        db.insert_row(&loser, "t", &row(i)).unwrap();
    }
    db.log.flush_all().unwrap();
    let path = db.crash();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    assert_eq!(db.verify_consistency().unwrap().rows, 150);
    // Crash immediately after recovery, without flushing pages.
    let path = db.crash();
    let db = Db::open(&path, DbOptions::default()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert!(
        outcome.losers.is_empty(),
        "first recovery ended the loser; CLRs must prevent re-undo: {outcome:?}"
    );
    assert_eq!(db.verify_consistency().unwrap().rows, 150);
}

#[test]
fn randomized_crash_points_always_recover_consistently() {
    // Seeded pseudo-random workload; then try a series of crash points
    // (log truncation at successively earlier record boundaries) and verify
    // full consistency plus exactly-committed-effects after each recovery.
    let dir = TempDir::new("crash");
    let db = open(&dir);
    setup(&db);
    // Interleave three transactions with different fates.
    let t_committed = db.begin();
    for i in 0..120 {
        db.insert_row(&t_committed, "t", &row(i)).unwrap();
    }
    db.commit(&t_committed).unwrap();
    let commit1_lsn = db.log.last_lsn();

    let t2 = db.begin();
    for i in 120..180 {
        db.insert_row(&t2, "t", &row(i)).unwrap();
    }
    db.commit(&t2).unwrap();

    let t3 = db.begin(); // never commits
    for i in 180..220 {
        db.insert_row(&t3, "t", &row(i)).unwrap();
    }
    db.log.flush_all().unwrap();

    let boundaries = db.log_record_lsns();
    // Crash points: a spread of record boundaries after the first commit.
    let candidates: Vec<_> = boundaries
        .iter()
        .copied()
        .filter(|&l| l > commit1_lsn)
        .step_by(23)
        .take(8)
        .collect();
    let src = db.crash();

    for (i, cut) in candidates.into_iter().enumerate() {
        // Copy the crashed state and truncate its log at the cut.
        let case_dir = TempDir::new(&format!("crashcase{i}"));
        std::fs::copy(src.join("pages"), case_dir.file("pages")).unwrap();
        std::fs::copy(src.join("wal"), case_dir.file("wal")).unwrap();
        if src.join("wal.master").exists() {
            std::fs::copy(src.join("wal.master"), case_dir.file("wal.master")).unwrap();
        }
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(case_dir.file("wal"))
            .unwrap();
        f.set_len(cut.0).unwrap();
        drop(f);

        let db = Db::open(case_dir.path(), DbOptions::default()).unwrap();
        let report = db.verify_consistency().unwrap();
        // T1's 120 rows must always be there (its commit predates every cut);
        // whatever else survives depends on whether T2's commit made the cut,
        // but consistency and the *possible* row counts are fixed.
        assert!(
            report.rows == 120 || report.rows == 180,
            "cut {cut:?}: unexpected row count {}",
            report.rows
        );
        let txn = db.begin();
        assert!(db
            .fetch_via(&txn, "t_pk", &key_of(42), FetchCond::Eq)
            .unwrap()
            .is_some());
        // T3 never committed: its rows are never visible.
        assert!(db
            .fetch_via(&txn, "t_pk", &key_of(200), FetchCond::Eq)
            .unwrap()
            .is_none());
        db.commit(&txn).unwrap();
    }
}
