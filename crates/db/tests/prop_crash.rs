//! Property test: ARIES recovery under randomized workloads and crash
//! points.
//!
//! A random interleaving of transactions (some committed, some left in
//! flight) runs against a table with an index; the durable log is truncated
//! at a random record boundary after the last commit we want to survive;
//! restart must then produce a database that (a) passes the full
//! heap-vs-index consistency check and (b) contains exactly the rows of the
//! transactions whose commit record made it into the kept prefix.

use ariesim_common::tmp::TempDir;
use ariesim_common::Lsn;
use ariesim_db::{Db, DbOptions, FetchCond, Row};
use ariesim_wal::RecordKind;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn key_of(i: u32) -> Vec<u8> {
    format!("k{i:06}").into_bytes()
}

fn row_of(i: u32) -> Row {
    Row::new(vec![key_of(i), format!("v{i}").into_bytes()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recovery_preserves_exactly_the_committed_prefix(
        // Per-transaction: set of row ids (disjointified below) + commit flag.
        txn_specs in proptest::collection::vec(
            (proptest::collection::vec(0u32..50, 1..12), any::<bool>()),
            1..6,
        ),
        cut_selector in any::<u16>(),
    ) {
        let dir = TempDir::new("prop-crash");
        let db = Db::open(dir.path(), DbOptions::default()).unwrap();
        db.create_table("t", 2).unwrap();
        db.create_index("t_pk", "t", 0, true).unwrap();

        // Run the transactions sequentially; record each commit LSN and the
        // rows it made durable. Row ids are disjoint per txn (offset).
        let mut commits: Vec<(Lsn, BTreeSet<u32>)> = Vec::new();
        for (t, (ids, commit)) in txn_specs.iter().enumerate() {
            let ids: BTreeSet<u32> = ids.iter().map(|i| t as u32 * 1000 + i).collect();
            let txn = db.begin();
            for &i in &ids {
                db.insert_row(&txn, "t", &row_of(i)).unwrap();
            }
            if *commit {
                let txn_id = txn.id;
                db.commit(&txn).unwrap();
                // A transaction survives iff its COMMIT record (not the End
                // that follows) is inside the kept prefix.
                let commit_lsn = db
                    .log
                    .scan(Lsn::NULL)
                    .map(|r| r.unwrap())
                    .filter(|r| r.txn == txn_id && r.kind == RecordKind::Commit)
                    .map(|r| r.lsn)
                    .last()
                    .expect("commit record present");
                commits.push((commit_lsn, ids));
            }
            // in-flight txns are simply left open
        }
        db.log.flush_all().unwrap();

        // Choose a crash point: any record boundary at or after the first
        // commit (so at least that transaction survives), up to log end.
        let boundaries: Vec<Lsn> = db
            .log
            .scan(Lsn::NULL)
            .map(|r| r.unwrap())
            .filter(|r| r.kind != RecordKind::CkptBegin)
            .map(|r| Lsn(r.lsn.0 + 1)) // cut strictly after this record starts
            .collect();
        let min_cut = commits
            .first()
            .map(|(l, _)| *l)
            .unwrap_or_else(|| db.log.last_lsn());
        let candidates: Vec<Lsn> = boundaries
            .iter()
            .copied()
            .filter(|&l| l > min_cut)
            .collect();
        // Cut exactly at a frame start: use record LSNs directly.
        let frame_cuts: Vec<Lsn> = db
            .log
            .scan(Lsn::NULL)
            .map(|r| r.unwrap().lsn)
            .filter(|&l| l > min_cut)
            .collect();
        let cut = if frame_cuts.is_empty() {
            Lsn(db.log.next_lsn().0)
        } else {
            frame_cuts[cut_selector as usize % frame_cuts.len()]
        };
        let _ = candidates;

        let path = db.crash_truncating_log_to(cut).unwrap();
        let db = Db::open(&path, DbOptions::default()).unwrap();

        // Expected rows: every transaction whose commit LSN < cut.
        let mut expect: BTreeSet<u32> = BTreeSet::new();
        for (commit_lsn, ids) in &commits {
            if *commit_lsn < cut {
                expect.extend(ids);
            }
        }
        let report = db.verify_consistency().unwrap();
        prop_assert_eq!(report.rows, expect.len(), "cut={:?}", cut);
        let txn = db.begin();
        for &i in &expect {
            prop_assert!(
                db.fetch_via(&txn, "t_pk", &key_of(i), FetchCond::Eq)
                    .unwrap()
                    .is_some(),
                "committed row {i} missing after recovery (cut {cut:?})"
            );
        }
        db.commit(&txn).unwrap();
        let s = db.stats.snapshot();
        prop_assert_eq!(s.redo_traversals, 0, "redo must stay page-oriented");
    }
}
