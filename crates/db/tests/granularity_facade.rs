//! Facade-level multi-granularity locking (§1.1 question 8 / §2.1) and
//! partial rollback through the Db API.

use ariesim_common::stats::Bump as _;
use ariesim_common::tmp::TempDir;
use ariesim_db::{Db, DbOptions, FetchCond, Row};

fn row(i: u32) -> Row {
    Row::new(vec![
        format!("k{i:06}").into_bytes(),
        format!("v{i}").into_bytes(),
    ])
}

fn open_with(dir: &TempDir, page_granularity: bool) -> std::sync::Arc<Db> {
    let db = Db::open(
        dir.path(),
        DbOptions {
            page_granularity,
            ..DbOptions::default()
        },
    )
    .unwrap();
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    db
}

#[test]
fn page_granularity_needs_far_fewer_locks() {
    // Insert 100 rows (all landing on a handful of data pages) and count
    // lock acquisitions under both granularities.
    let dir_r = TempDir::new("gran-r");
    let db_r = open_with(&dir_r, false);
    let txn = db_r.begin();
    for i in 0..100 {
        db_r.insert_row(&txn, "t", &row(i)).unwrap();
    }
    let record_locks = db_r.locks.held_count(txn.id);
    db_r.commit(&txn).unwrap();

    let dir_p = TempDir::new("gran-p");
    let db_p = open_with(&dir_p, true);
    let txn = db_p.begin();
    for i in 0..100 {
        db_p.insert_row(&txn, "t", &row(i)).unwrap();
    }
    let page_locks = db_p.locks.held_count(txn.id);
    db_p.commit(&txn).unwrap();

    // 100 records spread over a handful of data pages: the coarse granule
    // holds one lock per page instead of one per record.
    assert!(
        page_locks * 10 < record_locks,
        "page granularity should hold far fewer locks: page={page_locks} record={record_locks}"
    );
    // Both end up consistent, of course.
    db_r.verify_consistency().unwrap();
    db_p.verify_consistency().unwrap();
}

#[test]
fn page_granularity_correct_under_workload() {
    let dir = TempDir::new("gran-w");
    let db = open_with(&dir, true);
    let txn = db.begin();
    for i in 0..300 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    // Deletes + rollback behave identically at the coarser granule.
    let txn = db.begin();
    for i in 0..50 {
        let (rid, _) = db
            .fetch_via(&txn, "t_pk", format!("k{i:06}").as_bytes(), FetchCond::Eq)
            .unwrap()
            .unwrap();
        db.delete_row(&txn, "t", rid).unwrap();
    }
    db.rollback(&txn).unwrap();
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 300);
}

#[test]
fn savepoint_partial_rollback_through_facade() {
    let dir = TempDir::new("sp");
    let db = open_with(&dir, false);
    let txn = db.begin();
    for i in 0..20 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    let sp = db.savepoint(&txn);
    for i in 20..40 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    // Undo the second half only; heap AND index agree afterwards.
    db.rollback_to(&txn, sp).unwrap();
    db.commit(&txn).unwrap();
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 20);
    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "t_pk", b"k000019", FetchCond::Eq)
        .unwrap()
        .is_some());
    assert!(db
        .fetch_via(&txn, "t_pk", b"k000025", FetchCond::Eq)
        .unwrap()
        .is_none());
    db.commit(&txn).unwrap();
}

#[test]
fn nested_savepoints_unwind_in_order() {
    let dir = TempDir::new("sp2");
    let db = open_with(&dir, false);
    let txn = db.begin();
    db.insert_row(&txn, "t", &row(1)).unwrap();
    let sp1 = db.savepoint(&txn);
    db.insert_row(&txn, "t", &row(2)).unwrap();
    let sp2 = db.savepoint(&txn);
    db.insert_row(&txn, "t", &row(3)).unwrap();
    db.rollback_to(&txn, sp2).unwrap(); // drop row 3
    db.insert_row(&txn, "t", &row(4)).unwrap();
    db.rollback_to(&txn, sp1).unwrap(); // drop rows 2 and 4
    db.commit(&txn).unwrap();
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 1);
    // `stats` use keeps the Bump import honest.
    db.stats.page_fixes.bump();
}
