//! Steal semantics under memory pressure: with a tiny buffer pool, dirty
//! pages of *uncommitted* transactions get evicted to disk (steal), the WAL
//! rule forces the log first, and recovery must undo those stolen-but-
//! uncommitted changes after a crash.

use ariesim_common::tmp::TempDir;
use ariesim_db::{Db, DbOptions, FetchCond, Row};

fn row(i: u32) -> Row {
    Row::new(vec![
        format!("k{i:06}").into_bytes(),
        format!("v{}", "x".repeat(120)).into_bytes(),
    ])
}

fn tiny_opts() -> DbOptions {
    DbOptions {
        frames: 16, // minimum page cache: constant eviction
        ..DbOptions::default()
    }
}

#[test]
fn workload_correct_with_constant_eviction() {
    let dir = TempDir::new("steal");
    let db = Db::open(dir.path(), tiny_opts()).unwrap();
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    let txn = db.begin();
    for i in 0..2000 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    let s = db.stats.snapshot();
    assert!(
        s.page_writes > 100,
        "tiny pool must have evicted dirty pages: {} writes",
        s.page_writes
    );
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 2000);
}

#[test]
fn stolen_uncommitted_pages_are_undone_at_restart() {
    let dir = TempDir::new("steal");
    let db = Db::open(dir.path(), tiny_opts()).unwrap();
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    let txn = db.begin();
    for i in 0..200 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();

    // A big uncommitted transaction: with 16 frames its dirty pages are
    // stolen to disk long before any commit.
    let loser = db.begin();
    for i in 1000..2200 {
        db.insert_row(&loser, "t", &row(i)).unwrap();
    }
    let writes_during_loser = db.stats.snapshot().page_writes;
    assert!(
        writes_during_loser > 0,
        "the loser's pages must have been stolen"
    );
    db.log.flush_all().unwrap();
    let path = db.crash();

    let db = Db::open(&path, tiny_opts()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert_eq!(outcome.losers.len(), 1);
    assert!(outcome.undone > 0);
    let report = db.verify_consistency().unwrap();
    assert_eq!(
        report.rows, 200,
        "every stolen uncommitted change must be rolled back"
    );
    let txn = db.begin();
    assert!(db
        .fetch_via(&txn, "t_pk", b"k001500", FetchCond::Eq)
        .unwrap()
        .is_none());
    db.commit(&txn).unwrap();
}

#[test]
fn recovery_itself_works_with_a_tiny_pool() {
    // Restart with 16 frames over a database whose redo set is far larger
    // than the pool: recovery evicts and re-fixes pages as it goes.
    let dir = TempDir::new("steal");
    let db = Db::open(dir.path(), DbOptions::default()).unwrap();
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    let txn = db.begin();
    for i in 0..3000 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    let path = db.crash();

    let db = Db::open(&path, tiny_opts()).unwrap();
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 3000);
    assert_eq!(db.stats.snapshot().redo_traversals, 0);
}
