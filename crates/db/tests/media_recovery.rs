//! Media recovery (§5): fuzzy image copy + page-oriented roll-forward.
//!
//! "Dumps of indexes can be taken and when there is a problem in reading a
//! page ... the page can be loaded from the last dump and then, by rolling
//! forward using the log, the page can be brought up-to-date."

use ariesim_common::tmp::TempDir;
use ariesim_common::PAGE_SIZE;
use ariesim_db::{Db, DbOptions, Row};
use ariesim_recovery::ImageCopy;
use ariesim_storage::SpaceMap;

/// Page images with the advisory SM_Bit/Delete_Bit flags masked out: those
/// bits are reset by unlogged hints (DESIGN.md §8), so log roll-forward may
/// legitimately leave them set where the live page has cleared them.
fn normalized(bytes: &[u8]) -> Vec<u8> {
    let mut v = bytes.to_vec();
    v[13] = 0; // flags byte of the common page header
    v
}

fn row(i: u32) -> Row {
    Row::new(vec![
        format!("k{i:06}").into_bytes(),
        format!("v{i}").into_bytes(),
    ])
}

fn setup(dir: &TempDir, rows: u32) -> std::sync::Arc<Db> {
    let db = Db::open(dir.path(), DbOptions::default()).unwrap();
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    let txn = db.begin();
    for i in 0..rows {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();
    db
}

#[test]
fn damaged_page_recovers_from_dump_plus_roll_forward() {
    let dir = TempDir::new("media");
    let db = setup(&dir, 800);
    let pages = SpaceMap::new(db.pool.clone()).allocated_pages().unwrap();
    let copy = ImageCopy::take(&db.pool, &db.log, &pages).unwrap();

    // Updates AFTER the dump (these must come back via roll-forward).
    let txn = db.begin();
    for i in 800..900 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();

    // "Damage" an index leaf: recover it from the dump.
    let tree = db.tree_by_name("t_pk").unwrap();
    let victim = tree.leaf_for_value(b"k000400").unwrap();
    let recovered = copy
        .recover_page(&db.log, &db.rms, victim, &db.stats)
        .unwrap();
    // The recovered image must equal the live page byte-for-byte.
    let live = db.pool.fix_s(victim).unwrap();
    assert_eq!(
        normalized(recovered.as_bytes().as_slice()),
        normalized(live.as_bytes().as_slice()),
        "roll-forward must reproduce the live page exactly (modulo hint bits)"
    );
    drop(live);
    assert_eq!(db.stats.snapshot().media_recovery_passes, 1);
}

#[test]
fn restore_into_pool_after_disk_corruption() {
    let dir = TempDir::new("media");
    let db = setup(&dir, 500);
    let pages = SpaceMap::new(db.pool.clone()).allocated_pages().unwrap();
    let copy = ImageCopy::take(&db.pool, &db.log, &pages).unwrap();
    let txn = db.begin();
    for i in 500..600 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();

    let tree = db.tree_by_name("t_pk").unwrap();
    let victim = tree.leaf_for_value(b"k000100").unwrap();
    // Corrupt the page ON DISK (as if a write was torn), then flush nothing:
    // simulate a clean shutdown where the page read later fails its check.
    {
        use std::io::{Seek, SeekFrom, Write};
        db.pool.flush_all().unwrap();
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.file("pages"))
            .unwrap();
        f.seek(SeekFrom::Start(victim.0 as u64 * PAGE_SIZE as u64))
            .unwrap();
        f.write_all(&vec![0xDE; PAGE_SIZE]).unwrap();
    }
    // The buffer pool still holds the good version; media recovery rebuilds
    // the image independently and reinstalls it (and eviction will rewrite
    // the disk copy, WAL rule and all).
    copy.restore_into(&db.pool, &db.log, &db.rms, victim, &db.stats)
        .unwrap();
    db.pool.flush_all().unwrap();
    // Now even a cold read sees the recovered page.
    let img = db.pool.disk().read_page(victim).unwrap();
    assert_eq!(img.page_id(), victim);
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 600);
}

#[test]
fn every_index_page_recoverable_from_one_dump() {
    // The §5 claim at full width: every page of the index can be rebuilt
    // from dump + log, one page at a time (one log pass per page — counted).
    let dir = TempDir::new("media");
    let db = setup(&dir, 600);
    let pages = SpaceMap::new(db.pool.clone()).allocated_pages().unwrap();
    let copy = ImageCopy::take(&db.pool, &db.log, &pages).unwrap();
    let txn = db.begin();
    for i in 600..700 {
        db.insert_row(&txn, "t", &row(i)).unwrap();
    }
    db.commit(&txn).unwrap();

    for &p in &copy.page_ids() {
        let recovered = copy.recover_page(&db.log, &db.rms, p, &db.stats).unwrap();
        let live = db.pool.fix_s(p).unwrap();
        assert_eq!(
            normalized(recovered.as_bytes().as_slice()),
            normalized(live.as_bytes().as_slice()),
            "page {p} diverged"
        );
    }
    assert_eq!(
        db.stats.snapshot().media_recovery_passes,
        copy.page_ids().len() as u64
    );
}
