//! Concurrency meets recovery: multi-threaded workloads followed by
//! crashes, repeated crash/recover cycles, and checkpoints taken while the
//! workload is live (fuzzy checkpoints quiesce nothing — §1.2).

use ariesim_common::tmp::TempDir;
use ariesim_common::Error;
use ariesim_db::{Db, DbOptions, FetchCond, Row};
use std::collections::BTreeSet;
use std::sync::Arc;

fn row(t: u32, i: u32) -> Row {
    Row::new(vec![
        format!("t{t}-k{i:06}").into_bytes(),
        format!("v{i}").into_bytes(),
    ])
}

fn key_of(t: u32, i: u32) -> Vec<u8> {
    format!("t{t}-k{i:06}").into_bytes()
}

fn setup(dir: &TempDir) -> Arc<Db> {
    let db = Db::open(dir.path(), DbOptions::default()).unwrap();
    db.create_table("t", 2).unwrap();
    db.create_index("t_pk", "t", 0, true).unwrap();
    db
}

#[test]
fn concurrent_workload_then_crash_preserves_all_commits() {
    let dir = TempDir::new("ccrash");
    let db = setup(&dir);
    let committed: parking_lot::Mutex<BTreeSet<(u32, u32)>> =
        parking_lot::Mutex::new(BTreeSet::new());
    std::thread::scope(|s| {
        for t in 0..6u32 {
            let db = db.clone();
            let committed = &committed;
            s.spawn(move || {
                for round in 0..5u32 {
                    let txn = db.begin();
                    let mut mine = Vec::new();
                    for i in 0..30u32 {
                        let id = round * 100 + i;
                        match db.insert_row(&txn, "t", &row(t, id)) {
                            Ok(_) => mine.push(id),
                            Err(Error::Deadlock { .. }) => {
                                db.rollback(&txn).unwrap();
                                mine.clear();
                                break;
                            }
                            Err(e) => panic!("{e}"),
                        }
                    }
                    if mine.is_empty() {
                        continue;
                    }
                    if round % 2 == 0 {
                        db.commit(&txn).unwrap();
                        let mut c = committed.lock();
                        c.extend(mine.into_iter().map(|i| (t, i)));
                    } else {
                        db.rollback(&txn).unwrap();
                    }
                }
            });
        }
    });
    let expected = committed.into_inner();
    let path = db.crash();

    let db = Db::open(&path, DbOptions::default()).unwrap();
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, expected.len());
    let txn = db.begin();
    // Spot-check a sample of committed rows.
    for (t, i) in expected.iter().take(50) {
        assert!(
            db.fetch_via(&txn, "t_pk", &key_of(*t, *i), FetchCond::Eq)
                .unwrap()
                .is_some(),
            "committed row t{t}/{i} lost"
        );
    }
    db.commit(&txn).unwrap();
}

#[test]
fn checkpoint_during_live_workload_is_fuzzy() {
    let dir = TempDir::new("ccrash");
    let db = setup(&dir);
    // Writers run while the main thread takes checkpoints.
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let db = db.clone();
            s.spawn(move || {
                for round in 0..4u32 {
                    let txn = db.begin();
                    for i in 0..50u32 {
                        db.insert_row(&txn, "t", &row(t, round * 1000 + i)).unwrap();
                    }
                    db.commit(&txn).unwrap();
                }
            });
        }
        for _ in 0..5 {
            db.checkpoint().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    });
    let path = db.crash();
    let db = Db::open(&path, DbOptions::default()).unwrap();
    let outcome = db.restart_outcome.as_ref().unwrap();
    assert!(!outcome.ckpt_lsn.is_null(), "analysis started from a checkpoint");
    let report = db.verify_consistency().unwrap();
    assert_eq!(report.rows, 4 * 4 * 50);
}

#[test]
fn five_crash_recover_cycles_with_work_between() {
    let dir = TempDir::new("ccrash");
    let mut path = {
        let db = setup(&dir);
        db.crash()
    };
    let mut expected = 0usize;
    for cycle in 0..5u32 {
        let db = Db::open(&path, DbOptions::default()).unwrap();
        assert_eq!(db.verify_consistency().unwrap().rows, expected);
        // Committed work.
        let txn = db.begin();
        for i in 0..60u32 {
            db.insert_row(&txn, "t", &row(cycle, i)).unwrap();
        }
        db.commit(&txn).unwrap();
        expected += 60;
        // A loser, flushed but never committed.
        let loser = db.begin();
        for i in 100..140u32 {
            db.insert_row(&loser, "t", &row(cycle, i)).unwrap();
        }
        db.log.flush_all().unwrap();
        path = db.crash();
    }
    let db = Db::open(&path, DbOptions::default()).unwrap();
    assert_eq!(db.verify_consistency().unwrap().rows, expected);
}

#[test]
fn crash_recover_crash_without_any_intervening_work() {
    // Recovery must itself be crash-safe: its CLRs make the second restart
    // a pure redo of the first one's compensation.
    let dir = TempDir::new("ccrash");
    let db = setup(&dir);
    let txn = db.begin();
    for i in 0..200u32 {
        db.insert_row(&txn, "t", &row(0, i)).unwrap();
    }
    db.commit(&txn).unwrap();
    let loser = db.begin();
    for i in 500..620u32 {
        db.insert_row(&loser, "t", &row(0, i)).unwrap();
    }
    db.log.flush_all().unwrap();
    let mut path = db.crash();
    for _ in 0..3 {
        let db = Db::open(&path, DbOptions::default()).unwrap();
        assert_eq!(db.verify_consistency().unwrap().rows, 200);
        path = db.crash(); // crash again immediately, pages unflushed
    }
}
