//! Whole-database verification: the oracle the crash-recovery experiments
//! check against.
//!
//! [`Db::verify_consistency`] asserts, for every table:
//!
//! * each index passes the B+-tree structural checker;
//! * index contents and heap contents agree exactly (every row's indexed
//!   value appears once under its RID; no dangling index keys);
//!
//! and is used after restart to demonstrate the paper's recovery guarantees:
//! committed effects present, loser effects gone, structure intact.

use crate::{Db, Row};
use ariesim_common::{Error, IndexKey, Result};
use std::collections::BTreeSet;

/// Summary of a consistent database.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DbReport {
    pub tables: usize,
    pub rows: usize,
    pub indexes: usize,
    pub index_keys: usize,
}

impl Db {
    /// Full consistency check; call quiesced (no running transactions).
    pub fn verify_consistency(&self) -> Result<DbReport> {
        let (tables, indexes) = {
            let cat = self.catalog.lock();
            (cat.tables(), cat.indexes())
        };
        let mut report = DbReport {
            tables: tables.len(),
            indexes: indexes.len(),
            ..Default::default()
        };
        for t in &tables {
            let rows = self.heap.scan_all(t.first_page)?;
            report.rows += rows.len();
            for ix in indexes.iter().filter(|i| i.table == t.id) {
                let tree = {
                    let cat = self.catalog.lock();
                    cat.tree(ix.id)
                        .ok_or_else(|| Error::Internal(format!("index {} not open", ix.name)))?
                };
                tree.check_structure()?;
                let keys = tree.scan_all_unlocked()?;
                report.index_keys += keys.len();
                // Heap → index: every row's value under its RID, exactly once.
                let key_set: BTreeSet<IndexKey> = keys.iter().cloned().collect();
                if key_set.len() != keys.len() {
                    return Err(Error::Internal(format!(
                        "index {}: duplicate full keys",
                        ix.name
                    )));
                }
                let mut expected = BTreeSet::new();
                for (rid, bytes) in &rows {
                    let row = Row::decode(bytes)?;
                    expected.insert(IndexKey::new(
                        row.field(ix.column as usize)?.to_vec(),
                        *rid,
                    ));
                }
                if expected != key_set {
                    let missing: Vec<_> = expected.difference(&key_set).take(3).collect();
                    let dangling: Vec<_> = key_set.difference(&expected).take(3).collect();
                    return Err(Error::Internal(format!(
                        "index {} out of sync with heap: missing {:?}, dangling {:?}",
                        ix.name, missing, dangling
                    )));
                }
            }
        }
        Ok(report)
    }
}
