//! Row encoding and table-level DML: heap + index maintenance in one place,
//! following the paper's data-only-locking division of labour (§2.1):
//!
//! * the record manager's commit X lock on the RID *is* the index key lock
//!   for inserts and deletes — the index manager takes no current-key lock
//!   (only next-key locks);
//! * an index fetch's commit S lock on the key (= the RID) means the record
//!   read that follows takes no lock of its own.

use crate::{Db, FetchCond};
use ariesim_btree::fetch::FetchResult;
use ariesim_common::codec::{Reader, Writer};
use ariesim_common::{Error, IndexKey, Result, Rid};
use ariesim_txn::TxnHandle;

/// A row: a list of byte-string fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    pub fields: Vec<Vec<u8>>,
}

impl Row {
    pub fn new(fields: Vec<Vec<u8>>) -> Row {
        Row { fields }
    }

    pub fn from_strs(fields: &[&str]) -> Row {
        Row {
            fields: fields.iter().map(|s| s.as_bytes().to_vec()).collect(),
        }
    }

    pub fn field(&self, i: usize) -> Result<&[u8]> {
        self.fields
            .get(i)
            .map(|f| f.as_slice())
            .ok_or_else(|| Error::Internal(format!("row has no field {i}")))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.fields.len() as u16);
        for f in &self.fields {
            w.bytes(f);
        }
        w.into_vec()
    }

    pub fn decode(buf: &[u8]) -> Result<Row> {
        let mut r = Reader::new(buf);
        let n = r.u16()?;
        let fields = (0..n)
            .map(|_| Ok(r.bytes()?.to_vec()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Row { fields })
    }
}

impl Db {
    /// Insert a row: heap insert (which takes the commit X record lock),
    /// then one key insert per index on the table. Returns the RID.
    pub fn insert_row(&self, txn: &TxnHandle, table: &str, row: &Row) -> Result<Rid> {
        let (tdef, indexes) = {
            let cat = self.catalog.lock();
            let t = cat
                .table(table)
                .ok_or_else(|| Error::Internal(format!("no table {table}")))?
                .clone();
            let ix = cat.indexes_on(t.id);
            (t, ix)
        };
        if row.fields.len() != tdef.columns as usize {
            return Err(Error::Internal(format!(
                "row has {} fields, table {table} has {}",
                row.fields.len(),
                tdef.columns
            )));
        }
        let rid = self
            .heap
            .insert(txn, tdef.id, tdef.first_page, &row.encode())?;
        for ix in indexes {
            let tree = self
                .catalog
                .lock()
                .tree(ix.id)
                .ok_or_else(|| Error::Internal(format!("index {} not open", ix.name)))?;
            let key = IndexKey::new(row.field(ix.column as usize)?.to_vec(), rid);
            tree.insert(txn, &key)?;
        }
        Ok(rid)
    }

    /// Delete the row at `rid`: heap delete (commit X record lock), then one
    /// key delete per index.
    pub fn delete_row(&self, txn: &TxnHandle, table: &str, rid: Rid) -> Result<Row> {
        let (tdef, indexes) = {
            let cat = self.catalog.lock();
            let t = cat
                .table(table)
                .ok_or_else(|| Error::Internal(format!("no table {table}")))?
                .clone();
            let ix = cat.indexes_on(t.id);
            (t, ix)
        };
        let old = self.heap.delete(txn, tdef.id, rid)?;
        let row = Row::decode(&old)?;
        for ix in indexes {
            let tree = self
                .catalog
                .lock()
                .tree(ix.id)
                .ok_or_else(|| Error::Internal(format!("index {} not open", ix.name)))?;
            let key = IndexKey::new(row.field(ix.column as usize)?.to_vec(), rid);
            tree.delete(txn, &key)?;
        }
        Ok(row)
    }

    /// Update the row at `rid` in place: heap update (commit X record lock,
    /// which under data-only locking covers the index keys too), then a key
    /// delete + insert on every index whose column actually changed.
    pub fn update_row(&self, txn: &TxnHandle, table: &str, rid: Rid, new: &Row) -> Result<()> {
        let (tdef, indexes) = {
            let cat = self.catalog.lock();
            let t = cat
                .table(table)
                .ok_or_else(|| Error::Internal(format!("no table {table}")))?
                .clone();
            let ix = cat.indexes_on(t.id);
            (t, ix)
        };
        if new.fields.len() != tdef.columns as usize {
            return Err(Error::Internal(format!(
                "row has {} fields, table {table} has {}",
                new.fields.len(),
                tdef.columns
            )));
        }
        let old = Row::decode(&self.heap.update(txn, tdef.id, rid, &new.encode())?)?;
        for ix in indexes {
            let col = ix.column as usize;
            let (ov, nv) = (old.field(col)?, new.field(col)?);
            if ov == nv {
                continue;
            }
            let tree = self
                .catalog
                .lock()
                .tree(ix.id)
                .ok_or_else(|| Error::Internal(format!("index {} not open", ix.name)))?;
            tree.delete(txn, &IndexKey::new(ov.to_vec(), rid))?;
            tree.insert(txn, &IndexKey::new(nv.to_vec(), rid))?;
        }
        Ok(())
    }

    /// Fetch the first row whose indexed value satisfies (`value`, `cond`),
    /// via the named index. Under data-only locking the index's key lock is
    /// the record lock, so the heap read is lock-free (§2.1).
    pub fn fetch_via(
        &self,
        txn: &TxnHandle,
        index: &str,
        value: &[u8],
        cond: FetchCond,
    ) -> Result<Option<(Rid, Row)>> {
        let tree = self.tree_by_name(index)?;
        match tree.fetch(txn, value, cond)? {
            FetchResult::Found(key) => {
                let already_locked =
                    tree.protocol == ariesim_btree::LockProtocol::DataOnly;
                if !already_locked {
                    // Index-specific locking: the record manager locks too.
                }
                let bytes = self.heap.fetch(txn, key.rid, already_locked)?;
                Ok(Some((key.rid, Row::decode(&bytes)?)))
            }
            FetchResult::NotFound => Ok(None),
        }
    }

    /// Range scan via an index: rows with indexed value in
    /// [`from`, `to`) — RR-correct (the terminating key gets locked too).
    pub fn scan_range(
        &self,
        txn: &TxnHandle,
        index: &str,
        from: &[u8],
        to: &[u8],
    ) -> Result<Vec<(Rid, Row)>> {
        let tree = self.tree_by_name(index)?;
        let already_locked = tree.protocol == ariesim_btree::LockProtocol::DataOnly;
        let mut out = Vec::new();
        let (first, cursor) = tree.open_scan(txn, from, FetchCond::Ge)?;
        let Some(mut key) = first else {
            return Ok(out);
        };
        let mut cursor = cursor.expect("cursor accompanies a found key");
        loop {
            if key.value.as_slice() >= to {
                break; // the stop key is locked: the range edge is protected
            }
            let bytes = self.heap.fetch(txn, key.rid, already_locked)?;
            out.push((key.rid, Row::decode(&bytes)?));
            match tree.fetch_next(txn, &mut cursor)? {
                Some(k) => key = k,
                None => break, // EOF lock taken by fetch_next
            }
        }
        Ok(out)
    }

    /// Look up an opened tree handle by index name.
    pub fn tree_by_name(&self, index: &str) -> Result<std::sync::Arc<ariesim_btree::BTree>> {
        let cat = self.catalog.lock();
        let def = cat
            .index(index)
            .ok_or_else(|| Error::Internal(format!("no index {index}")))?;
        cat.tree(def.id)
            .ok_or_else(|| Error::Internal(format!("index {index} not open")))
    }

    /// First heap page of a table (verification helpers).
    pub fn table_first_page(&self, table: &str) -> Result<ariesim_common::PageId> {
        let cat = self.catalog.lock();
        Ok(cat
            .table(table)
            .ok_or_else(|| Error::Internal(format!("no table {table}")))?
            .first_page)
    }
}
