//! Facade engine: a small multi-table database assembled from the ARIES/IM
//! stack, with crash simulation and restart.
//!
//! This is what the examples, the cross-crate tests and the benchmark
//! harness drive. It wires together the write-ahead log, buffer pool, lock
//! manager, heap record manager, ARIES/IM B+-tree indexes and restart
//! recovery, and implements the *data-only locking* contract of the paper's
//! §2.1: the record manager's commit-duration X lock on a RID covers every
//! index key derived from that record, and an index fetch's S lock on a key
//! covers the subsequent record read.
//!
//! Crash simulation: [`Db::crash`] drops every volatile structure without
//! flushing; reopening with [`Db::open`] runs ARIES restart over exactly
//! {flushed log prefix, on-disk pages}. [`Db::crash_truncating_log_to`]
//! additionally truncates the durable log at a chosen LSN, simulating a
//! crash at an *earlier* instant (e.g. mid-SMO, before a dummy CLR reached
//! disk — the Figure 11 family of states).

pub mod catalog;
pub mod table;
pub mod verify;

use ariesim_btree::{BTree, IndexRm, LockProtocol};
use ariesim_common::stats::{new_stats, StatsHandle};
use ariesim_common::{Error, IndexId, Lsn, Result, TableId};
use ariesim_lock::LockManager;
use ariesim_record::HeapManager;
use ariesim_recovery::RestartOutcome;
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim_txn::{RmRegistry, TransactionManager, TxnHandle};
use ariesim_wal::{LogManager, LogOptions};
use catalog::{Catalog, IndexDef, TableDef};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use ariesim_btree::fetch::{FetchCond, FetchResult};
pub use table::Row;

/// Database configuration.
#[derive(Clone, Debug)]
pub struct DbOptions {
    /// Buffer pool frames.
    pub frames: usize,
    /// Buffer-pool page-table partitions (0 = auto; see
    /// [`PoolOptions::partitions`]).
    pub pool_partitions: usize,
    /// Buffer-pool eviction policy.
    pub eviction: ariesim_storage::EvictionPolicyKind,
    /// Background-writer tick interval (`None` = foreground-only
    /// write-back).
    pub bg_writer: Option<std::time::Duration>,
    /// Index locking protocol (paper §2.1).
    pub protocol: LockProtocol,
    /// Data-only locking at page granularity: lock data pages instead of
    /// records (§2.1's "the locking granularity (page, record, ...)
    /// associated with the table/file"). Fewer locks, less concurrency.
    pub page_granularity: bool,
    /// fsync the log on every force (off for tests; crashes are simulated at
    /// process level).
    pub fsync: bool,
    /// Run the WAL's dedicated flusher thread (group commit with committers
    /// never doing log I/O themselves). Off by default: the leader-based
    /// group commit needs no extra thread and is what the deterministic
    /// harnesses (model checker, torture) exercise.
    pub wal_flusher: bool,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            frames: 1024,
            pool_partitions: 0,
            eviction: ariesim_storage::EvictionPolicyKind::Clock,
            bg_writer: None,
            protocol: LockProtocol::DataOnly,
            page_granularity: false,
            fsync: false,
            wal_flusher: false,
        }
    }
}

/// The assembled database engine.
pub struct Db {
    dir: PathBuf,
    opts: DbOptions,
    pub stats: StatsHandle,
    pub log: Arc<LogManager>,
    pub pool: Arc<BufferPool>,
    pub locks: Arc<LockManager>,
    pub rms: Arc<RmRegistry>,
    pub tm: Arc<TransactionManager>,
    pub heap: Arc<HeapManager>,
    pub index_rm: Arc<IndexRm>,
    pub(crate) catalog: Mutex<Catalog>,
    /// Outcome of the restart recovery this open performed (if any work).
    pub restart_outcome: Option<RestartOutcome>,
}

impl Db {
    /// Create or open the database in `dir`, running restart recovery over
    /// whatever state is there.
    pub fn open(dir: &Path, opts: DbOptions) -> Result<Arc<Db>> {
        Db::open_with_obs(dir, opts, ariesim_obs::Obs::disabled())
    }

    /// [`Db::open`] with an explicit observability handle, shared by the
    /// log, pool, lock manager, and every index.
    pub fn open_with_obs(
        dir: &Path,
        opts: DbOptions,
        obs: ariesim_obs::ObsHandle,
    ) -> Result<Arc<Db>> {
        std::fs::create_dir_all(dir)?;
        let stats = new_stats();
        let log = Arc::new(LogManager::open_with_obs(
            &dir.join("wal"),
            LogOptions {
                fsync: opts.fsync,
                flusher: opts.wal_flusher,
                ..LogOptions::default()
            },
            stats.clone(),
            obs.clone(),
        )?);
        let disk = DiskManager::open(&dir.join("pages"), stats.clone())?;
        let fresh = disk.page_count()? == 0;
        let pool = BufferPool::new_with_obs(
            disk,
            log.clone(),
            PoolOptions {
                frames: opts.frames,
                partitions: opts.pool_partitions,
                policy: opts.eviction,
                bg_writer: opts.bg_writer,
                ..PoolOptions::default()
            },
            stats.clone(),
            obs.clone(),
        );
        if fresh {
            SpaceMap::initialize(&pool)?;
            Catalog::format_page(&pool)?;
            pool.flush_all()?;
        }
        let locks = Arc::new(LockManager::new_with_obs(stats.clone(), obs));
        let rms = Arc::new(RmRegistry::new());
        let heap = HeapManager::new_with_granularity(
            pool.clone(),
            locks.clone(),
            log.clone(),
            stats.clone(),
            opts.page_granularity,
        );
        let index_rm = IndexRm::new(pool.clone(), stats.clone());
        rms.register(heap.clone());
        rms.register(index_rm.clone());
        rms.register(Arc::new(SpaceRm::new(pool.clone())));
        let tm = Arc::new(TransactionManager::new(
            log.clone(),
            locks.clone(),
            pool.clone(),
            rms.clone(),
            stats.clone(),
        ));
        let heap_hook = heap.clone();
        tm.on_end(Arc::new(move |txn| heap_hook.on_txn_end(txn)));

        // Load the catalog and register every index with the resource
        // manager *before* recovery: logical undo needs the trees.
        let catalog = Catalog::load(&pool)?;
        let mut trees = Vec::new();
        for def in catalog.indexes() {
            let tree = BTree::new_with_granularity(
                def.id,
                def.root,
                def.unique,
                opts.protocol,
                opts.page_granularity,
                pool.clone(),
                locks.clone(),
                log.clone(),
                stats.clone(),
            );
            index_rm.register_tree(tree.clone());
            trees.push(tree);
        }

        // Restart recovery (a no-op scan on a fresh database).
        let outcome = ariesim_recovery::restart(&log, &pool, &rms, &stats)?;
        tm.resume_txn_ids_after(outcome.max_txn_id);

        let mut catalog = catalog;
        for tree in trees {
            catalog.attach_tree(tree);
        }
        Ok(Arc::new(Db {
            dir: dir.to_path_buf(),
            opts,
            stats,
            log,
            pool,
            locks,
            rms,
            tm,
            heap,
            index_rm,
            catalog: Mutex::new(catalog),
            restart_outcome: Some(outcome),
        }))
    }

    /// The directory this database lives in.
    pub fn dir(&self) -> &Path {
        self.dir.as_path()
    }

    pub fn options(&self) -> &DbOptions {
        &self.opts
    }

    /// The observability handle this engine reports through.
    pub fn obs(&self) -> &ariesim_obs::ObsHandle {
        self.pool.obs()
    }

    // --- transactions ---------------------------------------------------

    pub fn begin(&self) -> Arc<TxnHandle> {
        self.tm.begin()
    }

    pub fn commit(&self, txn: &TxnHandle) -> Result<()> {
        self.tm.commit(txn)
    }

    pub fn rollback(&self, txn: &TxnHandle) -> Result<()> {
        self.tm.rollback(txn)
    }

    pub fn checkpoint(&self) -> Result<Lsn> {
        self.tm.checkpoint()
    }

    /// Take a savepoint in `txn` (roll back to it with
    /// [`rollback_to`](Self::rollback_to) — ARIES partial rollback, §1.2).
    pub fn savepoint(&self, txn: &TxnHandle) -> Lsn {
        txn.savepoint()
    }

    /// Partial rollback: undo everything `txn` did after `savepoint`; the
    /// transaction stays active and keeps its locks.
    pub fn rollback_to(&self, txn: &TxnHandle, savepoint: Lsn) -> Result<()> {
        self.tm.rollback_to(txn, savepoint)
    }

    // --- DDL ---------------------------------------------------------------
    //
    // DDL runs inside a system transaction for its page-level effects
    // (allocation, root/first-page formatting are all logged); the catalog
    // entry itself is force-written at commit (see DESIGN.md §4).

    /// Create a table with `columns` columns.
    pub fn create_table(&self, name: &str, columns: usize) -> Result<TableId> {
        let mut cat = self.catalog.lock();
        if cat.table(name).is_some() {
            return Err(Error::Internal(format!("table {name} already exists")));
        }
        let txn = self.tm.begin();
        let id = cat.next_table_id();
        let first_page = self.heap.create_file(&txn, id)?;
        self.tm.commit(&txn)?;
        cat.add_table(TableDef {
            id,
            name: name.to_string(),
            first_page,
            columns: columns as u16,
        });
        cat.persist(&self.pool)?;
        self.pool.flush_all()?;
        Ok(id)
    }

    /// Create an index on `table`'s column `column`. Backfills from existing
    /// rows inside the DDL transaction.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        column: usize,
        unique: bool,
    ) -> Result<IndexId> {
        let mut cat = self.catalog.lock();
        let tdef = cat
            .table(table)
            .ok_or_else(|| Error::Internal(format!("no table {table}")))?
            .clone();
        if cat.index(name).is_some() {
            return Err(Error::Internal(format!("index {name} already exists")));
        }
        let txn = self.tm.begin();
        let id = cat.next_index_id();
        let root = BTree::create(&txn, id, &self.pool, &self.log)?;
        let tree = BTree::new_with_granularity(
            id,
            root,
            unique,
            self.opts.protocol,
            self.opts.page_granularity,
            self.pool.clone(),
            self.locks.clone(),
            self.log.clone(),
            self.stats.clone(),
        );
        self.index_rm.register_tree(tree.clone());
        // Backfill.
        for (rid, bytes) in self.heap.scan_all(tdef.first_page)? {
            let row = Row::decode(&bytes)?;
            let value = row.field(column)?;
            tree.insert(
                &txn,
                &ariesim_common::IndexKey::new(value.to_vec(), rid),
            )?;
        }
        self.tm.commit(&txn)?;
        let def = IndexDef {
            id,
            name: name.to_string(),
            table: tdef.id,
            root,
            column: column as u16,
            unique,
        };
        cat.add_index(def, tree);
        cat.persist(&self.pool)?;
        self.pool.flush_all()?;
        Ok(id)
    }

    /// Simulate a crash: drop all volatile state without flushing anything.
    /// Returns the directory; reopen with [`Db::open`] to run recovery.
    ///
    /// Consumes the engine. Pending guards/transactions must be gone; the
    /// caller holds the only remaining `Arc`.
    pub fn crash(self: Arc<Db>) -> PathBuf {
        let dir = self.dir.clone();
        drop(self);
        dir
    }

    /// Crash *and* lose the durable log tail beyond `keep_to`: truncates the
    /// log file at that LSN. Simulates the system failing at the moment the
    /// log had only been forced that far (e.g. mid-SMO, before the dummy
    /// CLR). `keep_to` must be a record boundary (an LSN returned by the log)
    /// and at least the current flushed point of any on-disk page — the
    /// caller arranges pool sizes so no page with a later LSN was stolen.
    pub fn crash_truncating_log_to(self: Arc<Db>, keep_to: Lsn) -> Result<PathBuf> {
        self.log.flush_all()?;
        let dir = self.dir.clone();
        drop(self);
        let log_path = dir.join("wal");
        let f = std::fs::OpenOptions::new().write(true).open(&log_path)?;
        f.set_len(keep_to.0)?;
        Ok(dir)
    }

    /// Record boundaries of the current log (LSN of every record), for
    /// choosing crash points.
    pub fn log_record_lsns(&self) -> Vec<Lsn> {
        self.log
            .scan(Lsn::NULL)
            .filter_map(|r| r.ok().map(|r| r.lsn))
            .collect()
    }
}
