//! The catalog: table and index definitions, persisted in the catalog page.
//!
//! DDL is rare and setup-time in this reproduction, so catalog changes are
//! force-written rather than logged (DESIGN.md §4): `persist` rewrites the
//! catalog page's cells and the caller flushes. The page-level *effects* of
//! DDL (page allocation, root formatting) are fully logged as usual.

use ariesim_btree::BTree;
use ariesim_common::codec::{Reader, Writer};
use ariesim_common::page::PageType;
use ariesim_common::{Error, IndexId, Lsn, PageId, Result, TableId};
use ariesim_storage::BufferPool;
use std::collections::HashMap;
use std::sync::Arc;

/// Page 2 holds the catalog (page 0 is the NULL sentinel, page 1 the space
/// map).
pub const CATALOG_PAGE: PageId = PageId(2);

#[derive(Clone, Debug)]
pub struct TableDef {
    pub id: TableId,
    pub name: String,
    pub first_page: PageId,
    pub columns: u16,
}

#[derive(Clone, Debug)]
pub struct IndexDef {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    pub root: PageId,
    pub column: u16,
    pub unique: bool,
}

/// In-memory catalog plus the opened B+-tree handles.
pub struct Catalog {
    tables: HashMap<String, TableDef>,
    indexes: HashMap<String, IndexDef>,
    trees: HashMap<IndexId, Arc<BTree>>,
    next_table: u32,
    next_index: u32,
}

impl Catalog {
    /// Format the catalog page on a fresh database.
    pub fn format_page(pool: &Arc<BufferPool>) -> Result<()> {
        let mut g = pool.fix_x(CATALOG_PAGE)?;
        g.format(CATALOG_PAGE, PageType::Header, 0, 0);
        g.mark_dirty_raw(Lsn::FIRST);
        Ok(())
    }

    /// Load the catalog from its page.
    pub fn load(pool: &Arc<BufferPool>) -> Result<Catalog> {
        let g = pool.fix_s(CATALOG_PAGE)?;
        let mut cat = Catalog {
            tables: HashMap::new(),
            indexes: HashMap::new(),
            trees: HashMap::new(),
            next_table: 1,
            next_index: 1,
        };
        for i in 0..g.slot_count() {
            let Some(cell) = g.cell(i) else { continue };
            let mut r = Reader::new(cell);
            match r.u8()? {
                1 => {
                    let id = r.table_id()?;
                    let first_page = r.page_id()?;
                    let columns = r.u16()?;
                    let name = String::from_utf8_lossy(r.bytes()?).into_owned();
                    cat.next_table = cat.next_table.max(id.0 + 1);
                    cat.tables.insert(
                        name.clone(),
                        TableDef {
                            id,
                            name,
                            first_page,
                            columns,
                        },
                    );
                }
                2 => {
                    let id = r.index_id()?;
                    let table = r.table_id()?;
                    let root = r.page_id()?;
                    let column = r.u16()?;
                    let unique = r.u8()? != 0;
                    let name = String::from_utf8_lossy(r.bytes()?).into_owned();
                    cat.next_index = cat.next_index.max(id.0 + 1);
                    cat.indexes.insert(
                        name.clone(),
                        IndexDef {
                            id,
                            name,
                            table,
                            root,
                            column,
                            unique,
                        },
                    );
                }
                other => {
                    return Err(Error::CorruptPage {
                        page: CATALOG_PAGE,
                        reason: format!("bad catalog entry tag {other}"),
                    })
                }
            }
        }
        Ok(cat)
    }

    /// Rewrite the catalog page with the current definitions (force-written by caller).
    pub fn persist(&self, pool: &Arc<BufferPool>) -> Result<()> {
        let mut g = pool.fix_x(CATALOG_PAGE)?;
        g.format(CATALOG_PAGE, PageType::Header, 0, 0);
        let mut slot = 0u16;
        for t in self.tables.values() {
            let mut w = Writer::new();
            w.u8(1)
                .table_id(t.id)
                .page_id(t.first_page)
                .u16(t.columns)
                .bytes(t.name.as_bytes());
            g.insert_cell_at(slot, &w.into_vec())?;
            slot += 1;
        }
        for ix in self.indexes.values() {
            let mut w = Writer::new();
            w.u8(2)
                .index_id(ix.id)
                .table_id(ix.table)
                .page_id(ix.root)
                .u16(ix.column)
                .u8(ix.unique as u8)
                .bytes(ix.name.as_bytes());
            g.insert_cell_at(slot, &w.into_vec())?;
            slot += 1;
        }
        g.mark_dirty_raw(Lsn::FIRST);
        Ok(())
    }

    pub fn next_table_id(&mut self) -> TableId {
        let id = TableId(self.next_table);
        self.next_table += 1;
        id
    }

    pub fn next_index_id(&mut self) -> IndexId {
        let id = IndexId(self.next_index);
        self.next_index += 1;
        id
    }

    pub fn add_table(&mut self, def: TableDef) {
        self.tables.insert(def.name.clone(), def);
    }

    pub fn add_index(&mut self, def: IndexDef, tree: Arc<BTree>) {
        self.trees.insert(def.id, tree);
        self.indexes.insert(def.name.clone(), def);
    }

    pub fn attach_tree(&mut self, tree: Arc<BTree>) {
        self.trees.insert(tree.index_id, tree);
    }

    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(name)
    }

    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.get(name)
    }

    pub fn tree(&self, id: IndexId) -> Option<Arc<BTree>> {
        self.trees.get(&id).cloned()
    }

    pub fn tables(&self) -> Vec<TableDef> {
        let mut v: Vec<TableDef> = self.tables.values().cloned().collect();
        v.sort_by_key(|t| t.id);
        v
    }

    pub fn indexes(&self) -> Vec<IndexDef> {
        let mut v: Vec<IndexDef> = self.indexes.values().cloned().collect();
        v.sort_by_key(|i| i.id);
        v
    }

    /// Indexes defined on a table, in id order.
    pub fn indexes_on(&self, table: TableId) -> Vec<IndexDef> {
        let mut v: Vec<IndexDef> = self
            .indexes
            .values()
            .filter(|i| i.table == table)
            .cloned()
            .collect();
        v.sort_by_key(|i| i.id);
        v
    }
}
