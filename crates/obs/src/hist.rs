//! Power-of-two-bucket latency histograms.
//!
//! Bucket `i` covers durations of `[2^i, 2^(i+1))` nanoseconds (bucket 0
//! also absorbs 0 ns). Recording is a single relaxed `fetch_add` on the hot
//! path, so histograms can sit inside latch- and lock-acquisition paths
//! without perturbing what they measure. Like the counters in
//! `ariesim_common::stats`, they order nothing and must never be used for
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log2 buckets: covers up to 2^63 ns (~292 years).
pub const BUCKETS: usize = 64;

/// Live histogram; record from any thread, snapshot from any thread.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// Log2 bucket index for a duration in nanoseconds.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    63 - ns.max(1).leading_zeros() as usize
}

/// Inclusive upper bound (ns) of bucket `i`, used as its representative
/// (and as the `le` bound in Prometheus exposition).
#[inline]
pub fn bucket_top(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl LatencyHistogram {
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record the elapsed time since `start`, if a timer was started
    /// (`None` means observability was disabled at the timer site).
    pub fn record_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(t.elapsed());
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (for per-shard or per-run merges).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Value (ns) at or below which a `q` fraction of samples fall.
    /// Resolution is one log2 bucket; the true max caps the answer.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_top(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn p50(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    pub fn max(&self) -> u64 {
        self.max_ns
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A last-value + running-max gauge (e.g. replication lag in bytes).
/// Same discipline as the histograms: relaxed atomics, safe to set from
/// any thread, never used for synchronization.
#[derive(Default)]
pub struct Gauge {
    last: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: u64) {
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn last(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.last.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Format nanoseconds for the report tables: `ns`, `µs`, `ms`, or `s`.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LatencyHistogram::default();
        // 90 fast samples (~100ns), 10 slow (~1ms).
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50() < 256, "p50={}", s.p50());
        assert!(s.quantile_ns(0.89) < 256);
        assert!(s.p95() >= 524_288, "p95={}", s.p95());
        assert_eq!(s.max(), 1_000_000);
        assert_eq!(s.mean_ns(), (90 * 100 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!((s.count, s.p50(), s.p99(), s.max()), (0, 0, 0, 0));
        assert_eq!(s.quantile_ns(0.0), 0);
        assert_eq!(s.quantile_ns(1.0), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = LatencyHistogram::default();
        h.record_ns(700);
        let s = h.snapshot();
        // One sample: every quantile is that sample (the true max caps the
        // bucket-top answer of 1023).
        assert_eq!(s.quantile_ns(0.0), 700);
        assert_eq!(s.p50(), 700);
        assert_eq!(s.p99(), 700);
        assert_eq!(s.quantile_ns(1.0), 700);
        assert_eq!(s.mean_ns(), 700);
    }

    #[test]
    fn saturating_bucket_keeps_quantiles_finite() {
        let h = LatencyHistogram::default();
        h.record_ns(u64::MAX); // lands in the last bucket (i = 63)
        h.record_ns(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_top(BUCKETS - 1), u64::MAX);
        assert_eq!(s.count, 2);
        assert_eq!(s.p50(), u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
        assert_eq!(s.max(), u64::MAX);
        // Out-of-range q is clamped to a valid rank, not a panic.
        assert_eq!(s.quantile_ns(2.0), u64::MAX);
        assert_eq!(s.quantile_ns(-1.0), u64::MAX);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record_ns(10);
        b.record_ns(1000);
        b.record_ns(2000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 3010);
        assert_eq!(s.max_ns, 2000);
    }

    #[test]
    fn concurrent_records_do_not_lose_samples() {
        let h = LatencyHistogram::default();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record_ns(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(15_000), "15.0µs");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
