//! Live latch-protocol invariant monitors.
//!
//! ARIES/IM's concurrency claims rest on three checkable invariants:
//!
//! 1. **Latch depth ≤ 2** — traversal uses latch coupling, so a thread
//!    never holds more than two page latches at once (parent + child;
//!    §3 of the paper).
//! 2. **No unconditional lock wait while holding a page latch** — waiting
//!    for a lock while latched would allow undetectable latch/lock
//!    deadlocks; §2.2 requires conditional requests (and latch release on
//!    denial) instead.
//! 3. **Page-oriented redo** — restart redo never re-traverses the tree;
//!    `redo_traversals` must be exactly 0 after recovery (§10).
//!
//! The monitor tracks page-latch depth in a thread-local (latches are
//! thread-owned, never transferred), keeps violation counters that tests
//! and the `--obs` report read, and can optionally panic at the violation
//! site (`enforce`) so a debug run points straight at the bad code path.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

thread_local! {
    /// Page latches currently held by this thread. Crate-global (not
    /// per-`Obs`) because a thread has one physical latch stack no matter
    /// how many observability handles exist.
    static PAGE_LATCH_DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// Page latches currently held by the calling thread.
pub fn current_latch_depth() -> u64 {
    PAGE_LATCH_DEPTH.with(|d| d.get())
}

/// Maximum page latches a traversal may hold (parent + child).
pub const MAX_LATCH_DEPTH: u64 = 2;

/// Always-on invariant monitor; one per [`crate::Obs`].
#[derive(Default)]
pub struct Monitor {
    /// Highest page-latch depth any thread reached.
    max_latch_depth: AtomicU64,
    /// Times a thread exceeded [`MAX_LATCH_DEPTH`].
    latch_depth_violations: AtomicU64,
    /// Times a thread blocked unconditionally on a lock while latched.
    lock_wait_with_latch_violations: AtomicU64,
    /// Times a latch release was observed with no latch held (bookkeeping
    /// bug in the instrumented code, not a protocol violation per se).
    latch_underflows: AtomicU64,
    /// Tree traversals observed during restart redo (must stay 0).
    redo_traversal_violations: AtomicU64,
    /// Panic at the violation site instead of only counting.
    enforce: AtomicBool,
}

impl Monitor {
    /// Enable or disable panic-on-violation (debug runs and tests).
    pub fn set_enforce(&self, on: bool) {
        self.enforce.store(on, Ordering::Relaxed);
    }

    fn enforcing(&self) -> bool {
        self.enforce.load(Ordering::Relaxed)
    }

    /// A page latch was granted to the calling thread.
    pub fn on_page_latch_acquired(&self, page: u32) {
        let depth = PAGE_LATCH_DEPTH.with(|d| {
            let n = d.get() + 1;
            d.set(n);
            n
        });
        self.max_latch_depth.fetch_max(depth, Ordering::Relaxed);
        if depth > MAX_LATCH_DEPTH {
            self.latch_depth_violations.fetch_add(1, Ordering::Relaxed);
            if self.enforcing() {
                panic!(
                    "latch-protocol violation: thread holds {depth} page latches \
                     (> {MAX_LATCH_DEPTH}) after latching page {page}"
                );
            }
        }
    }

    /// A page latch held by the calling thread was released.
    pub fn on_page_latch_released(&self, page: u32) {
        let underflow = PAGE_LATCH_DEPTH.with(|d| {
            let n = d.get();
            if n == 0 {
                true
            } else {
                d.set(n - 1);
                false
            }
        });
        if underflow {
            self.latch_underflows.fetch_add(1, Ordering::Relaxed);
            if self.enforcing() {
                panic!("latch bookkeeping underflow releasing page {page}");
            }
        }
    }

    /// The calling thread is about to block (unconditionally) on a lock.
    /// Legal only with zero page latches held (§2.2).
    pub fn on_unconditional_lock_wait(&self) {
        let depth = current_latch_depth();
        if depth > 0 {
            self.lock_wait_with_latch_violations
                .fetch_add(1, Ordering::Relaxed);
            if self.enforcing() {
                panic!(
                    "latch-protocol violation: unconditional lock wait while \
                     holding {depth} page latch(es)"
                );
            }
        }
    }

    /// Restart finished; `redo_traversals` is the counter value after the
    /// redo pass. ARIES/IM redo is page-oriented, so it must be 0.
    pub fn on_restart_complete(&self, redo_traversals: u64) {
        if redo_traversals != 0 {
            self.redo_traversal_violations
                .fetch_add(redo_traversals, Ordering::Relaxed);
            if self.enforcing() {
                panic!(
                    "page-oriented-redo violation: restart redo performed \
                     {redo_traversals} tree traversal(s)"
                );
            }
        }
    }

    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            max_latch_depth: self.max_latch_depth.load(Ordering::Relaxed),
            latch_depth_violations: self.latch_depth_violations.load(Ordering::Relaxed),
            lock_wait_with_latch_violations: self
                .lock_wait_with_latch_violations
                .load(Ordering::Relaxed),
            latch_underflows: self.latch_underflows.load(Ordering::Relaxed),
            redo_traversal_violations: self.redo_traversal_violations.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the monitor's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorSnapshot {
    pub max_latch_depth: u64,
    pub latch_depth_violations: u64,
    pub lock_wait_with_latch_violations: u64,
    pub latch_underflows: u64,
    pub redo_traversal_violations: u64,
}

impl MonitorSnapshot {
    /// True when no invariant was ever violated.
    pub fn clean(&self) -> bool {
        self.latch_depth_violations == 0
            && self.lock_wait_with_latch_violations == 0
            && self.latch_underflows == 0
            && self.redo_traversal_violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwind any latch depth this test thread accumulated so tests stay
    /// independent (TLS is per-thread, and the test harness reuses threads).
    fn drain_depth(m: &Monitor) {
        while current_latch_depth() > 0 {
            m.on_page_latch_released(0);
        }
    }

    #[test]
    fn depth_tracking_and_max() {
        let m = Monitor::default();
        drain_depth(&m);
        let base = m.snapshot();
        m.on_page_latch_acquired(1);
        m.on_page_latch_acquired(2);
        assert_eq!(current_latch_depth(), 2);
        m.on_page_latch_released(2);
        m.on_page_latch_acquired(3);
        m.on_page_latch_released(3);
        m.on_page_latch_released(1);
        let s = m.snapshot();
        assert_eq!(s.max_latch_depth, 2);
        assert_eq!(s.latch_depth_violations, base.latch_depth_violations);
        assert_eq!(current_latch_depth(), 0);
    }

    #[test]
    fn depth_violation_counted() {
        let m = Monitor::default();
        std::thread::scope(|s| {
            s.spawn(|| {
                m.on_page_latch_acquired(1);
                m.on_page_latch_acquired(2);
                m.on_page_latch_acquired(3); // one too many
            });
        });
        let s = m.snapshot();
        assert_eq!(s.max_latch_depth, 3);
        assert_eq!(s.latch_depth_violations, 1);
        assert!(!s.clean());
    }

    #[test]
    fn lock_wait_with_latch_counted() {
        let m = Monitor::default();
        std::thread::scope(|s| {
            s.spawn(|| {
                m.on_unconditional_lock_wait(); // depth 0: fine
                m.on_page_latch_acquired(7);
                m.on_unconditional_lock_wait(); // depth 1: violation
                m.on_page_latch_released(7);
            });
        });
        assert_eq!(m.snapshot().lock_wait_with_latch_violations, 1);
    }

    #[test]
    fn redo_traversals_checked() {
        let m = Monitor::default();
        m.on_restart_complete(0);
        assert!(m.snapshot().clean());
        m.on_restart_complete(3);
        assert_eq!(m.snapshot().redo_traversal_violations, 3);
    }

    #[test]
    #[should_panic(expected = "latch-protocol violation")]
    fn enforce_mode_panics() {
        let m = Monitor::default();
        m.set_enforce(true);
        // Run on a dedicated thread so TLS starts at zero, then re-panic.
        let err = std::thread::spawn(move || {
            m.on_page_latch_acquired(1);
            m.on_unconditional_lock_wait();
        })
        .join()
        .unwrap_err();
        std::panic::resume_unwind(err);
    }
}
