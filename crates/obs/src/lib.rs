//! `ariesim-obs` — runtime observability for the ARIES/IM reproduction.
//!
//! Three pillars, all std-only and lock-free on the hot path:
//!
//! * [`hist`] — log2-bucket latency histograms for latch waits, lock
//!   waits, log forces, page I/O, and whole index operations.
//! * [`trace`] — a fixed-capacity seqlock event ring recording typed,
//!   timestamped events (latch hand-offs, lock grants/waits/denials, SMO
//!   windows, traversal restarts, log forces, CLR writes), dumpable as
//!   JSONL.
//! * [`monitor`] — live checks of the latch-protocol invariants the paper
//!   argues for: page-latch depth ≤ 2, no unconditional lock wait while
//!   latched, and page-oriented (traversal-free) restart redo.
//!
//! Everything hangs off an [`Obs`] handle (an `Arc` internally). Engine
//! components accept one via `*_with_obs` constructors; the default is
//! [`Obs::disabled`], which reduces every histogram/trace call to a single
//! branch on a `bool`. Invariant monitoring is always on — it is the
//! cheapest pillar (a thread-local increment) and the most valuable one.

pub mod attrib;
pub mod hist;
pub mod json;
pub mod lockdep;
pub mod monitor;
pub mod registry;
pub mod span;
pub mod trace;

pub use attrib::Attribution;
pub use hist::{fmt_ns, Gauge, HistogramSnapshot, LatencyHistogram};
pub use monitor::{current_latch_depth, Monitor, MonitorSnapshot, MAX_LATCH_DEPTH};
pub use registry::{MetricValue, MetricsRegistry};
pub use span::{SpanGuard, SpanKind, SpanSnapshot, SpanTotals, SPAN_KIND_COUNT, SPAN_NAMES};
pub use trace::{Event, EventKind, EventRing, ModeTag, RingStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared handle to one observability domain (typically one per `Rig`
/// or one per database instance).
pub type ObsHandle = Arc<Obs>;

/// Latency histograms kept by an [`Obs`], one per instrumented site.
#[derive(Default)]
pub struct Histograms {
    /// Time blocked acquiring a page latch (only the wait path).
    pub latch_wait_page: LatencyHistogram,
    /// Time blocked acquiring the index-wide tree latch.
    pub latch_wait_tree: LatencyHistogram,
    /// Time blocked in an unconditional lock wait.
    pub lock_wait: LatencyHistogram,
    /// Duration of a synchronous log force (group commit flush).
    pub log_force: LatencyHistogram,
    /// Disk read of one page into the buffer pool.
    pub page_read: LatencyHistogram,
    /// Disk write of one dirty page out of the buffer pool.
    pub page_write: LatencyHistogram,
    /// Whole `fetch`/`fetch_next` call.
    pub op_fetch: LatencyHistogram,
    /// Whole `insert` call (including any splits it triggered).
    pub op_insert: LatencyHistogram,
    /// Whole `delete` call (including any page deletes it triggered).
    pub op_delete: LatencyHistogram,
    /// One structure modification operation (split or page delete).
    pub op_smo: LatencyHistogram,
    /// Transaction commit, including its log force.
    pub op_commit: LatencyHistogram,
    /// One shipped-chunk ingest into a standby's log.
    pub repl_ingest: LatencyHistogram,
    /// One continuous-redo apply batch on a standby.
    pub repl_apply: LatencyHistogram,
    /// Group-commit batch size **in waiters, not nanoseconds**: each flush
    /// batch records how many committers it satisfied (leader/flusher plus
    /// riders). Reuses the log2-bucket histogram for its cheap percentile
    /// machinery; `p50`/`mean` read as waiter counts.
    pub wal_group_batch: LatencyHistogram,
}

impl Histograms {
    /// Stable (name, histogram) listing used by the report and JSON
    /// exporters; order is the order rows appear in the report.
    pub fn named(&self) -> [(&'static str, &LatencyHistogram); 14] {
        [
            ("latch_wait_page", &self.latch_wait_page),
            ("latch_wait_tree", &self.latch_wait_tree),
            ("lock_wait", &self.lock_wait),
            ("log_force", &self.log_force),
            ("page_read", &self.page_read),
            ("page_write", &self.page_write),
            ("op_fetch", &self.op_fetch),
            ("op_insert", &self.op_insert),
            ("op_delete", &self.op_delete),
            ("op_smo", &self.op_smo),
            ("op_commit", &self.op_commit),
            ("repl_ingest", &self.repl_ingest),
            ("repl_apply", &self.repl_apply),
            ("wal_group_batch", &self.wal_group_batch),
        ]
    }
}

/// Replication lag with explicit units.
///
/// Watermark semantics: the primary's *durable end* is the LSN up to which
/// the log is fsynced and therefore shippable; the standby's *applied LSN*
/// is the watermark below which every record has been redone into its
/// buffer pool (reads at or below it see a consistent prefix). Lag is
/// `durable_end - applied`, published in two units so consumers never have
/// to guess: `bytes` of log and `lsn_delta` in LSN units. In this engine an
/// LSN *is* a byte offset into the log, so the two gauges currently
/// coincide numerically — carrying both keeps the exposition honest if the
/// LSN mapping ever changes (e.g. sharded or compressed logs).
#[derive(Default)]
pub struct ReplLag {
    /// Bytes of durable primary log the standby has not yet applied.
    pub bytes: Gauge,
    /// The same lag as an LSN delta (`durable_end_lsn - applied_lsn`).
    pub lsn_delta: Gauge,
}

impl ReplLag {
    /// Set both units from the two watermarks (see the type-level doc).
    pub fn set_watermarks(&self, durable_end_lsn: u64, applied_lsn: u64) {
        let lag = durable_end_lsn.saturating_sub(applied_lsn);
        self.bytes.set(lag);
        self.lsn_delta.set(lag);
    }

    pub fn reset(&self) {
        self.bytes.reset();
        self.lsn_delta.reset();
    }
}

/// Restart-recovery phases as published by the `recovery_phase` gauge.
pub mod recovery_phase {
    pub const IDLE: u64 = 0;
    pub const ANALYSIS: u64 = 1;
    pub const REDO: u64 = 2;
    pub const UNDO: u64 = 3;
    pub const COMPLETE: u64 = 4;

    pub fn name(v: u64) -> &'static str {
        match v {
            ANALYSIS => "analysis",
            REDO => "redo",
            UNDO => "undo",
            COMPLETE => "complete",
            _ => "idle",
        }
    }
}

/// Live restart-recovery progress, written by `recovery::restart` as it
/// scans and sampled by progress watchers (`torture --progress`). All
/// gauges are relaxed stores; a sampler may see the phase and LSN from
/// adjacent instants, so it should tolerate small inconsistencies.
#[derive(Default)]
pub struct RecoveryProgress {
    /// Current phase (see [`recovery_phase`]).
    pub phase: Gauge,
    /// LSN the current pass has reached.
    pub current_lsn: Gauge,
    /// LSN the pass is driving toward (end of log).
    pub target_lsn: Gauge,
    /// Pages to which redo has actually been applied so far.
    pub pages_redone: Gauge,
    /// Loser transactions still to be rolled back in the undo pass.
    pub losers_remaining: Gauge,
}

impl RecoveryProgress {
    pub fn reset(&self) {
        self.phase.reset();
        self.current_lsn.reset();
        self.target_lsn.reset();
        self.pages_redone.reset();
        self.losers_remaining.reset();
    }
}

/// Instantaneous gauges kept by an [`Obs`]. Unlike the histograms these
/// are always live (a gauge `set` is two relaxed stores): replication lag
/// and recovery progress are operational signals, not profiling ones.
#[derive(Default)]
pub struct Gauges {
    /// Standby replication lag (bytes and LSN delta; see [`ReplLag`]).
    pub repl_lag: ReplLag,
    /// Restart-recovery progress (see [`RecoveryProgress`]).
    pub recovery: RecoveryProgress,
}

/// Buffer-pool traffic counters, bumped by `ariesim_storage::pool` and
/// exposed through the metrics registry. Always live (plain relaxed
/// atomics): the pool is on every page access, so these are the cheapest
/// possible contention telemetry. Per-partition breakdowns live in the pool
/// itself (partition count is not known when the handle is built).
#[derive(Default)]
pub struct PoolCounters {
    /// Page-table hits (frame already resident).
    pub hits: AtomicU64,
    /// Page-table misses (frame loaded from disk).
    pub misses: AtomicU64,
    /// Evictions (a resident page was displaced to make room).
    pub evictions: AtomicU64,
    /// Dirty pages written back by the background writer.
    pub bg_writer_pages: AtomicU64,
    /// Shard-mutex acquisitions that found the mutex already held.
    pub shard_contended: AtomicU64,
}

impl PoolCounters {
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.bg_writer_pages.store(0, Ordering::Relaxed);
        self.shard_contended.store(0, Ordering::Relaxed);
    }
}

/// WAL group-commit counters, bumped by `ariesim_wal::manager` and exposed
/// through the metrics registry. Always live, like [`PoolCounters`]: plain
/// relaxed atomics, no protocol role (the model checker ignores them).
#[derive(Default)]
pub struct WalCounters {
    /// Group-flush batches executed (each is one write + optional fsync).
    pub group_batches: AtomicU64,
    /// Committers whose flush_to was satisfied by a batch they did not
    /// lead: `riders / (batches + riders)` is the amortization ratio.
    pub group_riders: AtomicU64,
}

impl WalCounters {
    pub fn reset(&self) {
        self.group_batches.store(0, Ordering::Relaxed);
        self.group_riders.store(0, Ordering::Relaxed);
    }
}

/// One observability domain: histograms + gauges + event ring + invariant
/// monitor.
pub struct Obs {
    enabled: bool,
    pub hist: Histograms,
    pub gauge: Gauges,
    /// Exact per-kind span self-time totals (see [`span`]).
    pub spans: SpanTotals,
    /// Buffer-pool traffic counters (see [`PoolCounters`]).
    pub pool: PoolCounters,
    /// WAL group-commit counters (see [`WalCounters`]).
    pub wal: WalCounters,
    pub ring: EventRing,
    pub monitor: Monitor,
}

/// Default event-ring capacity for enabled handles (power of two).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl Obs {
    /// A disabled handle: histograms and tracing compile down to one
    /// branch; invariant monitoring stays live (it is nearly free and
    /// guards correctness, not performance).
    pub fn disabled() -> ObsHandle {
        Arc::new(Obs {
            enabled: false,
            hist: Histograms::default(),
            gauge: Gauges::default(),
            spans: SpanTotals::default(),
            pool: PoolCounters::default(),
            wal: WalCounters::default(),
            ring: EventRing::new(8),
            monitor: Monitor::default(),
        })
    }

    /// An enabled handle with an event ring of (at least) `ring_capacity`.
    pub fn enabled(ring_capacity: usize) -> ObsHandle {
        Arc::new(Obs {
            enabled: true,
            hist: Histograms::default(),
            gauge: Gauges::default(),
            spans: SpanTotals::default(),
            pool: PoolCounters::default(),
            wal: WalCounters::default(),
            ring: EventRing::new(ring_capacity),
            monitor: Monitor::default(),
        })
    }

    /// Whether timing/tracing is active. Monitors ignore this.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    /// Start a timer if enabled; pair with
    /// [`LatencyHistogram::record_since`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record a trace event (no-op when disabled).
    #[inline]
    pub fn event(&self, kind: EventKind, mode: ModeTag, txn: u64, page: u32, aux: u64) {
        if self.enabled {
            self.ring.push(kind, mode, txn, page, aux);
        }
    }

    /// Open an attribution span (see [`span`]). The returned guard closes
    /// the span when dropped; on a disabled handle it is an inert value.
    #[inline]
    pub fn span(&self, kind: SpanKind, txn: u64, page: u32) -> SpanGuard<'_> {
        span::begin(self, kind, txn, page)
    }

    /// Reset histograms, gauges, span totals, and the event ring (monitor
    /// counters persist — a past violation should not be erasable between
    /// report windows).
    pub fn reset(&self) {
        for (_, h) in self.hist.named() {
            h.reset();
        }
        self.gauge.repl_lag.reset();
        self.gauge.recovery.reset();
        self.spans.reset();
        self.pool.reset();
        self.wal.reset();
        self.ring.reset();
    }

    /// Aligned-text report: one histogram per row plus the monitor
    /// verdict. This is what `experiments -- all --obs` prints.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "site", "count", "p50", "p95", "p99", "max", "mean"
        ));
        for (name, h) in self.hist.named() {
            let s = h.snapshot();
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                name,
                s.count,
                fmt_ns(s.p50()),
                fmt_ns(s.p95()),
                fmt_ns(s.p99()),
                fmt_ns(s.max()),
                fmt_ns(s.mean_ns()),
            ));
        }
        let spans = self.spans.snapshot();
        if !spans.is_empty() {
            let total = spans.total_ns().max(1);
            out.push_str(&format!(
                "{:<18} {:>10} {:>12} {:>7}\n",
                "span", "count", "self", "share"
            ));
            for (name, self_ns, count) in spans.named() {
                if count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<18} {:>10} {:>12} {:>6.1}%\n",
                    name,
                    count,
                    fmt_ns(self_ns),
                    100.0 * self_ns as f64 / total as f64,
                ));
            }
        }
        let lag = &self.gauge.repl_lag;
        if lag.bytes.max() != 0 {
            out.push_str(&format!(
                "repl lag: {} bytes now, {} bytes max (lsn delta {} now, {} max)\n",
                lag.bytes.last(),
                lag.bytes.max(),
                lag.lsn_delta.last(),
                lag.lsn_delta.max(),
            ));
        }
        let rec = &self.gauge.recovery;
        if rec.phase.max() != 0 {
            out.push_str(&format!(
                "recovery: phase {} lsn {}/{} pages redone {} losers remaining {}\n",
                recovery_phase::name(rec.phase.last()),
                rec.current_lsn.last(),
                rec.target_lsn.last(),
                rec.pages_redone.last(),
                rec.losers_remaining.last(),
            ));
        }
        let m = self.monitor.snapshot();
        out.push_str(&format!(
            "latch monitor: max page-latch depth {} (limit {}), \
             depth violations {}, lock-wait-while-latched {}, \
             latch underflows {}, redo traversals {} — {}\n",
            m.max_latch_depth,
            MAX_LATCH_DEPTH,
            m.latch_depth_violations,
            m.lock_wait_with_latch_violations,
            m.latch_underflows,
            m.redo_traversal_violations,
            if m.clean() { "CLEAN" } else { "VIOLATED" },
        ));
        let (_, rs) = self.ring.snapshot_with_stats();
        out.push_str(&format!(
            "event ring: {} events recorded, {} resident (capacity {}), \
             {} dropped, {} torn\n",
            rs.recorded, rs.resident, rs.capacity, rs.dropped, rs.torn,
        ));
        if !rs.complete() {
            out.push_str(&format!(
                "WARNING: event ring wrapped ({} events dropped, {} torn) — \
                 ring-derived attribution is incomplete (span totals above \
                 remain exact)\n",
                rs.dropped, rs.torn,
            ));
        }
        out
    }

    /// Full JSON export: every histogram (buckets included), the monitor
    /// snapshot, and ring metadata. One JSON object, machine-readable.
    pub fn to_json(&self) -> String {
        let mut root = json::Object::new();
        let mut hists = String::from("{");
        let mut first = true;
        for (name, h) in self.hist.named() {
            let s = h.snapshot();
            if !first {
                hists.push(',');
            }
            first = false;
            let mut o = json::Object::new();
            o.field_u64("count", s.count);
            o.field_u64("sum_ns", s.sum_ns);
            o.field_u64("max_ns", s.max_ns);
            o.field_u64("p50_ns", s.p50());
            o.field_u64("p95_ns", s.p95());
            o.field_u64("p99_ns", s.p99());
            // Trim trailing zero buckets to keep the export compact.
            let last = s.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            o.field_raw("buckets", &json::array_u64(&s.buckets[..last]));
            hists.push_str(&format!("\"{name}\":{}", o.finish()));
        }
        hists.push('}');
        root.field_raw("histograms", &hists);

        let spans = self.spans.snapshot();
        let mut so = json::Object::new();
        for (name, self_ns, count) in spans.named() {
            let mut sp = json::Object::new();
            sp.field_u64("self_ns", self_ns);
            sp.field_u64("count", count);
            so.field_raw(name, &sp.finish());
        }
        root.field_raw("spans", &so.finish());

        let gauge_pair = |g: &Gauge| {
            let mut o = json::Object::new();
            o.field_u64("last", g.last());
            o.field_u64("max", g.max());
            o.finish()
        };
        let mut go = json::Object::new();
        let mut lg = json::Object::new();
        lg.field_raw("bytes", &gauge_pair(&self.gauge.repl_lag.bytes));
        lg.field_raw("lsn_delta", &gauge_pair(&self.gauge.repl_lag.lsn_delta));
        go.field_raw("repl_lag", &lg.finish());
        let rec = &self.gauge.recovery;
        let mut rg = json::Object::new();
        rg.field_raw("phase", &gauge_pair(&rec.phase));
        rg.field_raw("current_lsn", &gauge_pair(&rec.current_lsn));
        rg.field_raw("target_lsn", &gauge_pair(&rec.target_lsn));
        rg.field_raw("pages_redone", &gauge_pair(&rec.pages_redone));
        rg.field_raw("losers_remaining", &gauge_pair(&rec.losers_remaining));
        go.field_raw("recovery", &rg.finish());
        root.field_raw("gauges", &go.finish());

        let m = self.monitor.snapshot();
        let mut mo = json::Object::new();
        mo.field_u64("max_latch_depth", m.max_latch_depth);
        mo.field_u64("latch_depth_violations", m.latch_depth_violations);
        mo.field_u64(
            "lock_wait_with_latch_violations",
            m.lock_wait_with_latch_violations,
        );
        mo.field_u64("latch_underflows", m.latch_underflows);
        mo.field_u64("redo_traversal_violations", m.redo_traversal_violations);
        mo.field_bool("clean", m.clean());
        root.field_raw("monitor", &mo.finish());

        let (_, rs) = self.ring.snapshot_with_stats();
        let mut ro = json::Object::new();
        ro.field_u64("recorded", rs.recorded);
        ro.field_u64("capacity", rs.capacity);
        ro.field_u64("dropped", rs.dropped);
        ro.field_u64("torn", rs.torn);
        root.field_raw("ring", &ro.finish());
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.on());
        assert!(obs.timer().is_none());
        obs.event(EventKind::LogForce, ModeTag::None, 0, 0, 0);
        assert_eq!(obs.ring.recorded(), 0);
        obs.hist.log_force.record_since(obs.timer());
        assert_eq!(obs.hist.log_force.snapshot().count, 0);
    }

    #[test]
    fn enabled_handle_records() {
        let obs = Obs::enabled(64);
        assert!(obs.on());
        let t = obs.timer();
        assert!(t.is_some());
        obs.hist.lock_wait.record_since(t);
        obs.event(EventKind::LockGrant, ModeTag::X, 5, 0, 99);
        assert_eq!(obs.hist.lock_wait.snapshot().count, 1);
        assert_eq!(obs.ring.recorded(), 1);
    }

    #[test]
    fn report_lists_active_sites_and_verdict() {
        let obs = Obs::enabled(64);
        obs.hist.op_insert.record_ns(1500);
        obs.hist.op_insert.record_ns(2500);
        let report = obs.render_report();
        assert!(report.contains("op_insert"));
        assert!(!report.contains("op_delete")); // zero-count rows hidden
        assert!(report.contains("CLEAN"));
    }

    #[test]
    fn json_export_parses_back() {
        let obs = Obs::enabled(64);
        obs.hist.log_force.record_ns(40_000);
        obs.event(EventKind::LogForce, ModeTag::None, 1, 0, 512);
        let text = obs.to_json();
        let v = json::parse(&text).expect("valid JSON");
        let lf = v.get("histograms").unwrap().get("log_force").unwrap();
        assert_eq!(lf.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("monitor").unwrap().get("clean"),
            Some(&json::JsonValue::Bool(true))
        );
        assert_eq!(v.get("ring").unwrap().get("recorded").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn reset_clears_measurements_not_monitor() {
        let obs = Obs::enabled(64);
        obs.hist.op_fetch.record_ns(10);
        obs.event(EventKind::LockDeny, ModeTag::S, 1, 2, 3);
        std::thread::scope(|s| {
            s.spawn(|| {
                obs.monitor.on_page_latch_acquired(1);
                obs.monitor.on_page_latch_released(1);
            });
        });
        obs.reset();
        assert_eq!(obs.hist.op_fetch.snapshot().count, 0);
        assert_eq!(obs.ring.snapshot().len(), 0);
        assert_eq!(obs.monitor.snapshot().max_latch_depth, 1);
    }
}
