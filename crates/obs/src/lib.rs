//! `ariesim-obs` — runtime observability for the ARIES/IM reproduction.
//!
//! Three pillars, all std-only and lock-free on the hot path:
//!
//! * [`hist`] — log2-bucket latency histograms for latch waits, lock
//!   waits, log forces, page I/O, and whole index operations.
//! * [`trace`] — a fixed-capacity seqlock event ring recording typed,
//!   timestamped events (latch hand-offs, lock grants/waits/denials, SMO
//!   windows, traversal restarts, log forces, CLR writes), dumpable as
//!   JSONL.
//! * [`monitor`] — live checks of the latch-protocol invariants the paper
//!   argues for: page-latch depth ≤ 2, no unconditional lock wait while
//!   latched, and page-oriented (traversal-free) restart redo.
//!
//! Everything hangs off an [`Obs`] handle (an `Arc` internally). Engine
//! components accept one via `*_with_obs` constructors; the default is
//! [`Obs::disabled`], which reduces every histogram/trace call to a single
//! branch on a `bool`. Invariant monitoring is always on — it is the
//! cheapest pillar (a thread-local increment) and the most valuable one.

pub mod hist;
pub mod json;
pub mod lockdep;
pub mod monitor;
pub mod trace;

pub use hist::{fmt_ns, Gauge, HistogramSnapshot, LatencyHistogram};
pub use monitor::{current_latch_depth, Monitor, MonitorSnapshot, MAX_LATCH_DEPTH};
pub use trace::{Event, EventKind, EventRing, ModeTag};

use std::sync::Arc;
use std::time::Instant;

/// Shared handle to one observability domain (typically one per `Rig`
/// or one per database instance).
pub type ObsHandle = Arc<Obs>;

/// Latency histograms kept by an [`Obs`], one per instrumented site.
#[derive(Default)]
pub struct Histograms {
    /// Time blocked acquiring a page latch (only the wait path).
    pub latch_wait_page: LatencyHistogram,
    /// Time blocked acquiring the index-wide tree latch.
    pub latch_wait_tree: LatencyHistogram,
    /// Time blocked in an unconditional lock wait.
    pub lock_wait: LatencyHistogram,
    /// Duration of a synchronous log force (group commit flush).
    pub log_force: LatencyHistogram,
    /// Disk read of one page into the buffer pool.
    pub page_read: LatencyHistogram,
    /// Disk write of one dirty page out of the buffer pool.
    pub page_write: LatencyHistogram,
    /// Whole `fetch`/`fetch_next` call.
    pub op_fetch: LatencyHistogram,
    /// Whole `insert` call (including any splits it triggered).
    pub op_insert: LatencyHistogram,
    /// Whole `delete` call (including any page deletes it triggered).
    pub op_delete: LatencyHistogram,
    /// One structure modification operation (split or page delete).
    pub op_smo: LatencyHistogram,
    /// Transaction commit, including its log force.
    pub op_commit: LatencyHistogram,
    /// One shipped-chunk ingest into a standby's log.
    pub repl_ingest: LatencyHistogram,
    /// One continuous-redo apply batch on a standby.
    pub repl_apply: LatencyHistogram,
}

impl Histograms {
    /// Stable (name, histogram) listing used by the report and JSON
    /// exporters; order is the order rows appear in the report.
    pub fn named(&self) -> [(&'static str, &LatencyHistogram); 13] {
        [
            ("latch_wait_page", &self.latch_wait_page),
            ("latch_wait_tree", &self.latch_wait_tree),
            ("lock_wait", &self.lock_wait),
            ("log_force", &self.log_force),
            ("page_read", &self.page_read),
            ("page_write", &self.page_write),
            ("op_fetch", &self.op_fetch),
            ("op_insert", &self.op_insert),
            ("op_delete", &self.op_delete),
            ("op_smo", &self.op_smo),
            ("op_commit", &self.op_commit),
            ("repl_ingest", &self.repl_ingest),
            ("repl_apply", &self.repl_apply),
        ]
    }
}

/// Instantaneous gauges kept by an [`Obs`]. Unlike the histograms these
/// are always live (a gauge `set` is two relaxed stores): replication lag
/// is an operational signal, not a profiling one.
#[derive(Default)]
pub struct Gauges {
    /// Bytes of durable primary log a standby has not yet applied.
    pub repl_lag_bytes: Gauge,
}

/// One observability domain: histograms + gauges + event ring + invariant
/// monitor.
pub struct Obs {
    enabled: bool,
    pub hist: Histograms,
    pub gauge: Gauges,
    pub ring: EventRing,
    pub monitor: Monitor,
}

/// Default event-ring capacity for enabled handles (power of two).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl Obs {
    /// A disabled handle: histograms and tracing compile down to one
    /// branch; invariant monitoring stays live (it is nearly free and
    /// guards correctness, not performance).
    pub fn disabled() -> ObsHandle {
        Arc::new(Obs {
            enabled: false,
            hist: Histograms::default(),
            gauge: Gauges::default(),
            ring: EventRing::new(8),
            monitor: Monitor::default(),
        })
    }

    /// An enabled handle with an event ring of (at least) `ring_capacity`.
    pub fn enabled(ring_capacity: usize) -> ObsHandle {
        Arc::new(Obs {
            enabled: true,
            hist: Histograms::default(),
            gauge: Gauges::default(),
            ring: EventRing::new(ring_capacity),
            monitor: Monitor::default(),
        })
    }

    /// Whether timing/tracing is active. Monitors ignore this.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    /// Start a timer if enabled; pair with
    /// [`LatencyHistogram::record_since`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record a trace event (no-op when disabled).
    #[inline]
    pub fn event(&self, kind: EventKind, mode: ModeTag, txn: u64, page: u32, aux: u64) {
        if self.enabled {
            self.ring.push(kind, mode, txn, page, aux);
        }
    }

    /// Reset histograms and the event ring (monitor counters persist —
    /// a past violation should not be erasable between report windows).
    pub fn reset(&self) {
        for (_, h) in self.hist.named() {
            h.reset();
        }
        self.gauge.repl_lag_bytes.reset();
        self.ring.reset();
    }

    /// Aligned-text report: one histogram per row plus the monitor
    /// verdict. This is what `experiments -- all --obs` prints.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "site", "count", "p50", "p95", "p99", "max", "mean"
        ));
        for (name, h) in self.hist.named() {
            let s = h.snapshot();
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                name,
                s.count,
                fmt_ns(s.p50()),
                fmt_ns(s.p95()),
                fmt_ns(s.p99()),
                fmt_ns(s.max()),
                fmt_ns(s.mean_ns()),
            ));
        }
        let lag = &self.gauge.repl_lag_bytes;
        if lag.max() != 0 {
            out.push_str(&format!(
                "repl lag: {} bytes now, {} bytes max\n",
                lag.last(),
                lag.max(),
            ));
        }
        let m = self.monitor.snapshot();
        out.push_str(&format!(
            "latch monitor: max page-latch depth {} (limit {}), \
             depth violations {}, lock-wait-while-latched {}, \
             latch underflows {}, redo traversals {} — {}\n",
            m.max_latch_depth,
            MAX_LATCH_DEPTH,
            m.latch_depth_violations,
            m.lock_wait_with_latch_violations,
            m.latch_underflows,
            m.redo_traversal_violations,
            if m.clean() { "CLEAN" } else { "VIOLATED" },
        ));
        out.push_str(&format!(
            "event ring: {} events recorded, {} resident (capacity {})\n",
            self.ring.recorded(),
            self.ring.snapshot().len(),
            self.ring.capacity(),
        ));
        out
    }

    /// Full JSON export: every histogram (buckets included), the monitor
    /// snapshot, and ring metadata. One JSON object, machine-readable.
    pub fn to_json(&self) -> String {
        let mut root = json::Object::new();
        let mut hists = String::from("{");
        let mut first = true;
        for (name, h) in self.hist.named() {
            let s = h.snapshot();
            if !first {
                hists.push(',');
            }
            first = false;
            let mut o = json::Object::new();
            o.field_u64("count", s.count);
            o.field_u64("sum_ns", s.sum_ns);
            o.field_u64("max_ns", s.max_ns);
            o.field_u64("p50_ns", s.p50());
            o.field_u64("p95_ns", s.p95());
            o.field_u64("p99_ns", s.p99());
            // Trim trailing zero buckets to keep the export compact.
            let last = s.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            o.field_raw("buckets", &json::array_u64(&s.buckets[..last]));
            hists.push_str(&format!("\"{name}\":{}", o.finish()));
        }
        hists.push('}');
        root.field_raw("histograms", &hists);

        let mut go = json::Object::new();
        let mut lg = json::Object::new();
        lg.field_u64("last", self.gauge.repl_lag_bytes.last());
        lg.field_u64("max", self.gauge.repl_lag_bytes.max());
        go.field_raw("repl_lag_bytes", &lg.finish());
        root.field_raw("gauges", &go.finish());

        let m = self.monitor.snapshot();
        let mut mo = json::Object::new();
        mo.field_u64("max_latch_depth", m.max_latch_depth);
        mo.field_u64("latch_depth_violations", m.latch_depth_violations);
        mo.field_u64(
            "lock_wait_with_latch_violations",
            m.lock_wait_with_latch_violations,
        );
        mo.field_u64("latch_underflows", m.latch_underflows);
        mo.field_u64("redo_traversal_violations", m.redo_traversal_violations);
        mo.field_bool("clean", m.clean());
        root.field_raw("monitor", &mo.finish());

        let mut ro = json::Object::new();
        ro.field_u64("recorded", self.ring.recorded());
        ro.field_u64("capacity", self.ring.capacity() as u64);
        root.field_raw("ring", &ro.finish());
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.on());
        assert!(obs.timer().is_none());
        obs.event(EventKind::LogForce, ModeTag::None, 0, 0, 0);
        assert_eq!(obs.ring.recorded(), 0);
        obs.hist.log_force.record_since(obs.timer());
        assert_eq!(obs.hist.log_force.snapshot().count, 0);
    }

    #[test]
    fn enabled_handle_records() {
        let obs = Obs::enabled(64);
        assert!(obs.on());
        let t = obs.timer();
        assert!(t.is_some());
        obs.hist.lock_wait.record_since(t);
        obs.event(EventKind::LockGrant, ModeTag::X, 5, 0, 99);
        assert_eq!(obs.hist.lock_wait.snapshot().count, 1);
        assert_eq!(obs.ring.recorded(), 1);
    }

    #[test]
    fn report_lists_active_sites_and_verdict() {
        let obs = Obs::enabled(64);
        obs.hist.op_insert.record_ns(1500);
        obs.hist.op_insert.record_ns(2500);
        let report = obs.render_report();
        assert!(report.contains("op_insert"));
        assert!(!report.contains("op_delete")); // zero-count rows hidden
        assert!(report.contains("CLEAN"));
    }

    #[test]
    fn json_export_parses_back() {
        let obs = Obs::enabled(64);
        obs.hist.log_force.record_ns(40_000);
        obs.event(EventKind::LogForce, ModeTag::None, 1, 0, 512);
        let text = obs.to_json();
        let v = json::parse(&text).expect("valid JSON");
        let lf = v.get("histograms").unwrap().get("log_force").unwrap();
        assert_eq!(lf.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("monitor").unwrap().get("clean"),
            Some(&json::JsonValue::Bool(true))
        );
        assert_eq!(v.get("ring").unwrap().get("recorded").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn reset_clears_measurements_not_monitor() {
        let obs = Obs::enabled(64);
        obs.hist.op_fetch.record_ns(10);
        obs.event(EventKind::LockDeny, ModeTag::S, 1, 2, 3);
        std::thread::scope(|s| {
            s.spawn(|| {
                obs.monitor.on_page_latch_acquired(1);
                obs.monitor.on_page_latch_released(1);
            });
        });
        obs.reset();
        assert_eq!(obs.hist.op_fetch.snapshot().count, 0);
        assert_eq!(obs.ring.snapshot().len(), 0);
        assert_eq!(obs.monitor.snapshot().max_latch_depth, 1);
    }
}
