//! Minimal JSON writer and parser (std-only; no external dependencies).
//!
//! Supports exactly the subset the observability layer emits: objects,
//! arrays, strings, non-negative numbers, and floats. The parser exists so
//! tests can round-trip JSONL event dumps and so `dumplog --json` output is
//! verifiable in-tree without serde.

/// Incremental JSON object writer.
pub struct Object {
    buf: String,
    first: bool,
}

impl Default for Object {
    fn default() -> Self {
        Object::new()
    }
}

impl Object {
    pub fn new() -> Object {
        Object {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Insert a pre-rendered JSON value (object, array, …) verbatim.
    pub fn field_raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    pub fn finish(&mut self) -> String {
        let mut out = std::mem::replace(&mut self.buf, String::from("{"));
        self.first = true;
        out.push('}');
        out
    }
}

/// Render a slice of u64s as a JSON array.
pub fn array_u64(vals: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
}

/// Parsed JSON value. Non-negative integer literals parse as [`Uint`]
/// (exact — `u64` hashes exceed f64's 53-bit mantissa); everything else
/// numeric parses as [`Number`].
///
/// [`Uint`]: JsonValue::Uint
/// [`Number`]: JsonValue::Number
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Uint(u64),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(n) => Some(*n),
            JsonValue::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one JSON document. Returns `None` on any syntax error or
/// trailing garbage.
pub fn parse(input: &str) -> Option<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        if self.bump()? == b {
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, s: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(JsonValue::String(self.string()?)),
            b't' => self.literal("true").map(|_| JsonValue::Bool(true)),
            b'f' => self.literal("false").map(|_| JsonValue::Bool(false)),
            b'n' => self.literal("null").map(|_| JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(JsonValue::Object(fields)),
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Some(JsonValue::Array(items)),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(s),
                b'\\' => match self.bump()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return None;
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).ok()?;
                        self.pos += 4;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 starting at this byte.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return None,
                        };
                        if start + width > self.bytes.len() {
                            return None;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..start + width]).ok()?;
                        s.push_str(chunk);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if let Ok(n) = text.parse::<u64>() {
            return Some(JsonValue::Uint(n));
        }
        text.parse::<f64>().ok().map(JsonValue::Number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_roundtrips() {
        let mut o = Object::new();
        o.field_u64("n", 42);
        o.field_str("s", "a \"b\"\n");
        o.field_bool("ok", true);
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a \"b\"\n"));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn arrays_and_nesting() {
        let v = parse(r#"{"a":[1,2,3],"b":{"c":null}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Uint(1),
                JsonValue::Uint(2),
                JsonValue::Uint(3)
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_none());
        assert!(parse("{}x").is_none());
        assert!(parse(r#"{"a":}"#).is_none());
    }

    #[test]
    fn array_u64_renders() {
        assert_eq!(array_u64(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(array_u64(&[]), "[]");
    }

    #[test]
    fn large_u64_survives() {
        // Integer literals must round-trip exactly even above f64's 53-bit
        // mantissa — event `aux` fields carry full 64-bit lock-name hashes.
        let mut o = Object::new();
        o.field_u64("aux", u64::MAX - 3);
        let v = parse(&o.finish()).unwrap();
        assert_eq!(v.get("aux").unwrap().as_u64(), Some(u64::MAX - 3));
        // Floats still parse as floats.
        assert_eq!(parse("1.5"), Some(JsonValue::Number(1.5)));
        assert_eq!(parse("-2"), Some(JsonValue::Number(-2.0)));
    }
}
