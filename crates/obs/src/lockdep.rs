//! Lockdep-style acquisition-order graph (debug builds only).
//!
//! Every blocking acquisition of a tracked resource class records one edge
//! per *distinct* class currently held by the acquiring thread:
//! `held-class → acquired-class`, attributed to the acquisition site. Trylock
//! (conditional) acquisitions cannot make a thread wait, so they join the
//! held set but record no edges — exactly the Linux lockdep rule.
//!
//! The graph is process-global (edges merged across threads; the held set is
//! per-thread), dumped as JSONL by [`dump_jsonl`], and checked offline by
//! `arieslint --lockdep`: a cycle among *distinct* classes, an edge against
//! the class rank order, a latch-class edge into [`Class::LockWait`], or a
//! page-latch chain deeper than 2 is a CI failure. The `PageLatch →
//! PageLatch` self-edge is expected (latch coupling walks parent → child and
//! leaf → next leaf); it is certified by the chain-depth bound instead of
//! the cycle check.
//!
//! All entry points compile to a branch-on-constant no-op when
//! `debug_assertions` are off, so release benchmarks pay nothing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Resource classes ordered by acquisition rank. The rank order *is* the
/// paper's §4 latch protocol: the tree latch is taken before any page latch,
/// page latches before pool/lock-table internals, and a lock wait only with
/// nothing else held.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Class {
    /// The index-wide SMO tree latch (`btree::traverse` helpers).
    TreeLatch,
    /// A buffer-pool page latch (`storage::pool::fix_*`).
    PageLatch,
    /// One of the buffer pool's partition (shard) mutexes. Shards share a
    /// single class: a thread never holds two shards at once, so no
    /// shard→shard edge is legal either.
    PoolShard,
    /// The lock manager's hash-table mutex.
    LockTable,
    /// An unconditional lock wait (`lock::manager::request` park).
    LockWait,
}

impl Class {
    /// Acquisition rank; a blocking edge must never go from a higher rank to
    /// a strictly lower one. `PoolShard` and `LockTable` share a rank — they
    /// are leaf mutexes that are never held across each other (and a thread
    /// never holds two pool shards simultaneously).
    pub fn rank(self) -> u8 {
        match self {
            Class::TreeLatch => 1,
            Class::PageLatch => 2,
            Class::PoolShard => 3,
            Class::LockTable => 3,
            Class::LockWait => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Class::TreeLatch => "TreeLatch",
            Class::PageLatch => "PageLatch",
            Class::PoolShard => "PoolShard",
            Class::LockTable => "LockTable",
            Class::LockWait => "LockWait",
        }
    }
}

#[derive(Default)]
struct Graph {
    /// (held, acquired, acquisition site) → observation count.
    edges: HashMap<(Class, Class, &'static str), u64>,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
static MAX_PAGE_CHAIN: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static HELD: RefCell<Vec<Class>> = const { RefCell::new(Vec::new()) };
}

#[inline]
fn active() -> bool {
    cfg!(debug_assertions)
}

/// Record an acquisition of `class` at `site`. `blocking` is false for
/// conditional (trylock) acquisitions that succeeded — they join the held
/// set but contribute no ordering edges.
pub fn acquired(class: Class, site: &'static str, blocking: bool) {
    if !active() {
        return;
    }
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if blocking && !held.is_empty() {
            let mut seen: Vec<Class> = Vec::with_capacity(held.len());
            for &hc in held.iter() {
                if !seen.contains(&hc) {
                    seen.push(hc);
                }
            }
            let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
            for hc in seen {
                *g.edges.entry((hc, class, site)).or_insert(0) += 1;
            }
        }
        held.push(class);
        if class == Class::PageLatch {
            let chain = held.iter().filter(|&&c| c == Class::PageLatch).count() as u64;
            MAX_PAGE_CHAIN.fetch_max(chain, Ordering::Relaxed);
        }
    });
}

/// Record the release of the most recently acquired instance of `class`.
pub fn released(class: Class) {
    if !active() {
        return;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&c| c == class) {
            held.remove(pos);
        }
    });
}

/// Number of distinct (held, acquired, site) edges observed so far.
pub fn edge_count() -> usize {
    if !active() {
        return 0;
    }
    graph().lock().unwrap_or_else(|e| e.into_inner()).edges.len()
}

/// Deepest simultaneous page-latch chain seen on any one thread.
pub fn max_page_latch_chain() -> u64 {
    MAX_PAGE_CHAIN.load(Ordering::Relaxed)
}

/// Forget all recorded edges and counters (test isolation). Per-thread held
/// sets are left alone — they are empty whenever no guard is live.
pub fn reset() {
    if !active() {
        return;
    }
    graph().lock().unwrap_or_else(|e| e.into_inner()).edges.clear();
    ACQUISITIONS.store(0, Ordering::Relaxed);
    MAX_PAGE_CHAIN.store(0, Ordering::Relaxed);
}

/// Dump the graph as JSONL: one `edge` object per line, then one `summary`
/// line. This is the input format of `arieslint --lockdep`.
pub fn dump_jsonl() -> String {
    let mut out = String::new();
    let edges = {
        let g = graph().lock().unwrap_or_else(|e| e.into_inner());
        let mut v: Vec<_> = g
            .edges
            .iter()
            .map(|(&(held, acq, site), &count)| (held, acq, site, count))
            .collect();
        v.sort_by_key(|&(h, a, site, _)| (h.name(), a.name(), site));
        v
    };
    for (held, acq, site, count) in &edges {
        out.push_str(&format!(
            "{{\"type\":\"edge\",\"held\":\"{}\",\"acquired\":\"{}\",\"site\":\"{}\",\"count\":{}}}\n",
            held.name(),
            acq.name(),
            site,
            count
        ));
    }
    out.push_str(&format!(
        "{{\"type\":\"summary\",\"edges\":{},\"acquisitions\":{},\"max_page_latch_chain\":{}}}\n",
        edges.len(),
        ACQUISITIONS.load(Ordering::Relaxed),
        MAX_PAGE_CHAIN.load(Ordering::Relaxed)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The graph is process-global, so tests in this module serialize
    // themselves and reset() first.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn blocking_acquisition_records_edges_per_distinct_held_class() {
        let _s = serial();
        reset();
        acquired(Class::TreeLatch, "t", true);
        acquired(Class::PageLatch, "p1", true); // Tree → Page
        acquired(Class::PageLatch, "p2", true); // Tree → Page, Page → Page
        released(Class::PageLatch);
        released(Class::PageLatch);
        released(Class::TreeLatch);
        let dump = dump_jsonl();
        assert!(dump.contains("\"held\":\"TreeLatch\",\"acquired\":\"PageLatch\""));
        assert!(dump.contains("\"held\":\"PageLatch\",\"acquired\":\"PageLatch\""));
        assert_eq!(max_page_latch_chain(), 2);
        // Three sites, but Tree→Page appears under two of them and
        // Page→Page under one: 3 distinct (held, acquired, site) edges.
        assert_eq!(edge_count(), 3);
    }

    #[test]
    fn conditional_acquisition_records_no_edge() {
        let _s = serial();
        reset();
        acquired(Class::PageLatch, "p", true);
        acquired(Class::LockTable, "probe", false); // trylock: no edge
        released(Class::LockTable);
        released(Class::PageLatch);
        assert_eq!(edge_count(), 0);
    }

    #[test]
    fn release_pops_most_recent_of_class() {
        let _s = serial();
        reset();
        acquired(Class::PageLatch, "a", true);
        acquired(Class::PageLatch, "b", true);
        released(Class::PageLatch);
        // One page latch still held: a further acquisition keeps chain ≤ 2.
        acquired(Class::PageLatch, "c", true);
        released(Class::PageLatch);
        released(Class::PageLatch);
        assert_eq!(max_page_latch_chain(), 2);
    }

    #[test]
    fn dump_ends_with_summary_line() {
        let _s = serial();
        reset();
        acquired(Class::TreeLatch, "t", true);
        released(Class::TreeLatch);
        let dump = dump_jsonl();
        let last = dump.lines().last().unwrap();
        assert!(last.contains("\"type\":\"summary\""));
        assert!(last.contains("\"max_page_latch_chain\":0"));
    }
}
