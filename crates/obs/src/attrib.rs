//! Offline time attribution: fold a trace (ring snapshot or JSONL dump)
//! into per-transaction and aggregate breakdowns, and export spans in
//! Chrome `trace_event` format for flamegraph-style inspection
//! (`chrome://tracing` / Perfetto).
//!
//! The folder consumes only `SpanEnd` events: each carries its kind and
//! exact self time in the `aux` word (see [`crate::span::pack_end_aux`]),
//! so attribution stays correct even when the ring wrapped and the
//! matching `SpanBegin` was overwritten. Completeness is tracked
//! explicitly — a wrapped or torn ring makes the attribution say
//! "incomplete" instead of silently under-reporting.

use crate::span::{self, SpanKind, SPAN_KIND_COUNT, SPAN_NAMES};
use crate::trace::{Event, EventKind, RingStats};
use crate::{fmt_ns, json};
use std::collections::BTreeMap;

/// Folded attribution over one trace window.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    /// Self nanoseconds per span kind, indexed by `SpanKind as usize`.
    pub self_ns: [u64; SPAN_KIND_COUNT],
    /// Completed spans per kind.
    pub count: [u64; SPAN_KIND_COUNT],
    /// Per-transaction self nanoseconds per kind (txn 0 collects spans
    /// with no transaction context: latch waits, group flushes, ...).
    pub per_txn: BTreeMap<u64, [u64; SPAN_KIND_COUNT]>,
    /// Events lost to ring wrap in the source trace.
    pub dropped: u64,
    /// Slots lost to reader/writer races in the source trace.
    pub torn: u64,
}

impl Attribution {
    /// Fold a decoded event slice. Pass the ring stats (or dump header)
    /// when available so completeness is carried through.
    pub fn from_events(events: &[Event], stats: Option<&RingStats>) -> Attribution {
        let mut a = Attribution {
            dropped: stats.map_or(0, |s| s.dropped),
            torn: stats.map_or(0, |s| s.torn),
            ..Attribution::default()
        };
        for e in events {
            if e.kind != EventKind::SpanEnd {
                continue;
            }
            let Some(kind) = SpanKind::from_aux(e.aux) else {
                continue;
            };
            let self_ns = span::self_ns_from_aux(e.aux);
            a.self_ns[kind as usize] += self_ns;
            a.count[kind as usize] += 1;
            a.per_txn.entry(e.txn).or_default()[kind as usize] += self_ns;
        }
        a
    }

    /// Fold a JSONL dump produced by
    /// [`EventRing::dump_jsonl`](crate::EventRing::dump_jsonl). Lines that
    /// parse as neither a header nor an event are ignored.
    pub fn from_jsonl(dump: &str) -> Attribution {
        let mut stats = None;
        let mut events = Vec::new();
        for line in dump.lines() {
            if let Some(e) = Event::parse_json_line(line) {
                events.push(e);
            } else if let Some(s) = RingStats::parse_json_line(line) {
                stats = Some(s);
            }
        }
        Attribution::from_events(&events, stats.as_ref())
    }

    /// Total self time across all kinds — the wall time covered by the
    /// trace's outermost spans.
    pub fn total_ns(&self) -> u64 {
        self.self_ns.iter().sum()
    }

    /// Whether the source trace saw every recorded event.
    pub fn complete(&self) -> bool {
        self.dropped == 0 && self.torn == 0
    }

    /// Aggregate breakdown table plus the worst transactions by attributed
    /// time, with an explicit warning when the trace was incomplete.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total_ns();
        out.push_str(&format!(
            "span attribution: {} self time over {} spans, {} transactions\n",
            fmt_ns(total),
            self.count.iter().sum::<u64>(),
            self.per_txn.len(),
        ));
        for (i, name) in SPAN_NAMES.iter().enumerate() {
            if self.count[i] == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<12} {:>6.1}% {:>12} n={}\n",
                name,
                100.0 * self.self_ns[i] as f64 / total.max(1) as f64,
                fmt_ns(self.self_ns[i]),
                self.count[i],
            ));
        }
        let mut txns: Vec<(&u64, u64)> = self
            .per_txn
            .iter()
            .filter(|&(&txn, _)| txn != 0)
            .map(|(txn, by_kind)| (txn, by_kind.iter().sum::<u64>()))
            .collect();
        txns.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (txn, ns) in txns.iter().take(3) {
            out.push_str(&format!("  slowest txn {}: {}\n", txn, fmt_ns(*ns)));
        }
        if !self.complete() {
            out.push_str(&format!(
                "  WARNING: attribution incomplete — {} events dropped, {} torn\n",
                self.dropped, self.torn,
            ));
        }
        out
    }
}

/// Export a trace's spans as a Chrome `trace_event` JSON document
/// (complete `"X"` events, timestamps in microseconds). Load the output in
/// `chrome://tracing` or Perfetto. Begins whose end was lost (and ends
/// whose begin wrapped out of the ring) are skipped.
pub fn chrome_trace(events: &[Event]) -> String {
    struct Open {
        kind: SpanKind,
        ts_ns: u64,
        txn: u64,
        page: u32,
    }
    let mut stacks: BTreeMap<u32, Vec<Open>> = BTreeMap::new();
    let mut out = String::from("[");
    let mut first = true;
    for e in events {
        match e.kind {
            EventKind::SpanBegin => {
                let Some(kind) = SpanKind::from_aux(e.aux) else {
                    continue;
                };
                stacks.entry(e.thread).or_default().push(Open {
                    kind,
                    ts_ns: e.ts_ns,
                    txn: e.txn,
                    page: e.page,
                });
            }
            EventKind::SpanEnd => {
                let Some(kind) = SpanKind::from_aux(e.aux) else {
                    continue;
                };
                let Some(stack) = stacks.get_mut(&e.thread) else {
                    continue;
                };
                // The matching begin is the top of this thread's stack; a
                // mismatch means the begin wrapped out of the ring.
                let matches = stack.last().is_some_and(|o| o.kind == kind);
                if !matches {
                    continue;
                }
                let open = stack.pop().expect("just matched");
                if first {
                    first = false;
                } else {
                    out.push(',');
                }
                let mut o = json::Object::new();
                o.field_str("name", kind.as_str());
                o.field_str("cat", "span");
                o.field_str("ph", "X");
                o.field_u64("pid", 1);
                o.field_u64("tid", e.thread as u64);
                o.field_raw("ts", &format!("{:.3}", open.ts_ns as f64 / 1e3));
                o.field_raw(
                    "dur",
                    &format!("{:.3}", e.ts_ns.saturating_sub(open.ts_ns) as f64 / 1e3),
                );
                let mut args = json::Object::new();
                args.field_u64("txn", open.txn);
                args.field_u64("page", open.page as u64);
                args.field_u64("self_ns", span::self_ns_from_aux(e.aux));
                o.field_raw("args", &args.finish());
                out.push_str(&o.finish());
            }
            _ => {}
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, SpanKind};

    fn spanned_obs() -> crate::ObsHandle {
        let obs = Obs::enabled(64);
        {
            let _outer = obs.span(SpanKind::UserWork, 7, 0);
            let _inner = obs.span(SpanKind::WalFsync, 7, 0);
        }
        {
            let _g = obs.span(SpanKind::LockWait, 8, 3);
        }
        obs
    }

    #[test]
    fn fold_matches_span_totals() {
        let obs = spanned_obs();
        let (events, stats) = obs.ring.snapshot_with_stats();
        let a = Attribution::from_events(&events, Some(&stats));
        let s = obs.spans.snapshot();
        assert_eq!(a.self_ns, s.self_ns);
        assert_eq!(a.count, s.count);
        assert_eq!(a.total_ns(), s.total_ns());
        assert!(a.complete());
        assert_eq!(a.per_txn.len(), 2);
        let t7 = a.per_txn[&7];
        assert_eq!(
            t7[SpanKind::UserWork as usize] + t7[SpanKind::WalFsync as usize],
            t7.iter().sum::<u64>(),
        );
    }

    #[test]
    fn fold_from_jsonl_dump() {
        let obs = spanned_obs();
        let a = Attribution::from_jsonl(&obs.ring.dump_jsonl());
        assert_eq!(a.self_ns, obs.spans.snapshot().self_ns);
        assert!(a.complete());
        let text = a.render();
        assert!(text.contains("user_work"));
        assert!(text.contains("wal_fsync"));
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn wrapped_ring_reports_incomplete() {
        let obs = Obs::enabled(8);
        for _ in 0..16 {
            let _g = obs.span(SpanKind::Apply, 1, 0);
        }
        let a = Attribution::from_jsonl(&obs.ring.dump_jsonl());
        assert!(!a.complete());
        assert!(a.dropped > 0);
        assert!(a.render().contains("WARNING"));
        // Ends without resident begins still attribute exactly.
        assert!(a.count[SpanKind::Apply as usize] > 0);
    }

    #[test]
    fn chrome_trace_pairs_spans() {
        let obs = spanned_obs();
        let trace = chrome_trace(&obs.ring.snapshot());
        let v = json::parse(&trace).expect("valid JSON array");
        let json::JsonValue::Array(items) = v else {
            panic!("expected array");
        };
        assert_eq!(items.len(), 3);
        let names: Vec<_> = items
            .iter()
            .map(|i| i.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"user_work".to_string()));
        assert!(names.contains(&"wal_fsync".to_string()));
        assert!(names.contains(&"lock_wait".to_string()));
        for i in &items {
            assert_eq!(i.get("ph").unwrap().as_str(), Some("X"));
            assert!(i.get("args").unwrap().get("txn").unwrap().as_u64().is_some());
        }
    }
}
