//! A unified metrics registry with Prometheus and JSON exposition.
//!
//! Every observable quantity in the engine — the [`Obs`](crate::Obs)
//! histograms, gauges, and span totals, the ring's completeness counters,
//! the latch-monitor verdict counters, and the `ariesim-common` paper
//! counters — registers here under a unique snake_case name and is
//! collected lazily at exposition time through a closure. Registration is
//! cheap and happens once per domain; collection walks the closures, so an
//! exposition is always a point-in-time snapshot of the live atomics.
//!
//! Uniqueness and naming are enforced at registration time (a duplicate or
//! non-snake_case name panics immediately, not at scrape time), and
//! `arieslint` audits the registered literal names statically.

use crate::hist::{bucket_top, HistogramSnapshot};
use crate::{json, ObsHandle};
use ariesim_common::stats::StatsHandle;
use std::sync::Mutex;

/// One collected sample.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotonically non-decreasing count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(u64),
    /// Full distribution snapshot (boxed: a snapshot is ~64 buckets wide,
    /// scalar variants should not pay for it).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    fn kind_str(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

type Collector = Box<dyn Fn() -> MetricValue + Send + Sync>;

struct Entry {
    name: String,
    help: String,
    collector: Collector,
}

/// The registry. Insertion order is preserved in expositions.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

/// `[a-z][a-z0-9_]*`: the naming rule every registered metric must follow
/// (also enforced statically by `arieslint`'s metric-name audit).
pub fn is_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some('a'..='z'))
        && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, collector: Collector) {
        assert!(
            is_snake_case(name),
            "metric name {name:?} is not snake_case"
        );
        let mut entries = self.entries.lock().unwrap();
        assert!(
            !entries.iter().any(|e| e.name == name),
            "duplicate metric name {name:?}"
        );
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            collector,
        });
    }

    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, Box::new(move || MetricValue::Counter(f())));
    }

    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, Box::new(move || MetricValue::Gauge(f())));
    }

    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.register(
            name,
            help,
            Box::new(move || MetricValue::Histogram(Box::new(f()))),
        );
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Collect every metric now: (name, value) in registration order.
    pub fn collect(&self) -> Vec<(String, MetricValue)> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|e| (e.name.clone(), (e.collector)()))
            .collect()
    }

    /// Prometheus text exposition format (histograms as cumulative
    /// `_bucket{le=...}` series over the log2 bucket bounds, trimmed to
    /// the highest occupied bucket).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in self.entries.lock().unwrap().iter() {
            let value = (entry.collector)();
            out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
            out.push_str(&format!("# TYPE {} {}\n", entry.name, value.kind_str()));
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{} {}\n", entry.name, v));
                }
                MetricValue::Histogram(s) => {
                    let last = s
                        .buckets
                        .iter()
                        .rposition(|&b| b != 0)
                        .map_or(0, |i| i + 1);
                    let mut cumulative = 0u64;
                    for (i, &b) in s.buckets[..last].iter().enumerate() {
                        cumulative += b;
                        let top = bucket_top(i);
                        if top == u64::MAX {
                            break; // folded into +Inf below
                        }
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            entry.name, top, cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{{le=\"+Inf\"}} {}\n",
                        entry.name, s.count
                    ));
                    out.push_str(&format!("{}_sum {}\n", entry.name, s.sum_ns));
                    out.push_str(&format!("{}_count {}\n", entry.name, s.count));
                }
            }
        }
        out
    }

    /// JSON snapshot exposition: one object keyed by metric name, each
    /// value carrying its type tag.
    pub fn render_json(&self) -> String {
        let mut root = json::Object::new();
        for (name, value) in self.collect() {
            let mut o = json::Object::new();
            o.field_str("type", value.kind_str());
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    o.field_u64("value", v);
                }
                MetricValue::Histogram(s) => {
                    o.field_u64("count", s.count);
                    o.field_u64("sum_ns", s.sum_ns);
                    o.field_u64("max_ns", s.max_ns);
                    o.field_u64("p50_ns", s.p50());
                    o.field_u64("p95_ns", s.p95());
                    o.field_u64("p99_ns", s.p99());
                }
            }
            root.field_raw(&name, &o.finish());
        }
        root.finish()
    }
}

/// Build a registry exposing everything an [`Obs`](crate::Obs) domain
/// knows: all latency histograms, the replication-lag and recovery
/// gauges, per-kind span self-time totals, ring completeness counters,
/// and the latch-monitor verdict counters.
pub fn for_obs(obs: &ObsHandle) -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    register_obs(&reg, obs);
    reg
}

/// Register one obs domain's metrics into an existing registry.
pub fn register_obs(reg: &MetricsRegistry, obs: &ObsHandle) {
    for (i, (name, _)) in obs.hist.named().iter().enumerate() {
        let o = obs.clone();
        reg.register_histogram(
            name,
            "latency histogram (nanoseconds, log2 buckets)",
            move || o.hist.named()[i].1.snapshot(),
        );
    }

    let o = obs.clone();
    reg.register_gauge(
        "repl_lag_bytes",
        "bytes of durable primary log the standby has not applied",
        move || o.gauge.repl_lag.bytes.last(),
    );
    let o = obs.clone();
    reg.register_gauge(
        "repl_lag_lsn_delta",
        "replication lag as an LSN delta (durable end minus applied)",
        move || o.gauge.repl_lag.lsn_delta.last(),
    );
    let o = obs.clone();
    reg.register_gauge(
        "recovery_phase",
        "restart phase: 0 idle, 1 analysis, 2 redo, 3 undo, 4 complete",
        move || o.gauge.recovery.phase.last(),
    );
    let o = obs.clone();
    reg.register_gauge(
        "recovery_current_lsn",
        "LSN the current restart pass has reached",
        move || o.gauge.recovery.current_lsn.last(),
    );
    let o = obs.clone();
    reg.register_gauge(
        "recovery_target_lsn",
        "end-of-log LSN the restart pass is driving toward",
        move || o.gauge.recovery.target_lsn.last(),
    );
    let o = obs.clone();
    reg.register_gauge(
        "recovery_pages_redone",
        "pages to which restart redo has been applied",
        move || o.gauge.recovery.pages_redone.last(),
    );
    let o = obs.clone();
    reg.register_gauge(
        "recovery_losers_remaining",
        "loser transactions not yet rolled back by restart undo",
        move || o.gauge.recovery.losers_remaining.last(),
    );

    for (i, base) in crate::span::SPAN_NAMES.iter().enumerate() {
        let o = obs.clone();
        reg.register_counter(
            &format!("span_{base}_self_ns"),
            "span self time attributed to this kind (nanoseconds)",
            move || o.spans.snapshot().self_ns[i],
        );
        let o = obs.clone();
        reg.register_counter(
            &format!("span_{base}_count"),
            "completed spans of this kind",
            move || o.spans.snapshot().count[i],
        );
    }

    let o = obs.clone();
    reg.register_counter(
        "trace_events_recorded",
        "events ever pushed into the event ring",
        move || o.ring.recorded(),
    );
    let o = obs.clone();
    reg.register_counter(
        "trace_events_dropped",
        "events lost to event-ring wrap (attribution incomplete when > 0)",
        move || o.ring.snapshot_with_stats().1.dropped,
    );

    let o = obs.clone();
    reg.register_gauge(
        "latch_depth_max",
        "maximum simultaneous page-latch depth observed",
        move || o.monitor.snapshot().max_latch_depth,
    );
    let o = obs.clone();
    reg.register_counter(
        "latch_depth_violations",
        "page-latch depth limit violations (must stay 0)",
        move || o.monitor.snapshot().latch_depth_violations,
    );
    let o = obs.clone();
    reg.register_counter(
        "lock_wait_with_latch_violations",
        "unconditional lock waits while holding a latch (must stay 0)",
        move || o.monitor.snapshot().lock_wait_with_latch_violations,
    );
    let o = obs.clone();
    reg.register_counter(
        "latch_underflows",
        "latch releases without a matching acquire (must stay 0)",
        move || o.monitor.snapshot().latch_underflows,
    );
    let o = obs.clone();
    reg.register_counter(
        "redo_traversal_violations",
        "tree traversals during restart redo (must stay 0)",
        move || o.monitor.snapshot().redo_traversal_violations,
    );

    let o = obs.clone();
    reg.register_counter(
        "pool_hits",
        "buffer-pool page-table hits (frame already resident)",
        move || o.pool.hits.load(std::sync::atomic::Ordering::Relaxed),
    );
    let o = obs.clone();
    reg.register_counter(
        "pool_misses",
        "buffer-pool misses (page loaded from disk)",
        move || o.pool.misses.load(std::sync::atomic::Ordering::Relaxed),
    );
    let o = obs.clone();
    reg.register_counter(
        "pool_evictions",
        "buffer-pool evictions (resident page displaced)",
        move || o.pool.evictions.load(std::sync::atomic::Ordering::Relaxed),
    );
    let o = obs.clone();
    reg.register_counter(
        "pool_bg_writer_pages",
        "dirty pages written back by the pool's background writer",
        move || o.pool.bg_writer_pages.load(std::sync::atomic::Ordering::Relaxed),
    );
    let o = obs.clone();
    reg.register_counter(
        "pool_shard_contended",
        "pool shard-mutex acquisitions that found the mutex held",
        move || o.pool.shard_contended.load(std::sync::atomic::Ordering::Relaxed),
    );
    let o = obs.clone();
    reg.register_counter(
        "wal_group_batches",
        "WAL group-flush batches (one write + optional fsync each)",
        move || o.wal.group_batches.load(std::sync::atomic::Ordering::Relaxed),
    );
    let o = obs.clone();
    reg.register_counter(
        "wal_group_riders",
        "committers satisfied by a group flush they did not lead",
        move || o.wal.group_riders.load(std::sync::atomic::Ordering::Relaxed),
    );
}

/// Bridge every `ariesim-common` paper counter (locks acquired, page
/// I/Os, log passes, ...) into the registry as counters, keeping the
/// counter-block field names.
pub fn register_stats(reg: &MetricsRegistry, stats: &StatsHandle) {
    let names: Vec<&'static str> = stats
        .snapshot()
        .entries()
        .iter()
        .map(|&(n, _)| n)
        .collect();
    for (i, name) in names.into_iter().enumerate() {
        let s = stats.clone();
        reg.register_counter(name, "paper efficiency counter (see common::stats)", move || {
            s.snapshot().entries()[i].1
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn snake_case_rule() {
        assert!(is_snake_case("op_commit"));
        assert!(is_snake_case("p99"));
        assert!(!is_snake_case("OpCommit"));
        assert!(!is_snake_case("_lead"));
        assert!(!is_snake_case("9lead"));
        assert!(!is_snake_case("has-dash"));
        assert!(!is_snake_case(""));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_registration_panics() {
        let reg = MetricsRegistry::new();
        reg.register_counter("twice", "first", || 1);
        reg.register_counter("twice", "second", || 2);
    }

    #[test]
    #[should_panic(expected = "not snake_case")]
    fn bad_name_panics() {
        let reg = MetricsRegistry::new();
        reg.register_counter("NotSnake", "bad", || 0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let obs = Obs::enabled(64);
        obs.hist.op_commit.record_ns(1_000);
        obs.hist.op_commit.record_ns(3_000);
        obs.gauge.repl_lag.set_watermarks(500, 100);
        let reg = for_obs(&obs);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE op_commit histogram"));
        assert!(text.contains("op_commit_count 2\n"));
        assert!(text.contains("op_commit_sum 4000\n"));
        assert!(text.contains("op_commit_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("# TYPE repl_lag_bytes gauge"));
        assert!(text.contains("repl_lag_bytes 400\n"));
        assert!(text.contains("repl_lag_lsn_delta 400\n"));
        assert!(text.contains("# TYPE trace_events_recorded counter"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = std::sync::Arc::new(crate::LatencyHistogram::default());
        h.record_ns(1); // bucket 0 (le 1)
        h.record_ns(2); // bucket 1 (le 3)
        h.record_ns(2);
        let hc = h.clone();
        reg.register_histogram("tiny", "test", move || hc.snapshot());
        let text = reg.render_prometheus();
        assert!(text.contains("tiny_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("tiny_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("tiny_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn json_exposition_round_trips() {
        let obs = Obs::enabled(64);
        obs.hist.lock_wait.record_ns(2_000);
        obs.gauge.recovery.pages_redone.set(7);
        let reg = for_obs(&obs);
        let v = json::parse(&reg.render_json()).expect("valid JSON");
        let lw = v.get("lock_wait").unwrap();
        assert_eq!(lw.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(lw.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(lw.get("sum_ns").unwrap().as_u64(), Some(2_000));
        let pr = v.get("recovery_pages_redone").unwrap();
        assert_eq!(pr.get("type").unwrap().as_str(), Some("gauge"));
        assert_eq!(pr.get("value").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn obs_and_stats_names_are_unique_and_snake_case() {
        let obs = Obs::enabled(64);
        let reg = for_obs(&obs);
        register_stats(&reg, &ariesim_common::stats::new_stats());
        let names = reg.names();
        for n in &names {
            assert!(is_snake_case(n), "bad metric name {n:?}");
        }
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names registered");
        // The registry really did absorb all three sources.
        assert!(names.iter().any(|n| n == "op_commit"));
        assert!(names.iter().any(|n| n == "span_wal_fsync_self_ns"));
        assert!(names.iter().any(|n| n == "locks_acquired"));
    }

    #[test]
    fn stats_bridge_tracks_live_counters() {
        let stats = ariesim_common::stats::new_stats();
        let reg = MetricsRegistry::new();
        register_stats(&reg, &stats);
        stats
            .locks_acquired
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        let collected = reg.collect();
        let (_, v) = collected
            .iter()
            .find(|(n, _)| n == "locks_acquired")
            .expect("bridged");
        match v {
            MetricValue::Counter(3) => {}
            other => panic!("expected Counter(3), got {other:?}"),
        }
    }
}
