//! Structured event tracing: a fixed-capacity, lock-free ring buffer.
//!
//! Writers claim a global sequence number with one `fetch_add` and publish
//! into `slot = seq % capacity` under a per-slot seqlock (odd = write in
//! progress). Readers copy a slot's words and accept the copy only if the
//! slot's sequence word was even and unchanged around the copy. A reader
//! racing a wrapping writer therefore drops that slot instead of observing
//! a torn event; every word is an `AtomicU64`, so there is no undefined
//! behaviour anywhere, and recording never blocks or allocates.
//!
//! The ring answers the question counters cannot: *which interleaving*
//! happened. Dumped as JSONL, a Figure 1/3/11 run can be replayed event by
//! event — latch hand-offs, lock waits, SMO windows, traversal restarts.

use crate::json::{self, JsonValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What happened. Discriminants are stable; they appear in JSONL dumps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// A page latch was granted (`page`, `mode`).
    LatchAcquire = 0,
    /// A page latch was released (`page`, `mode`).
    LatchRelease = 1,
    /// A lock was granted (`txn`, `aux` = lock-name hash).
    LockGrant = 2,
    /// An unconditional lock request started waiting.
    LockWait = 3,
    /// A conditional lock request was denied (the §2.2 release-latches path).
    LockDeny = 4,
    /// A structure modification operation began (`page` = SMO root page).
    SmoBegin = 5,
    /// A structure modification operation completed.
    SmoEnd = 6,
    /// A traversal restarted after the Figure 4 ambiguity test (`page`).
    TraversalRestart = 7,
    /// The log was forced (`aux` = bytes made durable).
    LogForce = 8,
    /// A CLR (or dummy CLR) was written (`aux` = its LSN).
    ClrWrite = 9,
    /// A tree latch was acquired (`mode`; `page` unused).
    TreeLatchAcquire = 10,
    /// An attribution span opened (`aux` = [`SpanKind`](crate::SpanKind)
    /// discriminant).
    SpanBegin = 11,
    /// An attribution span closed (`aux` = kind in the low 8 bits, self
    /// nanoseconds in the high 56; see [`crate::span::pack_end_aux`]).
    SpanEnd = 12,
    /// A dirty page was written back to disk by the pool (eviction, flush,
    /// or the background writer). `page` is the page, `aux` its `page_lsn`,
    /// and `txn` carries the log's durable LSN at the instant of the write —
    /// so `txn >= aux` on every such event *is* the WAL rule, checkable
    /// offline from a ring dump.
    PageWriteBack = 13,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::LatchAcquire => "latch_acquire",
            EventKind::LatchRelease => "latch_release",
            EventKind::LockGrant => "lock_grant",
            EventKind::LockWait => "lock_wait",
            EventKind::LockDeny => "lock_deny",
            EventKind::SmoBegin => "smo_begin",
            EventKind::SmoEnd => "smo_end",
            EventKind::TraversalRestart => "traversal_restart",
            EventKind::LogForce => "log_force",
            EventKind::ClrWrite => "clr_write",
            EventKind::TreeLatchAcquire => "tree_latch_acquire",
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::PageWriteBack => "page_write_back",
        }
    }

    pub fn from_name(s: &str) -> Option<EventKind> {
        Some(match s {
            "latch_acquire" => EventKind::LatchAcquire,
            "latch_release" => EventKind::LatchRelease,
            "lock_grant" => EventKind::LockGrant,
            "lock_wait" => EventKind::LockWait,
            "lock_deny" => EventKind::LockDeny,
            "smo_begin" => EventKind::SmoBegin,
            "smo_end" => EventKind::SmoEnd,
            "traversal_restart" => EventKind::TraversalRestart,
            "log_force" => EventKind::LogForce,
            "clr_write" => EventKind::ClrWrite,
            "tree_latch_acquire" => EventKind::TreeLatchAcquire,
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd,
            "page_write_back" => EventKind::PageWriteBack,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::LatchAcquire,
            1 => EventKind::LatchRelease,
            2 => EventKind::LockGrant,
            3 => EventKind::LockWait,
            4 => EventKind::LockDeny,
            5 => EventKind::SmoBegin,
            6 => EventKind::SmoEnd,
            7 => EventKind::TraversalRestart,
            8 => EventKind::LogForce,
            9 => EventKind::ClrWrite,
            10 => EventKind::TreeLatchAcquire,
            11 => EventKind::SpanBegin,
            12 => EventKind::SpanEnd,
            13 => EventKind::PageWriteBack,
            _ => return None,
        })
    }
}

/// Latch/lock mode tag carried by latch and lock events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ModeTag {
    None = 0,
    S = 1,
    X = 2,
    Instant = 3,
}

impl ModeTag {
    pub fn as_str(self) -> &'static str {
        match self {
            ModeTag::None => "-",
            ModeTag::S => "S",
            ModeTag::X => "X",
            ModeTag::Instant => "instant",
        }
    }

    fn from_u8(v: u8) -> ModeTag {
        match v {
            1 => ModeTag::S,
            2 => ModeTag::X,
            3 => ModeTag::Instant,
            _ => ModeTag::None,
        }
    }
}

/// A decoded trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Global order of the event (gaps mean the ring wrapped).
    pub seq: u64,
    /// Nanoseconds since the ring was created.
    pub ts_ns: u64,
    /// OS-assigned-ish thread tag (stable within a process run).
    pub thread: u32,
    /// Transaction the event belongs to; 0 when unknown (latch layer).
    pub txn: u64,
    pub kind: EventKind,
    pub mode: ModeTag,
    /// Page id the event concerns; 0 when not applicable.
    pub page: u32,
    /// Kind-specific payload (LSN, byte count, lock-name hash).
    pub aux: u64,
}

const SLOT_WORDS: usize = 5;

struct Slot {
    /// Seqlock word: `2*seq + 1` while writing, `2*seq + 2` when published.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

thread_local! {
    static THREAD_TAG: u32 = {
        use std::sync::atomic::AtomicU32;
        static NEXT: AtomicU32 = AtomicU32::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// Small dense per-process thread tag (thread ids are unwieldy in dumps).
pub fn thread_tag() -> u32 {
    THREAD_TAG.with(|t| *t)
}

/// The ring. Capacity is rounded up to a power of two.
pub struct EventRing {
    slots: Vec<Slot>,
    mask: u64,
    cursor: AtomicU64,
    epoch: Instant,
}

impl EventRing {
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.next_power_of_two().max(8);
        EventRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: [const { AtomicU64::new(0) }; SLOT_WORDS],
                })
                .collect(),
            mask: cap as u64 - 1,
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of events ever recorded (≥ number still resident).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free: one fetch_add + seven relaxed stores.
    pub fn push(&self, kind: EventKind, mode: ModeTag, txn: u64, page: u32, aux: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let ts = self.epoch.elapsed().as_nanos() as u64;
        let meta = (thread_tag() as u64) << 32 | (kind as u64) << 8 | mode as u64;
        slot.seq.store(2 * seq + 1, Ordering::Release);
        slot.words[0].store(ts, Ordering::Relaxed);
        slot.words[1].store(meta, Ordering::Relaxed);
        slot.words[2].store(txn, Ordering::Relaxed);
        slot.words[3].store(page as u64, Ordering::Relaxed);
        slot.words[4].store(aux, Ordering::Relaxed);
        slot.seq.store(2 * seq + 2, Ordering::Release);
    }

    /// Copy out every resident, fully-published event, oldest first.
    /// Events being overwritten during the copy are skipped, not torn.
    pub fn snapshot(&self) -> Vec<Event> {
        self.snapshot_with_stats().0
    }

    /// [`snapshot`](Self::snapshot) plus a [`RingStats`] accounting for
    /// what the snapshot could *not* see: events overwritten by ring wrap
    /// and slots skipped because a writer raced the copy. Attribution
    /// layers use this to say "incomplete" instead of silently
    /// under-reporting.
    pub fn snapshot_with_stats(&self) -> (Vec<Event>, RingStats) {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut torn = 0u64;
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue; // never written
            }
            if s1 % 2 == 1 {
                torn += 1; // mid-write
                continue;
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                torn += 1; // overwritten while copying
                continue;
            }
            let seq = (s1 - 2) / 2;
            let meta = words[1];
            let Some(kind) = EventKind::from_u8((meta >> 8) as u8) else {
                torn += 1; // undecodable kind: treat as a torn slot
                continue;
            };
            out.push(Event {
                seq,
                ts_ns: words[0],
                thread: (meta >> 32) as u32,
                txn: words[2],
                kind,
                mode: ModeTag::from_u8(meta as u8),
                page: words[3] as u32,
                aux: words[4],
            });
        }
        out.sort_by_key(|e| e.seq);
        let recorded = self.recorded();
        let stats = RingStats {
            recorded,
            capacity: self.capacity() as u64,
            resident: out.len() as u64,
            dropped: recorded.saturating_sub(self.capacity() as u64),
            torn,
        };
        (out, stats)
    }

    /// Dump the resident events as JSON Lines, preceded by a header line
    /// (see [`RingStats::to_json_line`]) stating how many events the dump
    /// is missing. Consumers that only want events can skip any line that
    /// [`Event::parse_json_line`] rejects.
    pub fn dump_jsonl(&self) -> String {
        let (events, stats) = self.snapshot_with_stats();
        let mut out = stats.to_json_line();
        out.push('\n');
        for e in events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    pub fn reset(&self) {
        // Not atomic w.r.t. concurrent pushes; callers quiesce first.
        self.cursor.store(0, Ordering::Relaxed);
        for s in &self.slots {
            s.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// Completeness accounting for one ring snapshot/dump.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Events ever pushed into the ring.
    pub recorded: u64,
    /// Ring capacity in slots.
    pub capacity: u64,
    /// Events the snapshot actually returned.
    pub resident: u64,
    /// Events lost to ring wrap (`recorded - capacity`, clamped at 0).
    pub dropped: u64,
    /// Slots skipped because a writer raced the copy (mid-write or
    /// overwritten while copying).
    pub torn: u64,
}

impl RingStats {
    /// Whether the snapshot saw every event ever recorded.
    pub fn complete(&self) -> bool {
        self.dropped == 0 && self.torn == 0
    }

    /// The JSONL dump header line.
    pub fn to_json_line(&self) -> String {
        let mut o = json::Object::new();
        o.field_str("trace", "ariesim-events-v1");
        o.field_u64("recorded", self.recorded);
        o.field_u64("capacity", self.capacity);
        o.field_u64("resident", self.resident);
        o.field_u64("dropped", self.dropped);
        o.field_u64("torn", self.torn);
        o.finish()
    }

    /// Parse a dump header line; `None` if the line is not a header.
    pub fn parse_json_line(line: &str) -> Option<RingStats> {
        let v = json::parse(line)?;
        if v.get("trace")?.as_str() != Some("ariesim-events-v1") {
            return None;
        }
        let get = |k: &str| v.get(k).and_then(JsonValue::as_u64);
        Some(RingStats {
            recorded: get("recorded")?,
            capacity: get("capacity")?,
            resident: get("resident")?,
            dropped: get("dropped")?,
            torn: get("torn")?,
        })
    }
}

impl Event {
    pub fn to_json_line(&self) -> String {
        let mut o = json::Object::new();
        o.field_u64("seq", self.seq);
        o.field_u64("ts_ns", self.ts_ns);
        o.field_u64("thread", self.thread as u64);
        o.field_u64("txn", self.txn);
        o.field_str("kind", self.kind.as_str());
        o.field_str("mode", self.mode.as_str());
        o.field_u64("page", self.page as u64);
        o.field_u64("aux", self.aux);
        o.finish()
    }

    /// Parse one JSONL line produced by [`Event::to_json_line`].
    pub fn parse_json_line(line: &str) -> Option<Event> {
        let v = json::parse(line)?;
        let JsonValue::Object(fields) = v else {
            return None;
        };
        let get_u64 = |k: &str| -> Option<u64> {
            fields.iter().find(|(n, _)| n == k)?.1.as_u64()
        };
        let get_str = |k: &str| -> Option<String> {
            match fields.iter().find(|(n, _)| n == k)? {
                (_, JsonValue::String(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let mode = match get_str("mode")?.as_str() {
            "S" => ModeTag::S,
            "X" => ModeTag::X,
            "instant" => ModeTag::Instant,
            _ => ModeTag::None,
        };
        Some(Event {
            seq: get_u64("seq")?,
            ts_ns: get_u64("ts_ns")?,
            thread: get_u64("thread")? as u32,
            txn: get_u64("txn")?,
            kind: EventKind::from_name(&get_str("kind")?)?,
            mode,
            page: get_u64("page")? as u32,
            aux: get_u64("aux")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot_in_order() {
        let r = EventRing::new(16);
        r.push(EventKind::LatchAcquire, ModeTag::S, 1, 42, 0);
        r.push(EventKind::LockWait, ModeTag::X, 1, 0, 7);
        r.push(EventKind::LatchRelease, ModeTag::S, 1, 42, 0);
        let evs = r.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::LatchAcquire);
        assert_eq!(evs[0].page, 42);
        assert_eq!(evs[1].kind, EventKind::LockWait);
        assert_eq!(evs[1].aux, 7);
        assert!(evs[0].seq < evs[1].seq && evs[1].seq < evs[2].seq);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let r = EventRing::new(8);
        for i in 0..20u64 {
            r.push(EventKind::LogForce, ModeTag::None, 0, 0, i);
        }
        let evs = r.snapshot();
        assert_eq!(evs.len(), 8);
        assert_eq!(evs.first().unwrap().aux, 12);
        assert_eq!(evs.last().unwrap().aux, 19);
        assert_eq!(r.recorded(), 20);
    }

    #[test]
    fn jsonl_roundtrip() {
        let r = EventRing::new(8);
        r.push(EventKind::SmoBegin, ModeTag::X, 9, 4, 0);
        r.push(EventKind::ClrWrite, ModeTag::None, 9, 0, 12345);
        let dump = r.dump_jsonl();
        let header = RingStats::parse_json_line(dump.lines().next().unwrap())
            .expect("first line is the header");
        assert_eq!(header.resident, 2);
        assert!(header.complete());
        let parsed: Vec<Event> = dump
            .lines()
            .skip(1)
            .map(|l| Event::parse_json_line(l).expect("parses"))
            .collect();
        assert_eq!(parsed, r.snapshot());
        // The header line is not itself a parseable event.
        assert!(Event::parse_json_line(dump.lines().next().unwrap()).is_none());
    }

    #[test]
    fn wrap_reports_dropped_events() {
        let r = EventRing::new(8);
        for i in 0..20u64 {
            r.push(EventKind::LogForce, ModeTag::None, 0, 0, i);
        }
        let (evs, stats) = r.snapshot_with_stats();
        assert_eq!(evs.len(), 8);
        assert_eq!(stats.recorded, 20);
        assert_eq!(stats.dropped, 12);
        assert_eq!(stats.resident, 8);
        assert!(!stats.complete());
        let header = RingStats::parse_json_line(r.dump_jsonl().lines().next().unwrap());
        assert_eq!(header, Some(stats));
    }

    #[test]
    fn unwrapped_ring_is_complete() {
        let r = EventRing::new(8);
        r.push(EventKind::LockGrant, ModeTag::S, 1, 0, 0);
        let (_, stats) = r.snapshot_with_stats();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.torn, 0);
        assert!(stats.complete());
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let r = EventRing::new(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..5000 {
                        r.push(EventKind::LockGrant, ModeTag::S, t, i as u32, i);
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 20_000);
        for e in r.snapshot() {
            // Every surviving event must be internally consistent.
            assert_eq!(e.kind, EventKind::LockGrant);
            assert_eq!(e.aux, e.page as u64);
        }
    }

    #[test]
    fn thread_tags_are_distinct() {
        let a = thread_tag();
        let b = std::thread::spawn(thread_tag).join().unwrap();
        assert_ne!(a, b);
    }
}
