//! Span-based time attribution.
//!
//! A span is a scoped region of wall time tagged with a [`SpanKind`]
//! (lock wait, latch wait, WAL append, fsync, page I/O, standby apply, or
//! user work). Spans nest on a per-thread stack; when a guard drops, its
//! **self time** — elapsed time minus the time spent inside child spans —
//! is added to the owning [`Obs`](crate::Obs)'s [`SpanTotals`] and a
//! `SpanEnd` event carrying the self time is pushed into the event ring.
//! Because self times never double-count nested work, the sum of all span
//! self times over a window equals the wall time covered by the outermost
//! spans: wrap every foreground operation in a `UserWork` span and the
//! per-kind totals become a complete breakdown of where the time went.
//!
//! The hot path is lock-free: a thread-local `Vec` push/pop, two ring
//! pushes, and two relaxed atomic adds. A disabled `Obs` hands out a
//! disarmed guard whose `Drop` is a single branch.
//!
//! Balance under panic is guaranteed by RAII: unwinding drops the guard,
//! which pops the stack frame it pushed. Spans from *different* `Obs`
//! domains may nest on one thread (e.g. a primary-domain `UserWork` span
//! around a standby-domain read); child-time subtraction still applies —
//! each guard records into its own domain, so a domain's totals only
//! include time its own spans claimed as self time.

use crate::trace::{EventKind, ModeTag};
use crate::Obs;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What a span attributes its self time to. Discriminants are stable;
/// they appear in `SpanBegin`/`SpanEnd` event payloads and JSONL dumps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SpanKind {
    /// Blocked in an unconditional lock wait.
    LockWait = 0,
    /// Blocked acquiring a page or tree latch.
    LatchWait = 1,
    /// Appending a record to the WAL (serialization + buffer copy, under
    /// the log mutex).
    WalAppend = 2,
    /// Forcing the WAL to durable storage (write + fsync).
    WalFsync = 3,
    /// Reading a page from disk into the buffer pool.
    PageRead = 4,
    /// Writing a dirty page from the buffer pool to disk.
    PageWrite = 5,
    /// Applying redo on a standby or during restart recovery.
    Apply = 6,
    /// Foreground work not otherwise attributed; wrap whole operations in
    /// this so the breakdown sums to wall time.
    UserWork = 7,
}

/// Number of span kinds; sizes the arrays in [`SpanTotals`].
pub const SPAN_KIND_COUNT: usize = 8;

/// Stable snake_case names, indexed by `SpanKind as usize`.
pub const SPAN_NAMES: [&str; SPAN_KIND_COUNT] = [
    "lock_wait",
    "latch_wait",
    "wal_append",
    "wal_fsync",
    "page_read",
    "page_write",
    "apply",
    "user_work",
];

/// Self time is packed into the high 56 bits of a `SpanEnd` event's `aux`
/// word (the low 8 bits carry the kind), so it saturates at ~2.3 years.
pub const MAX_PACKED_SELF_NS: u64 = (1 << 56) - 1;

impl SpanKind {
    pub fn as_str(self) -> &'static str {
        SPAN_NAMES[self as usize]
    }

    pub fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::LockWait,
            1 => SpanKind::LatchWait,
            2 => SpanKind::WalAppend,
            3 => SpanKind::WalFsync,
            4 => SpanKind::PageRead,
            5 => SpanKind::PageWrite,
            6 => SpanKind::Apply,
            7 => SpanKind::UserWork,
            _ => return None,
        })
    }

    /// Decode the kind from a `SpanBegin`/`SpanEnd` event's `aux` word.
    pub fn from_aux(aux: u64) -> Option<SpanKind> {
        SpanKind::from_u8((aux & 0xff) as u8)
    }
}

/// Extract the packed self time from a `SpanEnd` event's `aux` word.
pub fn self_ns_from_aux(aux: u64) -> u64 {
    aux >> 8
}

/// Pack a kind and self time into a `SpanEnd` `aux` word.
pub fn pack_end_aux(kind: SpanKind, self_ns: u64) -> u64 {
    (self_ns.min(MAX_PACKED_SELF_NS) << 8) | kind as u64
}

/// Exact per-kind self-time totals, independent of ring capacity: even when
/// the event ring wraps, these counters hold the complete attribution.
#[derive(Default)]
pub struct SpanTotals {
    self_ns: [AtomicU64; SPAN_KIND_COUNT],
    count: [AtomicU64; SPAN_KIND_COUNT],
}

impl SpanTotals {
    fn add(&self, kind: SpanKind, self_ns: u64) {
        self.self_ns[kind as usize].fetch_add(self_ns, Ordering::Relaxed);
        self.count[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            self_ns: std::array::from_fn(|i| self.self_ns[i].load(Ordering::Relaxed)),
            count: std::array::from_fn(|i| self.count[i].load(Ordering::Relaxed)),
        }
    }

    pub fn reset(&self) {
        for i in 0..SPAN_KIND_COUNT {
            self.self_ns[i].store(0, Ordering::Relaxed);
            self.count[i].store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of [`SpanTotals`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Self nanoseconds per kind, indexed by `SpanKind as usize`.
    pub self_ns: [u64; SPAN_KIND_COUNT],
    /// Completed spans per kind.
    pub count: [u64; SPAN_KIND_COUNT],
}

impl SpanSnapshot {
    /// Stable (name, self_ns, count) rows in discriminant order.
    pub fn named(&self) -> [(&'static str, u64, u64); SPAN_KIND_COUNT] {
        std::array::from_fn(|i| (SPAN_NAMES[i], self.self_ns[i], self.count[i]))
    }

    /// Total self time across all kinds — the wall time covered by the
    /// outermost spans.
    pub fn total_ns(&self) -> u64 {
        self.self_ns.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.count.iter().all(|&c| c == 0)
    }
}

struct Frame {
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Current span-nesting depth on this thread. Exposed for balance tests.
#[doc(hidden)]
pub fn stack_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// RAII guard for one span; see [`Obs::span`](crate::Obs::span). Dropping
/// it (normally or during unwind) closes the span and records its self
/// time.
pub struct SpanGuard<'a> {
    armed: Option<(&'a Obs, Instant)>,
    kind: SpanKind,
    txn: u64,
    page: u32,
}

pub(crate) fn begin(obs: &Obs, kind: SpanKind, txn: u64, page: u32) -> SpanGuard<'_> {
    if !obs.on() {
        return SpanGuard {
            armed: None,
            kind,
            txn,
            page,
        };
    }
    STACK.with(|s| s.borrow_mut().push(Frame { child_ns: 0 }));
    obs.ring
        .push(EventKind::SpanBegin, ModeTag::None, txn, page, kind as u64);
    SpanGuard {
        armed: Some((obs, Instant::now())),
        kind,
        txn,
        page,
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some((obs, start)) = self.armed.take() else {
            return;
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        let self_ns = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let child_ns = s.pop().map_or(0, |f| f.child_ns);
            if let Some(parent) = s.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed);
            }
            elapsed.saturating_sub(child_ns)
        });
        obs.spans.add(self.kind, self_ns);
        obs.ring.push(
            EventKind::SpanEnd,
            ModeTag::None,
            self.txn,
            self.page,
            pack_end_aux(self.kind, self_ns),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use std::time::Duration;

    #[test]
    fn disabled_guard_is_inert() {
        let obs = Obs::disabled();
        {
            let _g = obs.span(SpanKind::UserWork, 1, 0);
            assert_eq!(stack_depth(), 0);
        }
        assert_eq!(obs.ring.recorded(), 0);
        assert!(obs.spans.snapshot().is_empty());
    }

    #[test]
    fn nested_spans_subtract_child_time() {
        let obs = Obs::enabled(64);
        {
            let _outer = obs.span(SpanKind::UserWork, 1, 0);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = obs.span(SpanKind::WalFsync, 1, 0);
                std::thread::sleep(Duration::from_millis(8));
            }
        }
        let s = obs.spans.snapshot();
        let user = s.self_ns[SpanKind::UserWork as usize];
        let fsync = s.self_ns[SpanKind::WalFsync as usize];
        assert_eq!(s.count[SpanKind::UserWork as usize], 1);
        assert_eq!(s.count[SpanKind::WalFsync as usize], 1);
        assert!(fsync >= 8_000_000, "inner self time too small: {fsync}");
        // Outer self time excludes the inner span's 8 ms entirely.
        assert!(user >= 4_000_000, "outer self time too small: {user}");
        assert!(user < fsync, "outer ({user}) should exclude inner ({fsync})");
        // Sum of self times == wall time of the outer span (within drop
        // overhead, which the outer span absorbs as its own self time).
        assert_eq!(s.total_ns(), user + fsync);
    }

    #[test]
    fn end_events_carry_packed_self_time() {
        let obs = Obs::enabled(64);
        {
            let _g = obs.span(SpanKind::PageRead, 7, 42);
        }
        let evs = obs.ring.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::SpanBegin);
        assert_eq!(SpanKind::from_aux(evs[0].aux), Some(SpanKind::PageRead));
        assert_eq!(evs[1].kind, EventKind::SpanEnd);
        assert_eq!(evs[1].txn, 7);
        assert_eq!(evs[1].page, 42);
        assert_eq!(SpanKind::from_aux(evs[1].aux), Some(SpanKind::PageRead));
        let packed = self_ns_from_aux(evs[1].aux);
        let total = obs.spans.snapshot().self_ns[SpanKind::PageRead as usize];
        assert_eq!(packed, total);
    }

    #[test]
    fn stack_balances_across_panic_unwind() {
        let obs = Obs::enabled(64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = obs.span(SpanKind::UserWork, 1, 0);
            let _inner = obs.span(SpanKind::LockWait, 1, 0);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(stack_depth(), 0, "unwind must pop every frame");
        let s = obs.spans.snapshot();
        assert_eq!(s.count[SpanKind::UserWork as usize], 1);
        assert_eq!(s.count[SpanKind::LockWait as usize], 1);
        // A fresh span on the same thread still nests correctly.
        {
            let _g = obs.span(SpanKind::Apply, 2, 0);
            assert_eq!(stack_depth(), 1);
        }
        assert_eq!(stack_depth(), 0);
    }

    #[test]
    fn spans_on_many_threads_accumulate() {
        let obs = Obs::enabled(1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let obs = &obs;
                s.spawn(move || {
                    for _ in 0..50 {
                        let _g = obs.span(SpanKind::UserWork, t, 0);
                    }
                });
            }
        });
        assert_eq!(obs.spans.snapshot().count[SpanKind::UserWork as usize], 200);
    }

    #[test]
    fn kind_roundtrips() {
        for i in 0..SPAN_KIND_COUNT as u8 {
            let k = SpanKind::from_u8(i).unwrap();
            assert_eq!(k as u8, i);
            assert_eq!(SPAN_NAMES[i as usize], k.as_str());
        }
        assert_eq!(SpanKind::from_u8(8), None);
        let aux = pack_end_aux(SpanKind::WalFsync, u64::MAX);
        assert_eq!(self_ns_from_aux(aux), MAX_PACKED_SELF_NS);
        assert_eq!(SpanKind::from_aux(aux), Some(SpanKind::WalFsync));
    }
}
