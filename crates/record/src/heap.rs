//! The heap manager: logged, locked record operations on heap files.

use crate::body::HeapBody;
use ariesim_common::ids::SlotNo;
use ariesim_common::page::PageType;
use ariesim_common::slotted::SLOT_LEN;
use ariesim_common::stats::StatsHandle;
use ariesim_common::{Error, PageBuf, PageId, Result, Rid, TableId, TxnId};
use ariesim_lock::{LockDuration, LockManager, LockMode, LockName};
use ariesim_storage::{BufferPool, SpaceMap};
use ariesim_txn::TxnHandle;
use ariesim_wal::{ChainLogger, LogManager, LogRecord, ResourceManager, RmId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Space reserved on heap pages by uncommitted deletes: an insert must not
/// consume it, so that the deletes' page-oriented undo can always re-insert.
#[derive(Default)]
struct Reservations {
    /// page → total reserved bytes
    per_page: HashMap<PageId, usize>,
    /// txn → (page → bytes), so transaction end can release precisely.
    per_txn: HashMap<TxnId, HashMap<PageId, usize>>,
}

impl Reservations {
    fn add(&mut self, txn: TxnId, page: PageId, bytes: usize) {
        *self.per_page.entry(page).or_insert(0) += bytes;
        *self
            .per_txn
            .entry(txn)
            .or_default()
            .entry(page)
            .or_insert(0) += bytes;
    }

    fn release(&mut self, txn: TxnId, page: PageId, bytes: usize) {
        if let Some(pages) = self.per_txn.get_mut(&txn) {
            if let Some(b) = pages.get_mut(&page) {
                let take = bytes.min(*b);
                *b -= take;
                if *b == 0 {
                    pages.remove(&page);
                }
                if let Some(total) = self.per_page.get_mut(&page) {
                    *total = total.saturating_sub(take);
                    if *total == 0 {
                        self.per_page.remove(&page);
                    }
                }
            }
        }
    }

    fn release_txn(&mut self, txn: TxnId) {
        if let Some(pages) = self.per_txn.remove(&txn) {
            for (page, bytes) in pages {
                if let Some(total) = self.per_page.get_mut(&page) {
                    *total = total.saturating_sub(bytes);
                    if *total == 0 {
                        self.per_page.remove(&page);
                    }
                }
            }
        }
    }

    fn reserved(&self, page: PageId) -> usize {
        self.per_page.get(&page).copied().unwrap_or(0)
    }
}

/// The heap record manager. One instance serves every table; per-table state
/// is just the first page id (kept by the catalog in `ariesim-db`).
pub struct HeapManager {
    pool: Arc<BufferPool>,
    space: SpaceMap,
    locks: Arc<LockManager>,
    log: Arc<LogManager>,
    resv: Mutex<Reservations>,
    /// Lock data pages instead of records (the paper's §2.1 page
    /// granularity), selectable per database.
    pub page_granularity: bool,
    #[allow(dead_code)]
    stats: StatsHandle,
}

impl HeapManager {
    pub fn new(
        pool: Arc<BufferPool>,
        locks: Arc<LockManager>,
        log: Arc<LogManager>,
        stats: StatsHandle,
    ) -> Arc<HeapManager> {
        Self::new_with_granularity(pool, locks, log, stats, false)
    }

    /// [`HeapManager::new`] with explicit data-lock granularity: when
    /// `page_granularity` is true, record operations lock the data *page*
    /// instead of the record (§2.1's coarser granule).
    pub fn new_with_granularity(
        pool: Arc<BufferPool>,
        locks: Arc<LockManager>,
        log: Arc<LogManager>,
        stats: StatsHandle,
        page_granularity: bool,
    ) -> Arc<HeapManager> {
        Arc::new(HeapManager {
            space: SpaceMap::new(pool.clone()),
            pool,
            locks,
            log,
            resv: Mutex::new(Reservations::default()),
            page_granularity,
            stats,
        })
    }

    /// Transaction-end hook body: drop the transaction's reservations.
    /// Registered with the transaction manager by `ariesim-db`.
    pub fn on_txn_end(&self, txn: TxnId) {
        self.resv.lock().release_txn(txn);
    }

    fn data_lock(&self, rid: Rid) -> LockName {
        LockName::for_data(rid, self.page_granularity)
    }

    /// Create a heap file for `table`: allocates and formats its first page
    /// within `txn`. Returns the first page id.
    pub fn create_file(&self, txn: &TxnHandle, table: TableId) -> Result<PageId> {
        txn.with_logger(&self.log, |logger| {
            let page = self.space.allocate(logger)?;
            let mut g = self.pool.fix_x(page)?; // latch-rank: 2
            g.format(page, PageType::Heap, table.0, 0);
            let lsn = logger.update(RmId::Heap, page, HeapBody::Format { table }.encode());
            g.record_update(lsn);
            Ok(page)
        })
    }

    /// Insert a record, returning its RID. Takes a commit-duration X lock on
    /// the RID (which, under data-only locking, is also the lock on every
    /// index key derived from this record).
    pub fn insert(
        &self,
        txn: &TxnHandle,
        table: TableId,
        first_page: PageId,
        data: &[u8],
    ) -> Result<Rid> {
        let mut page = first_page;
        loop {
            let mut g = self.pool.fix_x(page)?; // latch-rank: 2
            let reserved = self.resv.lock().reserved(page);
            if g.total_free() >= data.len() + SLOT_LEN + reserved {
                // Choose a slot whose RID we can lock: a dead slot may carry a
                // commit-duration lock from an uncommitted deleter, in which
                // case we must not reuse it (conditional probe, paper §2.2
                // style: never wait for a lock under a latch).
                let mut chosen: Option<SlotNo> = None;
                for i in 0..g.slot_count() {
                    if g.cell(i).is_none() {
                        let rid = Rid {
                            page,
                            slot: SlotNo(i),
                        };
                        match self.locks.request(
                            txn.id,
                            self.data_lock(rid),
                            LockMode::X,
                            LockDuration::Commit,
                            true,
                        ) {
                            Ok(()) => {
                                chosen = Some(SlotNo(i));
                                break;
                            }
                            Err(Error::WouldBlock) => continue,
                            Err(e) => return Err(e),
                        }
                    }
                }
                let slot = match chosen {
                    Some(s) => s,
                    None => {
                        // Fresh slot: its RID has never existed, but under
                        // page-granularity locking the page lock itself can
                        // conflict, so probe conditionally all the same.
                        let s = SlotNo(g.slot_count());
                        let rid = Rid { page, slot: s };
                        match self.locks.request(
                            txn.id,
                            self.data_lock(rid),
                            LockMode::X,
                            LockDuration::Commit,
                            true,
                        ) {
                            Ok(()) => s,
                            Err(Error::WouldBlock) => {
                                // Release the latch and retry the page after
                                // waiting unconditionally.
                                let rid_lock = self.data_lock(rid);
                                drop(g);
                                self.locks.request(
                                    txn.id,
                                    rid_lock,
                                    LockMode::X,
                                    LockDuration::Commit,
                                    false,
                                )?;
                                continue;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                };
                let rid = Rid { page, slot };
                g.alloc_cell_at(slot, data)?;
                let lsn = txn.with_logger(&self.log, |l| {
                    l.update(
                        RmId::Heap,
                        page,
                        HeapBody::Insert {
                            table,
                            slot,
                            data: data.to_vec(),
                        }
                        .encode(),
                    )
                });
                g.record_update(lsn);
                return Ok(rid);
            }
            // No room here: follow the chain, extending the file at its end.
            let next = g.next();
            if next.is_null() {
                let new_page = self.extend_file(txn, table, page, g)?;
                page = new_page;
            } else {
                drop(g);
                page = next;
            }
        }
    }

    /// Append a fresh page to the heap file as a nested top action, while
    /// holding the X latch on the current last page (`g`). Returns the new
    /// page's id.
    fn extend_file(
        &self,
        txn: &TxnHandle,
        table: TableId,
        last: PageId,
        mut g: ariesim_storage::PageWriteGuard,
    ) -> Result<PageId> {
        let token = txn.begin_nta();
        let new_page = txn.with_logger(&self.log, |logger| -> Result<PageId> {
            let new_page = self.space.allocate(logger)?;
            {
                let mut ng = self.pool.fix_x(new_page)?; // latch-rank: 2
                ng.format(new_page, PageType::Heap, table.0, 0);
                let lsn = logger.update(RmId::Heap, new_page, HeapBody::Format { table }.encode());
                ng.record_update(lsn);
            }
            let lsn = logger.update(
                RmId::Heap,
                last,
                HeapBody::ChainNext {
                    old: PageId::NULL,
                    new: new_page,
                }
                .encode(),
            );
            g.set_next(new_page);
            g.record_update(lsn);
            Ok(new_page)
        })?;
        drop(g);
        txn.end_nta(&self.log, token);
        Ok(new_page)
    }

    /// Delete the record at `rid`. Takes the commit-duration X lock first
    /// (no latches held), then applies and logs the delete and reserves the
    /// freed space until the transaction ends.
    pub fn delete(&self, txn: &TxnHandle, table: TableId, rid: Rid) -> Result<Vec<u8>> {
        self.locks.request(
            txn.id,
            self.data_lock(rid),
            LockMode::X,
            LockDuration::Commit,
            false,
        )?;
        let mut g = self.pool.fix_x(rid.page)?; // latch-rank: 2
        let data = g.free_cell(rid.slot).map_err(|_| Error::BadRid { rid })?;
        let lsn = txn.with_logger(&self.log, |l| {
            l.update(
                RmId::Heap,
                rid.page,
                HeapBody::Delete {
                    table,
                    slot: rid.slot,
                    data: data.clone(),
                }
                .encode(),
            )
        });
        g.record_update(lsn);
        self.resv.lock().add(txn.id, rid.page, data.len());
        Ok(data)
    }

    /// Fetch the record at `rid`.
    ///
    /// With data-only locking the index manager has usually *already* locked
    /// this RID on the caller's behalf (paper §2.1: "the record manager does
    /// not have to lock the corresponding record"), so `already_locked`
    /// suppresses the S lock.
    pub fn fetch(&self, txn: &TxnHandle, rid: Rid, already_locked: bool) -> Result<Vec<u8>> {
        if !already_locked {
            self.locks.request(
                txn.id,
                self.data_lock(rid),
                LockMode::S,
                LockDuration::Commit,
                false,
            )?;
        }
        let g = self.pool.fix_s(rid.page)?; // latch-rank: 2
        g.cell(rid.slot.0)
            .map(|c| c.to_vec())
            .ok_or(Error::BadRid { rid })
    }

    /// Replace the record at `rid` in place, returning the replaced image
    /// (callers doing index maintenance diff old against new). The new
    /// image must fit in the page (records never move — RIDs are stable
    /// names; see crate docs).
    pub fn update(&self, txn: &TxnHandle, table: TableId, rid: Rid, new: &[u8]) -> Result<Vec<u8>> {
        self.locks.request(
            txn.id,
            self.data_lock(rid),
            LockMode::X,
            LockDuration::Commit,
            false,
        )?;
        let mut g = self.pool.fix_x(rid.page)?; // latch-rank: 2
        let old = g.cell(rid.slot.0).ok_or(Error::BadRid { rid })?.to_vec();
        let reserved = self.resv.lock().reserved(rid.page);
        if new.len() > old.len() && g.total_free() + old.len() < new.len() + reserved {
            return Err(Error::TooLarge {
                len: new.len(),
                max: g.total_free() + old.len() - reserved.min(g.total_free() + old.len()),
            });
        }
        g.free_cell(rid.slot)?;
        g.alloc_cell_at(rid.slot, new)?;
        let lsn = txn.with_logger(&self.log, |l| {
            l.update(
                RmId::Heap,
                rid.page,
                HeapBody::Update {
                    table,
                    slot: rid.slot,
                    old: old.clone(),
                    new: new.to_vec(),
                }
                .encode(),
            )
        });
        g.record_update(lsn);
        Ok(old)
    }

    /// Unlocked scan of a heap file (verification / examples). Returns every
    /// live record in (page, slot) order.
    pub fn scan_all(&self, first_page: PageId) -> Result<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut page = first_page;
        while !page.is_null() {
            let g = self.pool.fix_s(page)?; // latch-rank: 2
            for i in 0..g.slot_count() {
                if let Some(c) = g.cell(i) {
                    out.push((
                        Rid {
                            page,
                            slot: SlotNo(i),
                        },
                        c.to_vec(),
                    ));
                }
            }
            page = g.next();
        }
        Ok(out)
    }
}

impl ResourceManager for HeapManager {
    fn rm_id(&self) -> RmId {
        RmId::Heap
    }

    fn redo(&self, page: &mut PageBuf, rec: &LogRecord) -> Result<()> {
        match HeapBody::decode(&rec.body)? {
            HeapBody::Insert { slot, data, .. } => page.alloc_cell_at(slot, &data),
            HeapBody::Delete { slot, .. } => page.free_cell(slot).map(|_| ()),
            HeapBody::Update { slot, new, .. } => {
                page.free_cell(slot)?;
                page.alloc_cell_at(slot, &new)
            }
            HeapBody::Format { table } => {
                page.format(rec.page, PageType::Heap, table.0, 0);
                Ok(())
            }
            HeapBody::ChainNext { new, .. } => {
                page.set_next(new);
                Ok(())
            }
            HeapBody::Noop => Ok(()),
        }
    }

    fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()> {
        // Heap undo is always page-oriented: RIDs are stable, and
        // reservations guarantee re-insert space.
        let mut g = self.pool.fix_x(rec.page)?; // latch-rank: 2
        let clr_body = match HeapBody::decode(&rec.body)? {
            HeapBody::Insert { table, slot, data } => {
                g.free_cell(slot)?;
                HeapBody::Delete { table, slot, data }
            }
            HeapBody::Delete { table, slot, data } => {
                g.alloc_cell_at(slot, &data)?;
                self.resv.lock().release(logger.txn, rec.page, data.len());
                HeapBody::Insert { table, slot, data }
            }
            HeapBody::Update {
                table,
                slot,
                old,
                new,
            } => {
                g.free_cell(slot)?;
                g.alloc_cell_at(slot, &old)?;
                HeapBody::Update {
                    table,
                    slot,
                    old: new,
                    new: old,
                }
            }
            HeapBody::Format { .. } => {
                // The page becomes unreachable once the space-map undo frees
                // it; its bytes need no restoration.
                HeapBody::Noop
            }
            HeapBody::ChainNext { old, new } => {
                g.set_next(old);
                HeapBody::ChainNext {
                    old: new,
                    new: old,
                }
            }
            HeapBody::Noop => HeapBody::Noop,
        };
        let lsn = logger.clr(RmId::Heap, rec.page, rec.prev_lsn, clr_body.encode());
        g.record_update(lsn);
        Ok(())
    }
}
