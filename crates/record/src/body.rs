//! Log-record bodies owned by the heap resource manager.

use ariesim_common::codec::{Reader, Writer};
use ariesim_common::ids::SlotNo;
use ariesim_common::{Error, PageId, Result, TableId};

/// A heap log-record body. The affected page is in the record envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeapBody {
    /// Record inserted at `slot` with `data`. Undo: delete it.
    Insert {
        table: TableId,
        slot: SlotNo,
        data: Vec<u8>,
    },
    /// Record at `slot` deleted; `data` is the before-image. Undo: re-insert.
    Delete {
        table: TableId,
        slot: SlotNo,
        data: Vec<u8>,
    },
    /// Record at `slot` replaced. Undo: put `old` back.
    Update {
        table: TableId,
        slot: SlotNo,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// Page formatted as a fresh heap page for `table` (file extension NTA).
    Format { table: TableId },
    /// `next` chain pointer of this page changed (file extension NTA).
    ChainNext { old: PageId, new: PageId },
    /// CLR filler with no page effect (compensation for Format).
    Noop,
}

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_UPDATE: u8 = 3;
const OP_FORMAT: u8 = 4;
const OP_CHAIN: u8 = 5;
const OP_NOOP: u8 = 6;

impl HeapBody {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            HeapBody::Insert { table, slot, data } => {
                w.u8(OP_INSERT).table_id(*table).u16(slot.0).bytes(data);
            }
            HeapBody::Delete { table, slot, data } => {
                w.u8(OP_DELETE).table_id(*table).u16(slot.0).bytes(data);
            }
            HeapBody::Update {
                table,
                slot,
                old,
                new,
            } => {
                w.u8(OP_UPDATE)
                    .table_id(*table)
                    .u16(slot.0)
                    .bytes(old)
                    .bytes(new);
            }
            HeapBody::Format { table } => {
                w.u8(OP_FORMAT).table_id(*table);
            }
            HeapBody::ChainNext { old, new } => {
                w.u8(OP_CHAIN).page_id(*old).page_id(*new);
            }
            HeapBody::Noop => {
                w.u8(OP_NOOP);
            }
        }
        w.into_vec()
    }

    pub fn decode(buf: &[u8]) -> Result<HeapBody> {
        let mut r = Reader::new(buf);
        let op = r.u8()?;
        Ok(match op {
            OP_INSERT => HeapBody::Insert {
                table: r.table_id()?,
                slot: SlotNo(r.u16()?),
                data: r.bytes()?.to_vec(),
            },
            OP_DELETE => HeapBody::Delete {
                table: r.table_id()?,
                slot: SlotNo(r.u16()?),
                data: r.bytes()?.to_vec(),
            },
            OP_UPDATE => HeapBody::Update {
                table: r.table_id()?,
                slot: SlotNo(r.u16()?),
                old: r.bytes()?.to_vec(),
                new: r.bytes()?.to_vec(),
            },
            OP_FORMAT => HeapBody::Format {
                table: r.table_id()?,
            },
            OP_CHAIN => HeapBody::ChainNext {
                old: r.page_id()?,
                new: r.page_id()?,
            },
            OP_NOOP => HeapBody::Noop,
            other => {
                return Err(Error::Internal(format!("bad heap body op {other}")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let cases = vec![
            HeapBody::Insert {
                table: TableId(1),
                slot: SlotNo(3),
                data: b"rec".to_vec(),
            },
            HeapBody::Delete {
                table: TableId(1),
                slot: SlotNo(3),
                data: b"rec".to_vec(),
            },
            HeapBody::Update {
                table: TableId(2),
                slot: SlotNo(0),
                old: b"a".to_vec(),
                new: b"bb".to_vec(),
            },
            HeapBody::Format { table: TableId(9) },
            HeapBody::ChainNext {
                old: PageId::NULL,
                new: PageId(7),
            },
            HeapBody::Noop,
        ];
        for c in cases {
            assert_eq!(HeapBody::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn bad_op_is_error() {
        assert!(HeapBody::decode(&[99]).is_err());
        assert!(HeapBody::decode(&[]).is_err());
    }
}
