//! Heap record manager.
//!
//! Stores table records in slotted data pages, giving out stable RIDs —
//! the names ARIES/IM's *data-only locking* locks (paper §2.1): a key in an
//! index is "locked" by locking the record its RID points at, so the record
//! manager and the index manager synchronize through the same lock names.
//!
//! All changes are logged through [`ariesim_wal::RmId::Heap`] records with
//! page-oriented redo and undo. Heap files grow by appending pages inside
//! **nested top actions**, so a file extension survives the rollback of the
//! transaction that triggered it — the same pattern the index uses for page
//! splits.
//!
//! Uncommitted deletes *reserve* their freed space ([`heap`]): an insert
//! never consumes bytes freed by an in-flight delete, so the undo of a heap
//! delete can always re-insert page-oriented at the original RID. (Indexes
//! don't need this — the paper instead allows the undo of a key delete to go
//! *logical* and split the page; heap RIDs must not move, so prevention
//! replaces cure. See DESIGN.md.)

pub mod body;
pub mod heap;

pub use heap::HeapManager;
